#!/usr/bin/env python
"""DDMCPP tool demo: preprocess a pragma-annotated source file end to end.

Writes a small DDM source program (a blocked reduction with a dependence
tree, exercising context maps and C control flow), emits the generated
Python module to ``/tmp/ddm_generated.py`` for inspection, then executes
the program sequentially and on the simulated TFluxHard platform.
"""

from pathlib import Path

from repro.platforms import TFluxHard
from repro.preprocessor import compile_to_program, emit_module

SOURCE = """
#pragma ddm startprogram name(tree_reduce)
#pragma ddm var double leaves[32]
#pragma ddm var double level1[8]
#pragma ddm var double result

#pragma ddm prologue
  result = 0;
#pragma ddm endprologue

#pragma ddm thread 1 context(32)
  /* Each leaf computes a partial value; sqrt to make it non-trivial. */
  leaves[CTX] = sqrt((CTX + 1) * 1.0);
#pragma ddm endthread

#pragma ddm thread 2 context(8) depends(1 map(CTX / 4))
  /* Each level-1 node sums its four leaves. */
  int i;
  double acc = 0;
  for (i = 4 * CTX; i < 4 * CTX + 4; i++) {
    acc = acc + leaves[i];
  }
  level1[CTX] = acc;
#pragma ddm endthread

#pragma ddm thread 3 depends(2 all)
  int i;
  double acc = 0;
  for (i = 0; i < 8; i++) acc = acc + level1[i];
  result = acc;
#pragma ddm endthread
#pragma ddm endprogram
"""


def main() -> None:
    out = Path("/tmp/ddm_generated.py")
    out.write_text(emit_module(SOURCE))
    print(f"generated module written to {out} ({len(out.read_text())} bytes)")
    print("-" * 60)
    print("\n".join(out.read_text().splitlines()[:25]))
    print("... (truncated)")
    print("-" * 60)

    env = compile_to_program(SOURCE).run_sequential()
    expected = sum((i + 1) ** 0.5 for i in range(32))
    print(f"sequential result = {env.get('result'):.6f} (expect {expected:.6f})")

    prog = compile_to_program(SOURCE)
    result = TFluxHard().execute(prog, nkernels=8)
    print(
        f"tfluxhard (8 kernels) result = {result.env.get('result'):.6f} "
        f"in {result.cycles:,} cycles"
    )


if __name__ == "__main__":
    main()
