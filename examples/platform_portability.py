#!/usr/bin/env python
"""The paper's headline demonstration: one DDM binary, three platforms.

Builds MMULT from the benchmark suite and runs the *same* program
definition on TFluxHard (27-kernel CMP with a hardware TSU), TFluxSoft
(6-kernel Xeon with a software TSU emulator) and TFluxCell (6 SPEs, PPE
TSU, Local Stores + DMA), then prints the per-platform speedup curve —
a miniature of Figures 5-7.
"""

from repro.apps import get_benchmark, problem_sizes
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft


def main() -> None:
    bench = get_benchmark("mmult")
    platforms = [TFluxHard(), TFluxSoft(), TFluxCell()]

    for platform in platforms:
        size = problem_sizes("mmult", platform.target)["small"]
        counts = [k for k in (2, 4, 8, 16, 27) if k <= platform.max_kernels]
        print(f"\n{platform.name} — MMULT {size} (best over unroll 1..64)")
        print(f"  {'kernels':>7} {'speedup':>8} {'unroll':>7} {'cycles':>14}")
        for nk in counts:
            ev = platform.evaluate(
                bench, size, nkernels=nk,
                unrolls=(1, 4, 16, 64), verify=(nk == counts[0]),
                max_threads=1024,
            )
            print(
                f"  {nk:>7} {ev.speedup:>8.2f} {ev.best_unroll:>7} "
                f"{ev.parallel_cycles:>14,}"
            )

    print(
        "\nSame program object, three machines — the hardware TSU needs no"
        "\nunrolling, the software TSUs prefer coarser DThreads (larger best"
        "\nunroll), and the Cell pays DMA/mailbox costs on top: the paper's"
        "\n§6.2.2/§6.3 granularity story."
    )


if __name__ == "__main__":
    main()
