#!/usr/bin/env python
"""The native runtime on real OS threads — and what the GIL permits.

TFluxSoft's defining property is that it needs nothing but a commodity
OS: Kernels are ordinary threads, the TSU is a software emulator thread,
completions flow through a lock-segmented TUB.  Each Kernel thread runs
the same step machine as the simulated machines
(:func:`repro.runtime.core.kernel_loop`) — only the backend differs:
wall-clock time, condition-variable waits (notify-driven, no polling),
and a TUB push as the completion notification.  This example runs MMULT
on the :class:`~repro.runtime.native.NativeRuntime` and measures real
wall-clock scaling.

Expectation management, honestly: CPython's GIL serialises pure-Python
DThread bodies.  MMULT's bodies are NumPy matrix products, which release
the GIL, so some real speedup is visible; TRAPEZ's chunk bodies spend a
larger share of their time holding the GIL (slicing, bookkeeping), so it
scales worse.  This is exactly why the cycle-level evaluation lives on
the simulated machines (see DESIGN.md §2) — the native backend's job is
to prove the *runtime protocol* on a real OS, which it does: watch the
TUB/emulator statistics.
"""

import time

import numpy as np

from repro.apps import get_benchmark, problem_sizes
from repro.runtime.native import NativeRuntime


def run(name: str, size_label: str, nkernels: int, unroll: int):
    bench = get_benchmark(name)
    size = problem_sizes(name, "N")[size_label]
    prog = bench.build(size, unroll=unroll, max_threads=256)
    t0 = time.perf_counter()
    result = NativeRuntime(prog, nkernels=nkernels).run()
    wall = time.perf_counter() - t0
    bench.verify(result.env, size)
    return wall, result


def main() -> None:
    for name, size_label, unroll in (("mmult", "medium", 32), ("trapez", "small", 64)):
        print(f"\n{name.upper()} ({size_label}, unroll {unroll}) on the native runtime")
        print(f"  {'kernels':>7} {'wall':>9} {'scaling':>8} {'tub pushes':>11} {'waits':>7}")
        base = None
        for nk in (1, 2, 4):
            wall, result = run(name, size_label, nkernels=nk, unroll=unroll)
            if base is None:
                base = wall
            print(
                f"  {nk:>7} {wall * 1e3:>8.1f}ms {base / wall:>7.2f}x "
                f"{result.counters['tub.pushes']:>11} "
                f"{result.counters['tsu.waits']:>7}"
            )
    print(
        "\nMMULT (NumPy bodies, GIL released) shows real thread-level scaling;"
        "\npure-Python-heavy bodies cannot — which is precisely why this"
        "\nreproduction measures speedup on the simulated machines."
    )


if __name__ == "__main__":
    main()
