#!/usr/bin/env python
"""Quickstart: write a DDM program three ways and run it everywhere.

This walks the whole TFlux stack on a small dot-product-style workload:

1. the decorator front-end (``repro.frontend.DDM``);
2. the DDMCPP pragma language (``repro.preprocessor``);
3. the raw ``ProgramBuilder`` API;

then executes the decorator version on all three simulated platforms
(TFluxHard / TFluxSoft / TFluxCell) and on the native threaded runtime —
the same program object everywhere, which is the paper's portability
claim in action.
"""

import numpy as np

from repro.core import ProgramBuilder
from repro.frontend import DDM
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft
from repro.preprocessor import compile_to_program
from repro.runtime import NativeRuntime

N_CHUNKS = 16
CHUNK = 1024


def build_with_decorators():
    """The Pythonic way: decorators over plain functions."""
    ddm = DDM("dot-decorators")
    rng = np.random.default_rng(42)
    ddm.env.adopt("x", rng.standard_normal(N_CHUNKS * CHUNK))
    ddm.env.adopt("y", rng.standard_normal(N_CHUNKS * CHUNK))
    ddm.env.alloc("parts", N_CHUNKS)

    @ddm.thread(contexts=N_CHUNKS, cost=lambda env, i: CHUNK * 4)
    def partial_dot(env, i):
        lo, hi = i * CHUNK, (i + 1) * CHUNK
        env.array("parts")[i] = env.array("x")[lo:hi] @ env.array("y")[lo:hi]

    @ddm.thread(depends=[(partial_dot, "all")])
    def reduce_dot(env, _):
        env.set("dot", float(env.array("parts").sum()))

    return ddm.build()


PRAGMA_SOURCE = """
#pragma ddm startprogram name(dot_pragmas)
#pragma ddm var double parts[16]
#pragma ddm var double total

#pragma ddm thread 1 context(16)
  /* Stand-in workload: each DThread produces one partial value. */
  parts[CTX] = (CTX + 1) * 0.5;
#pragma ddm endthread

#pragma ddm thread 2 depends(1 all)
  int i;
  total = 0;
  for (i = 0; i < 16; i++) total = total + parts[i];
#pragma ddm endthread
#pragma ddm endprogram
"""


def build_with_builder():
    """The explicit way: the API the other two front-ends target."""
    b = ProgramBuilder("dot-builder")
    b.env.alloc("parts", N_CHUNKS)
    work = b.thread(
        "work",
        body=lambda env, i: env.array("parts").__setitem__(i, float(i)),
        contexts=N_CHUNKS,
    )
    total = b.thread(
        "total",
        body=lambda env, _: env.set("dot", float(env.array("parts").sum())),
    )
    b.depends(work, total, "all")
    return b.build()


def main() -> None:
    print("=== 1. decorator front-end, sequential oracle ===")
    expected = None
    prog = build_with_decorators()
    env = prog.run_sequential()
    expected = env.get("dot")
    print(f"dot = {expected:.6f}")

    print("\n=== 2. DDMCPP pragma language ===")
    env = compile_to_program(PRAGMA_SOURCE).run_sequential()
    print(f"total = {env.get('total')} (expect {sum((i + 1) * 0.5 for i in range(16))})")

    print("\n=== 3. ProgramBuilder ===")
    env = build_with_builder().run_sequential()
    print(f"dot = {env.get('dot')} (expect {sum(range(N_CHUNKS))})")

    print("\n=== 4. one program, every platform ===")
    for platform in (TFluxHard(), TFluxSoft(), TFluxCell()):
        prog = build_with_decorators()  # programs are single-run objects
        nk = min(4, platform.max_kernels)
        result = platform.execute(prog, nkernels=nk)
        ok = abs(result.env.get("dot") - expected) < 1e-9
        print(
            f"{platform.name:10s} kernels={nk} cycles={result.cycles:>10,d} "
            f"result={'OK' if ok else 'MISMATCH'}"
        )

    print("\n=== 5. native threaded runtime (real OS threads) ===")
    result = NativeRuntime(build_with_decorators(), nkernels=4).run()
    ok = abs(result.env.get("dot") - expected) < 1e-9
    print(
        f"native     kernels=4 wall={result.wall_seconds * 1e3:.1f}ms "
        f"result={'OK' if ok else 'MISMATCH'} "
        f"(tub pushes: {result.counters['tub.pushes']})"
    )


if __name__ == "__main__":
    main()
