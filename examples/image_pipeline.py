#!/usr/bin/env python
"""A multi-phase image-processing pipeline on TFlux (SUSAN-style).

The paper's SUSAN workload motivates this shape: distinct phases, each
internally parallel across row bands, with dataflow (not barrier!)
dependencies where bands only need their neighbours.  This example builds
a sharpen-then-threshold pipeline where phase 2 depends on phase 1 only
through the neighbouring bands — the Synchronization Graph encodes the
halo exchange, so band ``i`` of phase 2 fires as soon as bands
``i-1, i, i+1`` of phase 1 completed, without a global barrier.

Run it to see per-phase overlap in the kernel statistics: with dataflow
arcs the phases pipeline; with "all" arcs they serialise.
"""

import numpy as np

from repro.frontend import DDM
from repro.platforms import TFluxHard

H, W = 256, 256
BANDS = 16
ROWS = H // BANDS


def build(dataflow: bool) -> "DDM":
    ddm = DDM(f"pipeline-{'dataflow' if dataflow else 'barrier'}")
    y, x = np.mgrid[0:H, 0:W]
    ddm.env.adopt("img", np.sin(x / 7.0) * np.cos(y / 5.0) * 127 + 128)
    ddm.env.alloc("sharp", (H, W))
    ddm.env.alloc("mask", (H, W), dtype=np.uint8)

    # Band costs are deliberately skewed (later bands are "busier", as if
    # the interesting content sits at the bottom of the frame): under a
    # barrier, phase 2 waits for the slowest band; with halo arcs the top
    # bands of phase 2 start while the bottom of phase 1 still runs.
    @ddm.thread(contexts=BANDS, cost=lambda env, i: ROWS * W * 10 * (1 + i))
    def sharpen(env, i):
        img = env.array("img")
        lo, hi = i * ROWS, (i + 1) * ROWS
        out = env.array("sharp")
        for r in range(lo, hi):
            up = img[max(r - 1, 0)]
            down = img[min(r + 1, H - 1)]
            out[r] = np.clip(2.0 * img[r] - 0.5 * (up + down), 0, 255)

    if dataflow:
        # Band i of phase 2 needs bands i-1, i, i+1 of phase 1.
        def halo(producer_ctx):
            return [
                c
                for c in (producer_ctx - 1, producer_ctx, producer_ctx + 1)
                if 0 <= c < BANDS
            ]

        deps = [(sharpen, halo)]
    else:
        deps = [(sharpen, "all")]

    # Placement hint: all threshold work goes to the kernels that did NOT
    # draw the heaviest sharpen band.  Under a barrier those kernels sit
    # idle until the heaviest band finishes, then do all of phase 2 on the
    # critical path; with halo arcs they start phase 2 as soon as their
    # producers are done, hiding it under the long sharpen tail.
    def off_critical_affinity(ctx, nkernels):
        return ctx % max(1, nkernels - 1)

    @ddm.thread(
        contexts=BANDS,
        depends=deps,
        cost=lambda env, i: ROWS * W * 60,
        affinity=off_critical_affinity,
    )
    def threshold(env, i):
        lo, hi = i * ROWS, (i + 1) * ROWS
        sharp = env.array("sharp")
        env.array("mask")[lo:hi] = (sharp[lo:hi] > 128).astype(np.uint8)

    return ddm


def oracle() -> np.ndarray:
    y, x = np.mgrid[0:H, 0:W]
    img = np.sin(x / 7.0) * np.cos(y / 5.0) * 127 + 128
    sharp = np.empty_like(img)
    for r in range(H):
        up = img[max(r - 1, 0)]
        down = img[min(r + 1, H - 1)]
        sharp[r] = np.clip(2.0 * img[r] - 0.5 * (up + down), 0, 255)
    return (sharp > 128).astype(np.uint8)


def main() -> None:
    from repro.runtime.simdriver import SimulatedRuntime
    from repro.tsu.hardware import HardwareTSUAdapter
    from repro.tsu.policy import round_robin_placement

    expected = oracle()
    platform = TFluxHard()
    print(f"{'variant':<10} {'kernels':>7} {'cycles':>12} {'correct':>8}")
    gains = []
    for nk in (2, 4, 8):
        cycles = {}
        for dataflow in (False, True):
            prog = build(dataflow).build()
            # Round-robin placement spreads the skewed bands over kernels,
            # letting the halo arcs (not load imbalance) decide the result.
            result = SimulatedRuntime(
                prog,
                platform.machine,
                nkernels=nk,
                adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
                placement=round_robin_placement,
            ).run()
            ok = np.array_equal(result.env.array("mask"), expected)
            tag = "dataflow" if dataflow else "barrier"
            cycles[dataflow] = result.cycles
            print(f"{tag:<10} {nk:>7} {result.cycles:>12,} {'OK' if ok else 'BAD':>8}")
        gains.append(cycles[False] / cycles[True])
    print(
        "\nDataflow (halo-arc) vs barrier gain per kernel count: "
        + ", ".join(f"{g:.2f}x" for g in gains)
        + "\nPhase-2 bands start while phase 1 is still running on the slow"
        "\nbands — the scheduling freedom DDM exists to exploit."
    )


if __name__ == "__main__":
    main()
