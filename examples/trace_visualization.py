#!/usr/bin/env python
"""Visualising a DDM execution: Gantt charts and Chrome traces.

Runs QSORT on the simulated TFluxHard machine with the execution tracer
attached, prints the ASCII Gantt (watch the serial merge tail the paper
blames for QSORT's speedup ceiling, §6.1.2), and writes a Chrome/Perfetto
trace to ``/tmp/tflux_qsort_trace.json`` — open it at ``ui.perfetto.dev``
to scrub through the schedule.
"""

from repro.apps import get_benchmark, problem_sizes
from repro.obs import Tracer, render_gantt, write_chrome_trace
from repro.platforms import TFluxHard


def main() -> None:
    bench = get_benchmark("qsort")
    size = problem_sizes("qsort", "S")["small"]
    prog = bench.build(size, unroll=32, max_threads=64)

    platform = TFluxHard()
    tracer = Tracer()
    result = platform.execute(prog, nkernels=8, tracer=tracer)
    bench.verify(result.env, size)

    print(f"QSORT ({size}) on tfluxhard, 8 kernels — "
          f"{result.region_cycles:,} cycles\n")
    print(render_gantt(tracer, width=64))
    tracer.check_no_overlap()

    crit = tracer.critical_kernel()
    print(f"\ncritical kernel: k{crit} "
          f"({tracer.busy_cycles(crit):,} busy cycles)")
    merge_spans = [s for s in tracer.spans if s.name.startswith("merge2")]
    if merge_spans:
        m = merge_spans[0]
        frac = m.duration / tracer.makespan()
        print(
            f"final merge '{m.name}' occupies {frac:.0%} of the makespan — "
            "the serial tail of §6.1.2"
        )

    out = "/tmp/tflux_qsort_trace.json"
    write_chrome_trace(out, tracer)
    print(f"\nChrome trace written to {out} (open in ui.perfetto.dev)")


if __name__ == "__main__":
    main()
