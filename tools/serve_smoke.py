#!/usr/bin/env python
"""CI smoke for the serving layer: a real server process, two clients.

Launches ``python -m repro.serve.cli serve`` as a subprocess, waits for
its ``listening on HOST:PORT`` line, then drives it the way CI can
verify end to end:

1. two clients submit overlapping batches concurrently (same grid);
2. the dedup machinery must fire: ``serve.executed`` equals the unique
   spec count and ``serve.deduped + serve.lru_hits`` covers every
   duplicate;
3. the streamed records must be bit-identical across the two clients;
4. ``tflux-submit`` (the CLI path) runs against the same server and its
   ``--json`` dump round-trips.

Exits non-zero on any violation.  Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import ServeClient, job_to_wire  # noqa: E402

GRID = [
    job_to_wire("trapez", nkernels=2, unroll=1, max_threads=64 + i)
    for i in range(4)
]


def main() -> int:
    env = dict(os.environ, TFLUX_CACHE_DIR="")  # disk cache off: exact counts
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli", "serve", "--port", "0",
         "--workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if not match:
            print(f"serve-smoke: FAIL: no listen line, got {line!r}")
            return 1
        address = (match.group(1), int(match.group(2)))
        print(f"serve-smoke: server up at {address[0]}:{address[1]}")

        # -- overlapping batches from two tenants --------------------------
        batches: dict[str, object] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(2)

        def tenant(name: str) -> None:
            try:
                with ServeClient(address, tenant=name) as client:
                    barrier.wait()  # maximise batch overlap
                    batches[name] = client.submit(GRID)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant, args=(n,)) for n in ("alice", "bob")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            print(f"serve-smoke: FAIL: client error: {errors[0]}")
            return 1
        alice, bob = batches["alice"], batches["bob"]
        if not (alice.ok and bob.ok):
            print("serve-smoke: FAIL: batch did not resolve")
            return 1

        for i in range(len(GRID)):
            a = json.dumps(alice.wire[i], sort_keys=True)
            b = json.dumps(bob.wire[i], sort_keys=True)
            if a != b:
                print(f"serve-smoke: FAIL: job {i} records differ across clients")
                return 1
        print(f"serve-smoke: {len(GRID)} records bit-identical across clients")

        with ServeClient(address) as client:
            stats = client.stats()
        counters = stats["counters"]
        total, unique = 2 * len(GRID), len(GRID)
        duplicates = (
            counters.get("serve.deduped", 0) + counters.get("serve.lru_hits", 0)
        )
        if stats["executed"] != unique:
            print(f"serve-smoke: FAIL: {stats['executed']} simulations for "
                  f"{unique} unique specs")
            return 1
        if duplicates != total - unique:
            print(f"serve-smoke: FAIL: dedup did not fire "
                  f"(deduped+lru_hits={duplicates}, expected {total - unique})")
            return 1
        print(f"serve-smoke: dedup fired: {stats['executed']} simulations, "
              f"{duplicates} duplicates coalesced/LRU-served")

        # -- the CLI client path -------------------------------------------
        with tempfile.TemporaryDirectory() as tmp:
            dump = Path(tmp) / "submit.json"
            proc = subprocess.run(
                [sys.executable, "-m", "repro.serve.cli", "submit", "trapez",
                 "--connect", f"{address[0]}:{address[1]}",
                 "--kernels", "2", "--unroll", "1,2", "--tenant", "cli",
                 "--stats", "--json", str(dump)],
                capture_output=True,
                text=True,
                timeout=300,
            )
            if proc.returncode != 0:
                print(f"serve-smoke: FAIL: tflux-submit rc={proc.returncode}\n"
                      f"{proc.stdout}\n{proc.stderr}")
                return 1
            payload = json.loads(dump.read_text())
            if len(payload["outcomes"]) != 2 or any(
                o is None or "cycles" not in o for o in payload["outcomes"]
            ):
                print("serve-smoke: FAIL: tflux-submit --json dump malformed")
                return 1
        print("serve-smoke: tflux-submit OK")
        print("serve-smoke: PASS")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
