#!/usr/bin/env python
"""Guard the RunRecord schema version against silent field drift.

The exec cache persists pickled :class:`repro.obs.RunRecord` objects and
refuses entries whose ``schema_version`` differs from the code's — but
that guard only works if the version is actually bumped when the field
set changes.  This tool pins the complete field set (RunRecord plus every
embedded dataclass) in a golden JSON fixture and fails when the two drift
apart without a version bump:

    python tools/check_record_schema.py            # verify (CI / tests)
    python tools/check_record_schema.py --update   # regenerate the fixture

``tests/test_record_schema.py`` runs the verification as part of the
suite, so the bump and the fixture regeneration must land in the same
commit as any field change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = REPO_ROOT / "tests" / "data" / "run_record_schema.json"


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))


def load_fixture(path: Path = FIXTURE) -> dict:
    with open(path) as fh:
        return json.load(fh)


def write_fixture(path: Path = FIXTURE) -> None:
    from repro.obs import SCHEMA_VERSION, record_schema

    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema_version": SCHEMA_VERSION, "fields": record_schema()}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate the golden fixture from the current schema",
    )
    args = parser.parse_args(argv)
    _ensure_importable()

    if args.update:
        write_fixture()
        print(f"fixture regenerated: {FIXTURE.relative_to(REPO_ROOT)}")
        return 0

    from repro.obs import verify_schema_fixture

    if not FIXTURE.exists():
        print(
            f"missing golden fixture {FIXTURE.relative_to(REPO_ROOT)}; "
            "create it with `python tools/check_record_schema.py --update`",
            file=sys.stderr,
        )
        return 1
    problems = verify_schema_fixture(load_fixture())
    for problem in problems:
        print(f"schema check: {problem}", file=sys.stderr)
    if not problems:
        print("RunRecord schema is consistent with the golden fixture")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
