#!/usr/bin/env python
"""Wall-clock timing for the three harness execution paths.

Runs a representative slice of the paper grid (a Figure-5-style
multi-benchmark evaluate batch) three ways — serial, parallel
(``TFLUX_JOBS``), and warm-cache — verifies all three produce identical
cycle numbers, and writes the measurements to ``BENCH_PR1.json``.

Usage::

    PYTHONPATH=src python tools/bench_timing.py [--jobs N] [--out FILE]

The grid is sized to take tens of seconds serially so pool start-up is
amortised; ``--quick`` shrinks it for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.apps import problem_sizes
from repro.exec import EvalRequest, ResultCache, evaluate_many
from repro.platforms import TFluxHard, TFluxSoft


def build_requests(quick: bool) -> list[EvalRequest]:
    benches = ("trapez", "mmult", "qsort", "susan", "fft")
    cells: list[EvalRequest] = []
    for platform, nkernels, unrolls in (
        (TFluxHard(), 27, (2, 8)),
        (TFluxSoft(), 6, (8, 32)),
    ):
        for bench in benches:
            cells.append(
                EvalRequest(
                    platform=platform,
                    bench=bench,
                    size=problem_sizes(bench, platform.target)[
                        "small" if quick else "large"
                    ],
                    nkernels=nkernels,
                    unrolls=unrolls,
                    verify=False,
                    max_threads=1024,
                )
            )
    return cells


def fingerprint(evs) -> list[tuple[str, str, int, int]]:
    return [
        (ev.platform, ev.bench, ev.parallel_cycles, ev.sequential_cycles)
        for ev in evs
    ]


def timed(label: str, fn):
    t0 = time.perf_counter()
    out = fn()
    dt = time.perf_counter() - t0
    print(f"{label:>28}: {dt:8.2f}s")
    return dt, out


def time_headline(cache_dir: str) -> dict[str, float]:
    """Time ``bench_headline.py`` twice against one fresh cache: cold then
    warm.  (The cache must not be shared with the grid above — its specs
    overlap bench_headline's, which would fake the cold number.)"""
    env = dict(os.environ, TFLUX_CACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    cmd = [
        sys.executable, "-m", "pytest",
        "benchmarks/bench_headline.py", "--benchmark-only", "-q", "-p", "no:cacheprovider",
    ]
    out: dict[str, float] = {}
    for label in ("cold", "warm"):
        t0 = time.perf_counter()
        subprocess.run(cmd, env=env, check=True, capture_output=True)
        out[label] = round(time.perf_counter() - t0, 3)
        print(f"{'bench_headline ' + label:>28}: {out[label]:8.2f}s")
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--out", default="BENCH_PR1.json")
    ap.add_argument("--quick", action="store_true")
    ap.add_argument(
        "--no-headline", action="store_true",
        help="skip the repeated bench_headline.py cold/warm measurement",
    )
    args = ap.parse_args()

    requests = build_requests(args.quick)
    njobs = args.jobs
    cache_dir = tempfile.mkdtemp(prefix="tflux-bench-cache-")
    try:
        serial_s, serial = timed(
            "serial (TFLUX_JOBS unset)",
            lambda: evaluate_many(requests, jobs=1, cache=None),
        )
        parallel_s, parallel = timed(
            f"parallel (TFLUX_JOBS={njobs})",
            lambda: evaluate_many(requests, jobs=njobs, cache=None),
        )
        cache = ResultCache(cache_dir)
        cold_s, _ = timed(
            "cache cold (serial + store)",
            lambda: evaluate_many(requests, jobs=1, cache=cache),
        )
        warm_s, warm = timed(
            "cache warm",
            lambda: evaluate_many(requests, jobs=1, cache=cache),
        )
        if args.no_headline:
            headline = None
        else:
            headline_cache = tempfile.mkdtemp(prefix="tflux-bench-headline-")
            try:
                headline = time_headline(headline_cache)
            finally:
                shutil.rmtree(headline_cache, ignore_errors=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    assert fingerprint(serial) == fingerprint(parallel) == fingerprint(warm), (
        "execution paths disagree on cycle numbers"
    )
    print("cycle numbers identical across all three paths")

    payload = {
        "grid": {
            "cells": len(requests),
            "jobs_per_cell": len(requests[0].unrolls),
            "quick": args.quick,
        },
        "host": {"cpu_count": os.cpu_count()},
        "seconds": {
            "serial": round(serial_s, 3),
            f"parallel_jobs{njobs}": round(parallel_s, 3),
            "cache_cold": round(cold_s, 3),
            "cache_warm": round(warm_s, 3),
        },
        "speedup_vs_serial": {
            f"parallel_jobs{njobs}": round(serial_s / parallel_s, 2),
            "cache_warm": round(serial_s / warm_s, 1),
        },
        "identical_cycles": True,
        "bench_headline_seconds": headline,
        "note": (
            "Parallel gains require real cores: on a 1-core host the pool "
            "only adds fork overhead, while TFLUX_JOBS=4 on a 4-core host "
            "tracks the core count (the jobs are independent, CPU-bound "
            "simulations with no shared state)."
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
