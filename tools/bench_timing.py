#!/usr/bin/env python
"""Wall-clock timing for the three harness execution paths.

Runs a representative slice of the paper grid (a Figure-5-style
multi-benchmark evaluate batch) three ways — serial, parallel
(``TFLUX_JOBS``), and warm-cache — verifies all three produce identical
cycle numbers, cross-checks the engine fast path (``TFLUX_FASTPATH`` on
vs off must be cycle-identical over a slice of the figure and ablation
dimensions, while dispatching fewer events per DThread instance), times
the coherence-hot FFT/MMULT cells whose invalidation sweeps stress the
two-level sharer directory (cycles must match the flat-mask seed
bit-for-bit), measures the ``unrolls="auto"`` adaptive search against
the full A2 factor grid (same best cells, fewer simulations), measures
the dynamic race detector's on-path overhead (instrumented vs plain
functional runs, plus a simulated cycle-identity check), and writes the
measurements to ``BENCH_PR10.json``.

The parallel measurement is skipped (and annotated in the JSON) on
hosts with ≤2 CPUs, where the pool can only add fork overhead.

Usage::

    PYTHONPATH=src python tools/bench_timing.py [--jobs N] [--out FILE]

The grid is sized to take tens of seconds serially so pool start-up is
amortised; ``--quick`` shrinks it for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.apps import get_benchmark, problem_sizes
from repro.exec import (
    UNROLL_LADDER,
    EvalRequest,
    ResultCache,
    clear_baseline_memo,
    evaluate_many,
)
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft
from repro.sim.engine import ENV_FASTPATH


def build_requests(quick: bool) -> list[EvalRequest]:
    benches = ("trapez", "mmult", "qsort", "susan", "fft")
    cells: list[EvalRequest] = []
    for platform, nkernels, unrolls in (
        (TFluxHard(), 27, (2, 8)),
        (TFluxSoft(), 6, (8, 32)),
    ):
        for bench in benches:
            cells.append(
                EvalRequest(
                    platform=platform,
                    bench=bench,
                    size=problem_sizes(bench, platform.target)[
                        "small" if quick else "large"
                    ],
                    nkernels=nkernels,
                    unrolls=unrolls,
                    verify=False,
                    max_threads=1024,
                )
            )
    return cells


def fingerprint(evs) -> list[tuple[str, str, int, int]]:
    return [
        (ev.platform, ev.bench, ev.parallel_cycles, ev.sequential_cycles)
        for ev in evs
    ]


# -- coherence-hot cells: the FastMemorySystem invalidation sweeps -------------
#: Cycle fingerprint of these cells on the PR-4/PR-5 tree (flat 64-bit
#: sharer mask).  The two-level (node, core) directory must reproduce it
#: bit for bit — the perf contract is "no slower AND no different".
COHERENCE_SEED_FINGERPRINT = [
    ("tfluxhard", "fft", 129722, 2444672),
    ("tfluxhard", "mmult", 4285832, 89840128),
]


def coherence_requests() -> list[EvalRequest]:
    """FFT + MMULT on the 27-kernel hardware platform: producer/consumer
    row traffic and block reuse make the sharer-directory sweeps the hot
    loop of these cells."""
    return [
        EvalRequest(
            platform=TFluxHard(),
            bench=bench,
            size=problem_sizes(bench, "S")["large"],
            nkernels=27,
            unrolls=(2, 8),
            verify=False,
            max_threads=1024,
        )
        for bench in ("fft", "mmult")
    ]


def time_coherence() -> dict:
    best, fp = None, None
    for _ in range(3):
        clear_baseline_memo()
        t0 = time.perf_counter()
        evs = evaluate_many(coherence_requests(), jobs=1, cache=None)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
        fp = fingerprint(evs)
    matches = fp == COHERENCE_SEED_FINGERPRINT
    flag = "" if matches else "  << CYCLES DIVERGE FROM SEED"
    print(f"{'coherence-hot (best of 3)':>28}: {best:8.2f}s{flag}")
    return {
        "seconds_best_of_3": round(best, 3),
        "fingerprint": [list(t) for t in fp],
        "matches_seed_fingerprint": matches,
    }


# -- A2: adaptive unroll search vs the full factor grid ------------------------
def _auto_unroll_requests() -> list[tuple[str, EvalRequest]]:
    """A2-style unroll-ablation cells spanning both single-chip
    platforms and the benchmarks whose best factors sit at different
    ends of the ladder (trapez peaks high, qsort peaks at 1)."""
    cells = [
        ("hard trapez nk=8", TFluxHard(), "trapez", 8),
        ("hard fft nk=4", TFluxHard(), "fft", 4),
        ("soft qsort nk=4", TFluxSoft(), "qsort", 4),
    ]
    return [
        (
            label,
            EvalRequest(
                platform=platform,
                bench=bench,
                size=problem_sizes(bench, platform.target)["small"],
                nkernels=nkernels,
                verify=False,
                max_threads=1024,
            ),
        )
        for label, platform, bench, nkernels in cells
    ]


def time_auto_unroll() -> dict:
    """Evaluate each A2 cell with the full 7-point grid and with
    ``unrolls="auto"``; the adaptive search must land on the same best
    cell (factor and speedup) while simulating fewer points."""
    import dataclasses

    labelled = _auto_unroll_requests()
    agrees = True
    rows = {}

    clear_baseline_memo()
    t0 = time.perf_counter()
    full = evaluate_many(
        [dataclasses.replace(r, unrolls=UNROLL_LADDER) for _, r in labelled],
        jobs=1,
        cache=None,
    )
    full_s = time.perf_counter() - t0

    clear_baseline_memo()
    t0 = time.perf_counter()
    auto = evaluate_many(
        [dataclasses.replace(r, unrolls="auto") for _, r in labelled],
        jobs=1,
        cache=None,
    )
    auto_s = time.perf_counter() - t0

    for (label, _), fev, aev in zip(labelled, full, auto):
        same = (
            fev.best_unroll == aev.best_unroll
            and fev.speedup == aev.speedup
            and fev.parallel_cycles == aev.parallel_cycles
        )
        agrees &= same
        rows[label] = {
            "best_unroll": aev.best_unroll,
            "speedup": round(aev.speedup, 4),
            "sims_full": len(fev.per_unroll),
            "sims_auto": len(aev.per_unroll),
            "same_best_cell": same,
        }
        flag = "" if same else "  << BEST CELL DIVERGES"
        print(
            f"{'A2 auto ' + label:>28}: {len(aev.per_unroll)}/"
            f"{len(fev.per_unroll)} sims, best u={aev.best_unroll}{flag}"
        )
    sims_full = sum(r["sims_full"] for r in rows.values())
    sims_auto = sum(r["sims_auto"] for r in rows.values())
    print(
        f"{'A2 auto totals':>28}: {sims_auto} vs {sims_full} sims, "
        f"{full_s:.2f}s -> {auto_s:.2f}s"
    )
    return {
        "same_best_cells": agrees,
        "simulations_full_grid": sims_full,
        "simulations_auto": sims_auto,
        "seconds_full_grid": round(full_s, 3),
        "seconds_auto": round(auto_s, 3),
        "cells": rows,
    }


# -- TFLUX_FASTPATH neutrality over the figure/ablation dimensions -------------
def _fastpath_configs():
    """One representative cell per figure (F5/F6/F7) and per ablation
    dimension the fast path touches (multi-group hardware, exact memory
    model, work stealing)."""
    return [
        ("F5 hard trapez", TFluxHard(), "trapez", dict(nkernels=8)),
        ("F5 hard mmult", TFluxHard(), "mmult", dict(nkernels=8)),
        ("F6 soft trapez", TFluxSoft(), "trapez", dict(nkernels=6)),
        ("F7 cell trapez", TFluxCell(), "trapez", dict(nkernels=6)),
        (
            "A exact-memory hard",
            TFluxHard(),
            "trapez",
            dict(nkernels=4, exact_memory=True),
        ),
        (
            "A stealing hard qsort",
            TFluxHard(),
            "qsort",
            dict(nkernels=4, allow_stealing=True),
        ),
        ("A multigroup hard", None, "trapez", dict(nkernels=8)),
    ]


def _fastpath_run(platform, bench_name: str, fast: bool, **kwargs):
    old = os.environ.get(ENV_FASTPATH)
    os.environ[ENV_FASTPATH] = "1" if fast else "0"
    try:
        if platform is None:  # the multi-group hardware ablation
            from repro.runtime.simdriver import SimulatedRuntime
            from repro.sim.machine import BAGLE_27
            from repro.tsu.multigroup import MultiGroupHardwareAdapter

            bench = get_benchmark(bench_name)
            size = problem_sizes(bench_name, "S")["small"]
            prog = bench.build(size, unroll=8, max_threads=1024)
            return SimulatedRuntime(
                prog,
                BAGLE_27,
                nkernels=kwargs["nkernels"],
                adapter_factory=lambda e, t: MultiGroupHardwareAdapter(
                    e, t, n_groups=2
                ),
            ).run()
        bench = get_benchmark(bench_name)
        size = problem_sizes(bench_name, platform.target)["small"]
        prog = bench.build(size, unroll=8, max_threads=1024)
        return platform.execute(prog, **kwargs)
    finally:
        if old is None:
            del os.environ[ENV_FASTPATH]
        else:
            os.environ[ENV_FASTPATH] = old


def check_fastpath() -> dict:
    """Run the slice with coalescing on and off; cycles must be
    bit-identical, events/instance strictly lower with coalescing."""
    identical = True
    rows = {}
    for label, platform, bench_name, kwargs in _fastpath_configs():
        on = _fastpath_run(platform, bench_name, True, **kwargs)
        off = _fastpath_run(platform, bench_name, False, **kwargs)
        same = (on.cycles, on.region_cycles) == (off.cycles, off.region_cycles)
        identical &= same
        instances = max(on.total_dthreads, 1)
        rows[label] = {
            "identical_cycles": same,
            "events_per_instance_off": round(
                off.counters["engine.events"] / instances, 2
            ),
            "events_per_instance_on": round(
                on.counters["engine.events"] / instances, 2
            ),
        }
        flag = "" if same else "  << CYCLES DIVERGE"
        print(
            f"{label:>28}: ev/inst "
            f"{rows[label]['events_per_instance_off']:6.2f} -> "
            f"{rows[label]['events_per_instance_on']:6.2f}{flag}"
        )
    return {"identical_cycles": identical, "configs": rows}


# -- race-check instrumentation overhead ---------------------------------------
def time_check_overhead() -> dict:
    """Cost of the dynamic race detector (``--check-races``), two ways:

    * **on-path factor** — the same program run functionally plain vs
      instrumented (recording every access + the vector-clock analysis);
    * **timing neutrality** — a simulated run plain vs instrumented must
      be cycle-identical: recording wraps only the functional side, all
      cycle numbers still come from the declared access summaries.

    With checking off nothing is wrapped, so the plain numbers *are* the
    zero-overhead baseline.
    """
    from repro.check import instrument
    from repro.runtime.simdriver import SimulatedRuntime
    from repro.sim.machine import BAGLE_27

    rows = {}
    for bench_name in ("trapez", "qsort_rec", "quad"):
        bench = get_benchmark(bench_name)
        size = problem_sizes(bench_name, "S")["small"]

        def run(checked: bool) -> float:
            best = None
            for _ in range(3):
                prog = bench.build(size, unroll=2)
                session = instrument(prog) if checked else None
                t0 = time.perf_counter()
                prog.run_sequential()
                if session is not None:
                    report = session.report()
                    assert report.ok, report.format()
                dt = time.perf_counter() - t0
                best = dt if best is None or dt < best else best
            return best

        plain_s, checked_s = run(False), run(True)
        factor = checked_s / plain_s if plain_s else float("inf")
        rows[bench_name] = {
            "plain_seconds_best_of_3": round(plain_s, 4),
            "checked_seconds_best_of_3": round(checked_s, 4),
            "on_path_factor": round(factor, 2),
        }
        print(
            f"{'check ' + bench_name:>28}: {plain_s:7.3f}s -> "
            f"{checked_s:7.3f}s  ({factor:.1f}x when enabled)"
        )

    # Timing neutrality: simulate one cell plain and instrumented.
    def sim(checked: bool):
        prog = get_benchmark("trapez").build(
            problem_sizes("trapez", "S")["small"], unroll=8
        )
        if checked:
            instrument(prog)
        return SimulatedRuntime(prog, BAGLE_27, nkernels=8).run()

    plain, checked = sim(False), sim(True)
    identical = plain.cycles == checked.cycles
    flag = "" if identical else "  << CYCLES DIVERGE"
    print(
        f"{'check sim neutrality':>28}: {plain.cycles:,} cycles plain, "
        f"{checked.cycles:,} instrumented{flag}"
    )
    return {
        "cells": rows,
        "sim_cycles_plain": plain.cycles,
        "sim_cycles_checked": checked.cycles,
        "sim_cycles_identical": identical,
    }


def timed(label: str, fn):
    t0 = time.perf_counter()
    out = fn()
    dt = time.perf_counter() - t0
    print(f"{label:>28}: {dt:8.2f}s")
    return dt, out


def time_headline(cache_dir: str) -> dict[str, float]:
    """Time ``bench_headline.py`` twice against one fresh cache: cold then
    warm.  (The cache must not be shared with the grid above — its specs
    overlap bench_headline's, which would fake the cold number.)"""
    env = dict(os.environ, TFLUX_CACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    cmd = [
        sys.executable, "-m", "pytest",
        "benchmarks/bench_headline.py", "--benchmark-only", "-q", "-p", "no:cacheprovider",
    ]
    out: dict[str, float] = {}
    for label in ("cold", "warm"):
        t0 = time.perf_counter()
        subprocess.run(cmd, env=env, check=True, capture_output=True)
        out[label] = round(time.perf_counter() - t0, 3)
        print(f"{'bench_headline ' + label:>28}: {out[label]:8.2f}s")
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--out", default="BENCH_PR10.json")
    ap.add_argument("--quick", action="store_true")
    ap.add_argument(
        "--no-headline", action="store_true",
        help="skip the repeated bench_headline.py cold/warm measurement",
    )
    args = ap.parse_args()

    requests = build_requests(args.quick)
    njobs = args.jobs
    cache_dir = tempfile.mkdtemp(prefix="tflux-bench-cache-")

    def fresh(fn):
        # Each timed path pays its own baselines: the in-process memo
        # would otherwise let the first path subsidise the rest.
        def run():
            clear_baseline_memo()
            return fn()

        return run

    try:
        serial_s, serial = timed(
            "serial (TFLUX_JOBS unset)",
            fresh(lambda: evaluate_many(requests, jobs=1, cache=None)),
        )
        ncpu = os.cpu_count() or 1
        if ncpu <= 2:
            # A pool wider than the host can only add fork overhead; the
            # measurement would time the scheduler, not the harness.
            parallel_s, parallel = None, None
            print(
                f"{'parallel (skipped)':>28}: host has {ncpu} CPU(s), "
                "pool would only add fork overhead"
            )
        else:
            parallel_s, parallel = timed(
                f"parallel (TFLUX_JOBS={njobs})",
                fresh(lambda: evaluate_many(requests, jobs=njobs, cache=None)),
            )
        cache = ResultCache(cache_dir)
        cold_s, _ = timed(
            "cache cold (serial + store)",
            fresh(lambda: evaluate_many(requests, jobs=1, cache=cache)),
        )
        warm_s, warm = timed(
            "cache warm",
            fresh(lambda: evaluate_many(requests, jobs=1, cache=cache)),
        )
        fastpath = check_fastpath()
        coherence = time_coherence()
        auto_unroll = time_auto_unroll()
        race_check = time_check_overhead()
        if args.no_headline:
            headline = None
        else:
            headline_cache = tempfile.mkdtemp(prefix="tflux-bench-headline-")
            try:
                headline = time_headline(headline_cache)
            finally:
                shutil.rmtree(headline_cache, ignore_errors=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    paths = [serial, warm] if parallel is None else [serial, parallel, warm]
    assert all(fingerprint(p) == fingerprint(serial) for p in paths), (
        "execution paths disagree on cycle numbers"
    )
    print(f"cycle numbers identical across all {len(paths)} paths")
    assert fastpath["identical_cycles"], "fast path is not cycle-neutral"
    print("fast path cycle-neutral across the figure/ablation slice")
    assert coherence["matches_seed_fingerprint"], (
        "two-level sharer directory diverged from the flat-mask seed cycles"
    )
    print("coherence-hot cells bit-identical to the flat-mask seed")
    assert auto_unroll["same_best_cells"], (
        "adaptive unroll search diverged from the full grid's best cells"
    )
    assert auto_unroll["simulations_auto"] < auto_unroll["simulations_full_grid"]
    print("adaptive unroll search matches the full grid with fewer simulations")
    assert race_check["sim_cycles_identical"], (
        "race-check instrumentation changed simulated cycles"
    )
    print("race-check instrumentation cycle-neutral under simulation")

    prev_serial = None
    if os.path.exists("BENCH_PR8.json"):
        with open("BENCH_PR8.json") as fh:
            prev_serial = json.load(fh).get("seconds", {}).get("serial")

    payload = {
        "grid": {
            "cells": len(requests),
            "jobs_per_cell": len(requests[0].unrolls),
            "quick": args.quick,
        },
        "host": {"cpu_count": os.cpu_count()},
        "seconds": {
            "serial": round(serial_s, 3),
            f"parallel_jobs{njobs}": (
                None if parallel_s is None else round(parallel_s, 3)
            ),
            "cache_cold": round(cold_s, 3),
            "cache_warm": round(warm_s, 3),
        },
        "speedup_vs_serial": {
            f"parallel_jobs{njobs}": (
                None if parallel_s is None else round(serial_s / parallel_s, 2)
            ),
            "cache_warm": round(serial_s / warm_s, 1),
        },
        "parallel_skipped": (
            None
            if parallel_s is not None
            else f"host has {os.cpu_count()} CPU(s); pool adds only fork overhead"
        ),
        "identical_cycles": True,
        "coherence_hot": coherence,
        "auto_unroll": auto_unroll,
        "fastpath": fastpath,
        "race_check": race_check,
        "serial_seconds_prev_pr": prev_serial,
        "bench_headline_seconds": headline,
        "note": (
            "Parallel gains require real cores: on a 1-core host the pool "
            "only adds fork overhead, while TFLUX_JOBS=4 on a 4-core host "
            "tracks the core count (the jobs are independent, CPU-bound "
            "simulations with no shared state)."
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
