"""Shared-data environment for DDM programs.

The runtime has to "provide a way for the different DThreads of the DDM
application to access the shared variables used in the producer-consumer
relationships" (paper §3.1).  :class:`Environment` is that mechanism: a
named store of NumPy arrays and scalar variables shared by all DThreads.

Each array is also registered as a :class:`~repro.sim.accesses.Region` so
the timing layer can model its cache behaviour; scalar variables are
grouped into a single small "scalars" region (they share cache lines, as
globals do in the C original).
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.sim.accesses import Region, RegionSpace

__all__ = ["Environment"]

_SCALARS_REGION_BYTES = 4096
#: Byte slot reserved per scalar inside the shared scalars region.  Gives
#: each scalar a distinct, stable address for access attribution (the
#: race checker); with more than 512 scalars, slots wrap and alias.
_SCALAR_SLOT_BYTES = 8


class Environment:
    """Named shared variables and arrays for one DDM program run."""

    def __init__(self) -> None:
        self.regions = RegionSpace()
        self._arrays: dict[str, np.ndarray] = {}
        self._scalars: dict[str, Any] = {}
        self._scalar_offsets: dict[str, int] = {}
        # All scalar shared variables live in one small region.
        self._scalars_region = self.regions.region("__scalars__", _SCALARS_REGION_BYTES)

    # -- arrays ------------------------------------------------------------
    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Allocate a named shared array (and its cache region)."""
        if name in self._arrays or name in self._scalars:
            raise KeyError(f"environment name {name!r} already in use")
        arr = np.zeros(shape, dtype=dtype)
        self.regions.region(name, max(int(arr.nbytes), 1))
        self._arrays[name] = arr
        return arr

    def adopt(self, name: str, arr: np.ndarray) -> np.ndarray:
        """Register an existing array as a shared variable."""
        if name in self._arrays or name in self._scalars:
            raise KeyError(f"environment name {name!r} already in use")
        arr = np.asarray(arr)
        self.regions.region(name, max(int(arr.nbytes), 1))
        self._arrays[name] = arr
        return arr

    def array(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def region(self, name: str) -> Region:
        """Region backing the named array (or the shared scalars region)."""
        if name in self._arrays:
            return self.regions.get(name)
        if name in self._scalars:
            return self._scalars_region
        raise KeyError(name)

    def scalar_offset(self, name: str) -> int:
        """Stable byte offset of the named scalar inside ``__scalars__``.

        Slots are assigned in first-use order, :data:`_SCALAR_SLOT_BYTES`
        apart, wrapping within the region.  Purely an attribution aid —
        the timing layer keeps pricing scalars as whole-region traffic,
        so cycle counts are untouched by slot assignment.
        """
        off = self._scalar_offsets.get(name)
        if off is None:
            off = (
                len(self._scalar_offsets) * _SCALAR_SLOT_BYTES
            ) % _SCALARS_REGION_BYTES
            self._scalar_offsets[name] = off
        return off

    # -- scalars -------------------------------------------------------------
    def set(self, name: str, value: Any) -> None:
        if name in self._arrays:
            raise KeyError(f"{name!r} is an array; assign into it instead")
        self._scalars[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        if name in self._arrays:
            return self._arrays[name]
        return self._scalars.get(name, default)

    # -- mapping conveniences ---------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        if name in self._arrays:
            return self._arrays[name]
        return self._scalars[name]

    def __setitem__(self, name: str, value: Any) -> None:
        if isinstance(value, np.ndarray) and name not in self._scalars:
            if name in self._arrays:
                if self._arrays[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch assigning array {name!r}; "
                        "write into the existing buffer instead"
                    )
                self._arrays[name][...] = value
            else:
                self.adopt(name, value)
        else:
            if name in self._arrays:
                raise KeyError(f"{name!r} is an array; assign into it instead")
            self._scalars[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._arrays or name in self._scalars

    def names(self) -> Iterator[str]:
        yield from self._arrays
        yield from self._scalars

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Environment arrays={list(self._arrays)} "
            f"scalars={list(self._scalars)}>"
        )
