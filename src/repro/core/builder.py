"""Fluent construction API for DDM programs.

:class:`ProgramBuilder` is the single entry point used by

* the application kernels in :mod:`repro.apps`,
* the preprocessor back-end (:mod:`repro.preprocessor.backend`), which
  turns ``#pragma ddm`` directives into builder calls, and
* the decorator front-end (:mod:`repro.frontend`).

Example
-------
>>> from repro.core import ProgramBuilder
>>> b = ProgramBuilder("sum2")
>>> parts = b.env.alloc("parts", 2)
>>> t_add = b.thread("add", body=lambda env, i: env.array("parts").__setitem__(i, i + 1),
...                  contexts=range(2))
>>> t_tot = b.thread("total", body=lambda env, _:
...                  env.set("total", float(env.array("parts").sum())))
>>> _ = b.depends(t_add, t_tot, mapping="all")
>>> prog = b.build()
>>> prog.run_sequential().get("total")
3.0
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core.context import Context
from repro.core.dthread import DThreadTemplate, ThreadKind
from repro.core.environment import Environment
from repro.core.graph import SynchronizationGraph
from repro.core.program import DDMProgram, SequentialSection

__all__ = ["ProgramBuilder"]

TemplateRef = Union[int, DThreadTemplate]


class ProgramBuilder:
    """Accumulates templates, arcs and sequential sections into a program."""

    def __init__(self, name: str, env: Optional[Environment] = None) -> None:
        self.name = name
        self.env = env if env is not None else Environment()
        self.graph = SynchronizationGraph()
        self._next_tid = 1
        self._prologue: list[SequentialSection] = []
        self._epilogue: list[SequentialSection] = []

    # -- threads -----------------------------------------------------------
    def thread(
        self,
        name: str,
        body: Optional[Callable[[Environment, Context], None]] = None,
        contexts: Union[int, Iterable[Context]] = 1,
        cost: Optional[Callable[[Environment, Context], int]] = None,
        accesses: Optional[Callable[[Environment, Context], Any]] = None,
        affinity: Optional[Callable[[Context, int], int]] = None,
        tid: Optional[int] = None,
    ) -> DThreadTemplate:
        """Declare a DThread template.

        *contexts* may be an int (trip count, contexts ``0..n-1``) or an
        explicit iterable of context values.
        """
        if tid is None:
            tid = self._next_tid
        self._next_tid = max(self._next_tid, tid + 1)
        if isinstance(contexts, int):
            ctxs: Sequence[Context] = tuple(range(contexts))
        else:
            ctxs = tuple(contexts)
        tmpl = DThreadTemplate(
            tid=tid,
            name=name,
            body=body,
            contexts=ctxs,
            cost=cost,
            accesses=accesses,
            kind=ThreadKind.APPLICATION,
            affinity=affinity,
        )
        return self.graph.add_template(tmpl)

    def depends(
        self,
        producer: TemplateRef,
        consumer: TemplateRef,
        mapping: Union[str, Callable[[Context], Iterable[Context]]] = "same",
    ):
        """Declare that *consumer* consumes data produced by *producer*."""
        p = producer.tid if isinstance(producer, DThreadTemplate) else producer
        c = consumer.tid if isinstance(consumer, DThreadTemplate) else consumer
        return self.graph.add_arc(p, c, mapping)

    def cond(
        self,
        producer: TemplateRef,
        consumer: TemplateRef,
        key: Any,
        mapping: Union[str, Callable[[Context], Iterable[Context]]] = "same",
    ):
        """Declare a conditional arc, taken when *producer*'s body returns
        *key*.  Unchosen branches are squashed — see
        :mod:`repro.core.dynamic` for the exact semantics."""
        if key is None:
            raise ValueError(
                "cond key must not be None (None is the no-branch outcome)"
            )
        p = producer.tid if isinstance(producer, DThreadTemplate) else producer
        c = consumer.tid if isinstance(consumer, DThreadTemplate) else consumer
        return self.graph.add_arc(p, c, mapping, cond_key=key)

    def auto_depends(self, templates: Optional[Iterable[int]] = None):
        """Derive arcs from the threads' declared access summaries.

        Computes the write→read / write→write / read→write ordering arcs
        implied by each template's ``accesses`` declarations
        (:mod:`repro.core.deps`) and adds them to the graph.  Template
        pairs that already have a *declared* direct arc are skipped —
        the programmer's arc takes precedence and the ``--check-deps``
        diagnosis judges its adequacy.  Threads without ``accesses`` are
        opaque and contribute nothing (keep explicit ``depends`` for
        them).  Returns the arcs added.
        """
        from repro.core.deps import derive

        derivation = derive(self.graph, self.env, templates=templates)
        declared = {(a.producer, a.consumer) for a in self.graph.arcs}
        added = []
        for spec in derivation.template_arcs():
            if (spec.producer, spec.consumer) in declared:
                continue
            added.append(
                self.graph.add_arc(spec.producer, spec.consumer, spec.mapping)
            )
        return added

    # -- sequential sections --------------------------------------------------
    def prologue(
        self,
        name: str,
        body: Optional[Callable[[Environment], None]] = None,
        cost: Optional[Callable[[Environment], int]] = None,
        accesses: Optional[Callable[[Environment], Any]] = None,
    ) -> SequentialSection:
        section = SequentialSection(name, body, cost, accesses)
        self._prologue.append(section)
        return section

    def epilogue(
        self,
        name: str,
        body: Optional[Callable[[Environment], None]] = None,
        cost: Optional[Callable[[Environment], int]] = None,
        accesses: Optional[Callable[[Environment], Any]] = None,
    ) -> SequentialSection:
        section = SequentialSection(name, body, cost, accesses)
        self._epilogue.append(section)
        return section

    # -- finish ---------------------------------------------------------------
    def build(self) -> DDMProgram:
        """Validate the graph and produce the program object."""
        self.graph.validate()
        return DDMProgram(
            name=self.name,
            graph=self.graph,
            env=self.env,
            prologue=list(self._prologue),
            epilogue=list(self._epilogue),
        )
