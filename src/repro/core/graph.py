"""The Synchronization Graph and its instance-level expansion.

"The dependencies among the DThreads in a DDM program are expressed by its
Synchronization Graph, the nodes of which correspond to the program's
DThreads while its arcs to data dependencies between them" (paper §2).

Arcs connect *templates* with a context mapping describing which dynamic
instances depend on which:

``"same"``
    instance ``(p, ctx)`` feeds ``(c, ctx)`` — parallel loops in lockstep;
``"all"``
    every instance of the producer feeds every instance of the consumer —
    reductions, barriers and phase changes;
callable
    ``mapping(producer_ctx) -> iterable of consumer contexts`` — arbitrary
    shapes (e.g. the QSORT merge tree).

:meth:`SynchronizationGraph.expand` flattens templates×contexts into dense
:class:`~repro.core.dthread.DThreadInstance` ids and produces, for each
instance, its *Ready Count* (number of producer instances) and its
consumer list — exactly the metadata the Inlet DThread loads into the TSU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Union

from repro.core.context import CTX_ALL, Context, normalize_context
from repro.core.dthread import DThreadInstance, DThreadTemplate

__all__ = ["Arc", "SynchronizationGraph", "ExpandedGraph", "GraphError"]

Mapping = Union[str, Callable[[Context], Iterable[Context]]]


class GraphError(ValueError):
    """Raised for malformed synchronization graphs."""


def _same_mapping(a: "Mapping", b: "Mapping") -> bool:
    """Whether two arc mappings contribute identical Ready Counts.

    String mappings compare by value, derived
    :class:`~repro.core.deps.ContextMap` mappings by table, arbitrary
    callables by identity (the one comparison that can never misjudge
    an opaque function).  An *identical* re-declaration is a legitimate
    double token; anything else changes the consumer's Ready Count.
    """
    if a is b:
        return True
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    table_a = getattr(a, "table", None)
    table_b = getattr(b, "table", None)
    if table_a is not None and table_b is not None:
        return table_a == table_b
    return False


def _describe_mapping(m: "Mapping") -> str:
    if isinstance(m, str):
        return repr(m)
    if getattr(m, "table", None) is not None:
        return f"derived {type(m).__name__}"
    return getattr(m, "__name__", None) or repr(m)


@dataclass(frozen=True)
class Arc:
    """A producer→consumer dependence between two templates.

    ``cond_key`` makes the arc *conditional*: it counts in the
    consumer's Ready Count like any arc, but only delivers a real input
    when the producer's outcome (its body's return value) equals the
    key.  Unchosen conditional arcs die at resolution time — the
    squash semantics live in :mod:`repro.core.dynamic`.
    """

    producer: int
    consumer: int
    mapping: Mapping = "same"
    cond_key: Any = None

    def consumer_contexts(
        self, producer_ctx: Context, consumer: DThreadTemplate
    ) -> list[Context]:
        if self.mapping == "same":
            return [producer_ctx]
        if self.mapping == "all":
            return list(consumer.contexts)
        if callable(self.mapping):
            return [normalize_context(c) for c in self.mapping(producer_ctx)]
        raise GraphError(f"unknown arc mapping {self.mapping!r}")


@dataclass
class ExpandedGraph:
    """Instance-level graph: the TSU-loadable metadata."""

    instances: list[DThreadInstance]
    ready_counts: list[int]
    consumers: list[list[int]]
    #: iid of every instance with Ready Count zero (the entry fringe).
    entry: list[int]
    #: (template tid, ctx) -> iid
    index: dict[tuple[int, Context], int]
    #: Conditional-arc table: producer iid -> {branch key: consumer iids}.
    #: Empty for purely static graphs (the common case).
    cond_targets: dict[int, dict[Any, list[int]]] = field(default_factory=dict)

    @property
    def ninstances(self) -> int:
        return len(self.instances)

    def iid_of(self, tid: int, ctx: Context = 0) -> int:
        return self.index[(tid, normalize_context(ctx))]

    def check_invariants(self) -> None:
        """Structural sanity: counts match arcs, no dangling consumers."""
        n = self.ninstances
        incoming = [0] * n
        for src, outs in enumerate(self.consumers):
            for dst in outs:
                assert 0 <= dst < n, f"dangling consumer {dst} from {src}"
                incoming[dst] += 1
        for iid in range(n):
            assert incoming[iid] == self.ready_counts[iid], (
                f"instance {iid} ready count {self.ready_counts[iid]} "
                f"!= incoming arcs {incoming[iid]}"
            )
        assert sorted(self.entry) == [
            iid for iid in range(n) if self.ready_counts[iid] == 0
        ]


class SynchronizationGraph:
    """Template-level synchronization graph with arc mappings."""

    def __init__(self) -> None:
        self._templates: dict[int, DThreadTemplate] = {}
        self._arcs: list[Arc] = []

    # -- construction -------------------------------------------------------
    def add_template(self, template: DThreadTemplate) -> DThreadTemplate:
        if template.tid in self._templates:
            raise GraphError(f"duplicate template id {template.tid}")
        self._templates[template.tid] = template
        return template

    def add_arc(
        self,
        producer: int,
        consumer: int,
        mapping: Mapping = "same",
        cond_key: Any = None,
    ) -> Arc:
        for tid in (producer, consumer):
            if tid not in self._templates:
                raise GraphError(f"arc references unknown template {tid}")
        if producer == consumer:
            raise GraphError("self-dependence arcs are not allowed")
        for prior in self._arcs:
            if (
                prior.producer == producer
                and prior.consumer == consumer
                and prior.cond_key == cond_key
                and not _same_mapping(prior.mapping, mapping)
            ):
                names = (
                    f"{self._templates[producer].name} -> "
                    f"{self._templates[consumer].name}"
                )
                raise GraphError(
                    f"arc {names} declared twice with different mappings "
                    f"({_describe_mapping(prior.mapping)} vs "
                    f"{_describe_mapping(mapping)}): the two declarations "
                    "contribute different Ready Counts — declare each "
                    "distinct dependence once"
                )
        arc = Arc(producer, consumer, mapping, cond_key)
        self._arcs.append(arc)
        return arc

    # -- access ------------------------------------------------------------
    @property
    def templates(self) -> list[DThreadTemplate]:
        return [self._templates[tid] for tid in sorted(self._templates)]

    @property
    def arcs(self) -> list[Arc]:
        return list(self._arcs)

    def template(self, tid: int) -> DThreadTemplate:
        return self._templates[tid]

    def __contains__(self, tid: int) -> bool:
        return tid in self._templates

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        """Check the template-level graph is a DAG (DDM programs must be:
        dataflow firing cannot resolve cyclic dependences)."""
        adj: dict[int, set[int]] = {tid: set() for tid in self._templates}
        for arc in self._arcs:
            adj[arc.producer].add(arc.consumer)
        state: dict[int, int] = {}  # 0=unvisited 1=in-stack 2=done

        def dfs(u: int, stack: list[int]) -> None:
            state[u] = 1
            stack.append(u)
            for v in adj[u]:
                if state.get(v, 0) == 1:
                    cycle = stack[stack.index(v):] + [v]
                    names = " -> ".join(self._templates[t].name for t in cycle)
                    raise GraphError(f"dependency cycle: {names}")
                if state.get(v, 0) == 0:
                    dfs(v, stack)
            stack.pop()
            state[u] = 2

        for tid in self._templates:
            if state.get(tid, 0) == 0:
                dfs(tid, [])

    # -- expansion ------------------------------------------------------------
    def expand(self) -> ExpandedGraph:
        """Flatten to the instance level (Ready Counts + consumer lists)."""
        self.validate()
        instances: list[DThreadInstance] = []
        index: dict[tuple[int, Context], int] = {}
        for tmpl in self.templates:
            for ctx in tmpl.contexts:
                iid = len(instances)
                instances.append(DThreadInstance(iid, tmpl, ctx))
                index[(tmpl.tid, ctx)] = iid

        ready = [0] * len(instances)
        consumers: list[list[int]] = [[] for _ in instances]
        cond_targets: dict[int, dict[Any, list[int]]] = {}
        for arc in self._arcs:
            prod = self._templates[arc.producer]
            cons = self._templates[arc.consumer]
            cons_ctx_set = set(cons.contexts)
            for pctx in prod.contexts:
                src = index[(prod.tid, pctx)]
                for cctx in arc.consumer_contexts(pctx, cons):
                    if cctx not in cons_ctx_set:
                        raise GraphError(
                            f"arc {prod.name}->{cons.name} maps context "
                            f"{pctx!r} to nonexistent consumer context {cctx!r}"
                        )
                    dst = index[(cons.tid, cctx)]
                    consumers[src].append(dst)
                    ready[dst] += 1
                    if arc.cond_key is not None:
                        by_key = cond_targets.setdefault(src, {})
                        by_key.setdefault(arc.cond_key, []).append(dst)

        entry = [iid for iid in range(len(instances)) if ready[iid] == 0]
        if not entry and instances:
            raise GraphError("no entry instances (every instance has producers)")
        graph = ExpandedGraph(
            instances, ready, consumers, entry, index, cond_targets
        )
        return graph
