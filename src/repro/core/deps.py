"""Dependence derivation: compute the Synchronization Graph from accesses.

TFlux's DDMCPP makes the programmer state every arc and Ready Count by
hand; Couillard showed the same coarse-grained dataflow graph can be
*compiled* from per-thread access annotations.  The information is
already declared here — every app DThread carries an
:class:`~repro.sim.accesses.AccessSummary` for the memory models — so
this module closes the loop: given a template graph and its environment,
it computes the write→read, write→write and read→write ordering arcs at
**instance** granularity and folds them back into template-level arcs
(``"same"``/``"all"``/context-map) that expand to exactly the needed
Ready Counts.

Last-writer coalescing keeps derived graphs linear rather than
quadratic: instances are replayed in program order (template id, then
context order) over a coordinate-compressed segment space per region
(:class:`~repro.core.regions.SegmentSpace`); a read draws arcs only from
the current *last writer* of each overlapped segment, and a write draws
arcs from the readers-since-last-write (plus the last writer of any
segment nobody read) — every other ordering pair is implied
transitively, exactly the pairs a hand-written graph also omits.
Because arcs always point from an earlier instance to a later one, the
derived graph is acyclic by construction *between* instances; a conflict
between two instances of the **same** template has no legal arc
(self-dependences are forbidden) and raises :class:`DerivationError` —
such templates must be split by context before deriving.

Templates without an ``accesses`` declaration are *opaque*: they
contribute no derived arcs and are reported so a diagnosis never
silently blesses a graph it could not see
(:func:`check_deps` — the ``ddmcpp --check-deps`` /
``tflux-run --check-deps`` pass, and the seed of the planned race
checker).  Sequential sections (prologue/epilogue) are excluded by
construction: they run strictly before/after the parallel region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.context import Context
from repro.core.graph import GraphError, SynchronizationGraph
from repro.core.regions import (
    SegmentSpace,
    intervals_overlap,
    merge_intervals,
    op_intervals,
)

__all__ = [
    "DerivationError",
    "DerivedArc",
    "Derivation",
    "derive",
    "ContextMap",
    "ArcDiagnosis",
    "MissingDep",
    "DepsReport",
    "check_deps",
]

#: Conflict kinds, in the order they are reported.
_KIND_LABEL = {"WR": "write→read", "WW": "write→write", "RW": "read→write"}


class DerivationError(GraphError):
    """Raised when access declarations admit no legal arc set."""


class ContextMap:
    """A derived context mapping: producer ctx -> consumer contexts.

    Arc mappings may be arbitrary callables; derived arcs that are
    neither ``"same"`` nor ``"all"`` use this dict-backed one so the
    mapping is inspectable (and deterministic: consumer contexts are
    sorted).
    """

    __slots__ = ("table",)

    def __init__(self, table: Dict[Context, Tuple[Context, ...]]) -> None:
        self.table = table

    def __call__(self, producer_ctx: Context) -> Tuple[Context, ...]:
        return self.table.get(producer_ctx, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContextMap({self.table!r})"


@dataclass(frozen=True)
class DerivedArc:
    """One template-level arc computed from access overlaps."""

    producer: int
    consumer: int
    mapping: object  # "same" | "all" | ContextMap
    #: Conflict kinds supporting the arc (union over its instance pairs).
    kinds: frozenset = frozenset()
    #: Region names on which the conflicts occur.
    regions: frozenset = frozenset()


@dataclass
class Derivation:
    """Everything the deriver learned about one graph + environment."""

    #: Instance table in program order: (tid, ctx) per dense index.
    instances: List[Tuple[int, Context]]
    #: (tid, ctx) -> dense instance index.
    index: Dict[Tuple[int, Context], int]
    #: Coalesced conflict pairs: (src idx, dst idx) -> set of kinds.
    pairs: Dict[Tuple[int, int], Set[str]]
    #: Region names supporting each pair.
    pair_regions: Dict[Tuple[int, int], Set[str]]
    #: Per-instance footprints: idx -> region -> (read_iv, write_iv),
    #: canonical interval arrays (raw, not coalesced — used to judge
    #: whether a *declared* arc is supported by any overlap at all).
    footprints: Dict[int, Dict[str, Tuple[np.ndarray, np.ndarray]]]
    #: Template ids that declared no accesses (opaque to the deriver).
    opaque: List[int]

    def template_arcs(self) -> List[DerivedArc]:
        """Fold instance pairs into template-level arcs.

        Pairs between one (producer, consumer) template pair become a
        single arc whose mapping reproduces exactly those pairs:
        ``"same"`` when every producer context maps to itself, ``"all"``
        when the full cross product is present, a :class:`ContextMap`
        otherwise.  Arcs are emitted in (producer, consumer) template
        order — the order hand-written apps declare them in.
        """
        grouped: Dict[Tuple[int, int], Dict[Context, List[Context]]] = {}
        kinds: Dict[Tuple[int, int], Set[str]] = {}
        regions: Dict[Tuple[int, int], Set[str]] = {}
        by_tid_ctxs: Dict[int, List[Context]] = {}
        for tid, ctx in self.instances:
            by_tid_ctxs.setdefault(tid, []).append(ctx)
        for (src, dst), pair_kinds in self.pairs.items():
            ptid, pctx = self.instances[src]
            ctid, cctx = self.instances[dst]
            key = (ptid, ctid)
            grouped.setdefault(key, {}).setdefault(pctx, []).append(cctx)
            kinds.setdefault(key, set()).update(pair_kinds)
            regions.setdefault(key, set()).update(self.pair_regions[(src, dst)])
        arcs: List[DerivedArc] = []
        for key in sorted(grouped, key=lambda k: (k[0], k[1])):
            ptid, ctid = key
            table = {p: tuple(sorted(cs)) for p, cs in grouped[key].items()}
            prod_ctxs = by_tid_ctxs[ptid]
            cons_ctxs = tuple(sorted(by_tid_ctxs[ctid]))
            covers_all_producers = len(table) == len(prod_ctxs)
            if covers_all_producers and all(
                table[p] == (p,) for p in prod_ctxs
            ):
                mapping: object = "same"
            elif covers_all_producers and all(
                table[p] == cons_ctxs for p in prod_ctxs
            ):
                mapping = "all"
            else:
                mapping = ContextMap(table)
            arcs.append(
                DerivedArc(
                    ptid,
                    ctid,
                    mapping,
                    kinds=frozenset(kinds[key]),
                    regions=frozenset(regions[key]),
                )
            )
        return arcs


def derive(
    graph: SynchronizationGraph,
    env,
    templates: Optional[Sequence[int]] = None,
) -> Derivation:
    """Replay every instance's access summary and coalesce conflicts.

    *templates* restricts which template ids contribute accesses (others
    are treated as opaque); by default every template with a declared
    ``accesses`` callable participates.
    """
    wanted = None if templates is None else set(templates)
    instances: List[Tuple[int, Context]] = []
    index: Dict[Tuple[int, Context], int] = {}
    #: region name -> [(instance idx, is_write, intervals)] in program order.
    region_ops: Dict[str, List[Tuple[int, bool, np.ndarray]]] = {}
    footprints: Dict[int, Dict[str, Tuple[np.ndarray, np.ndarray]]] = {}
    opaque: List[int] = []

    for tmpl in graph.templates:
        participates = tmpl.accesses is not None and (
            wanted is None or tmpl.tid in wanted
        )
        if not participates:
            opaque.append(tmpl.tid)
        for ctx in tmpl.contexts:
            idx = len(instances)
            instances.append((tmpl.tid, ctx))
            index[(tmpl.tid, ctx)] = idx
            if not participates:
                continue
            summary = tmpl.accesses(env, ctx)
            raw: Dict[str, Tuple[List[np.ndarray], List[np.ndarray]]] = {}
            for op in summary:
                iv = op_intervals(op)
                if not len(iv):
                    continue
                name = op.region.name
                region_ops.setdefault(name, []).append((idx, op.is_write, iv))
                reads, writes = raw.setdefault(name, ([], []))
                (writes if op.is_write else reads).append(iv)
            footprints[idx] = {
                name: (
                    merge_intervals(np.concatenate(reads))
                    if reads
                    else np.empty((0, 2), dtype=np.int64),
                    merge_intervals(np.concatenate(writes))
                    if writes
                    else np.empty((0, 2), dtype=np.int64),
                )
                for name, (reads, writes) in raw.items()
            }

    pairs: Dict[Tuple[int, int], Set[str]] = {}
    pair_regions: Dict[Tuple[int, int], Set[str]] = {}

    def record(src: int, dst: int, kind: str, region: str) -> None:
        if src == dst:
            return
        key = (src, dst)
        pairs.setdefault(key, set()).add(kind)
        pair_regions.setdefault(key, set()).add(region)

    for name, ops in region_ops.items():
        space = SegmentSpace.from_intervals(iv for _, _, iv in ops)
        nseg = space.nsegments
        last_writer = np.full(nseg, -1, dtype=np.int64)
        #: Per-segment id of the reader set accumulated since the last
        #: write; id 0 is the empty set.  Sets are copy-on-write tuples
        #: shared across segments, so registering a reader costs one
        #: union per *distinct* set id, not per segment.
        reader_sid = np.zeros(nseg, dtype=np.int64)
        reader_sets: List[Tuple[int, ...]] = [()]
        union_memo: Dict[Tuple[int, int], int] = {}
        for idx, is_write, iv in ops:
            sel = space.mask(iv)
            if is_write:
                # Readers since the last write must precede this write.
                for sid in np.unique(reader_sid[sel]).tolist():
                    for reader in reader_sets[sid]:
                        record(reader, idx, "RW", name)
                # Segments nobody read since their last write: order
                # against that writer directly (otherwise the chain
                # writer -> reader -> this write already orders it).
                unread = reader_sid[sel] == 0
                for src in np.unique(last_writer[sel][unread]).tolist():
                    if src >= 0:
                        record(src, idx, "WW", name)
                last_writer[sel] = idx
                reader_sid[sel] = 0
            else:
                for src in np.unique(last_writer[sel]).tolist():
                    if src >= 0:
                        record(src, idx, "WR", name)
                current = reader_sid[sel]
                for sid in np.unique(current).tolist():
                    key = (sid, idx)
                    new_sid = union_memo.get(key)
                    if new_sid is None:
                        members = reader_sets[sid]
                        if idx in members:
                            new_sid = sid
                        else:
                            new_sid = len(reader_sets)
                            reader_sets.append(members + (idx,))
                        union_memo[key] = new_sid
                    if new_sid != sid:
                        current[current == sid] = new_sid
                reader_sid[sel] = current

    for (src, dst), pair_kinds in pairs.items():
        ptid = instances[src][0]
        ctid = instances[dst][0]
        if ptid == ctid:
            tmpl = graph.template(ptid)
            kinds = ", ".join(
                _KIND_LABEL[k] for k in sorted(pair_kinds)
            )
            raise DerivationError(
                f"instances {instances[src][1]!r} and {instances[dst][1]!r} of "
                f"template {tmpl.name!r} conflict ({kinds} on "
                f"{', '.join(sorted(pair_regions[(src, dst)]))}); "
                "self-dependences are illegal — split the template by "
                "context before deriving"
            )

    return Derivation(instances, index, pairs, pair_regions, footprints, opaque)


# -- diagnosis (the --check-deps pass) -----------------------------------------
@dataclass(frozen=True)
class ArcDiagnosis:
    """Verdict on one *declared* arc."""

    producer: str
    consumer: str
    #: "supported" | "partial" | "redundant" | "opaque" | "conditional"
    status: str
    supported_pairs: int = 0
    total_pairs: int = 0

    def describe(self) -> str:
        label = f"{self.producer} -> {self.consumer}"
        if self.status == "redundant":
            return (
                f"redundant arc {label}: none of its {self.total_pairs} "
                "instance pair(s) is supported by any access overlap"
            )
        if self.status == "partial":
            excess = self.total_pairs - self.supported_pairs
            return (
                f"over-wide arc {label}: {excess} of {self.total_pairs} "
                "instance pair(s) have no access overlap (redundant "
                "synchronisation)"
            )
        if self.status == "opaque":
            return f"arc {label}: endpoint has no access declaration (assumed intentional)"
        if self.status == "conditional":
            return f"arc {label}: conditional (control) arc, not judged by overlap"
        return f"arc {label}: supported"


@dataclass(frozen=True)
class MissingDep:
    """A derived conflict with no declared ordering path."""

    producer: str
    producer_ctx: Context
    consumer: str
    consumer_ctx: Context
    kinds: Tuple[str, ...]
    regions: Tuple[str, ...]

    def describe(self) -> str:
        kinds = ", ".join(_KIND_LABEL[k] for k in self.kinds)
        return (
            f"missing dependence: {self.producer}[{self.producer_ctx!r}] -> "
            f"{self.consumer}[{self.consumer_ctx!r}] ({kinds} on "
            f"{', '.join(self.regions)}) has no ordering path"
        )


@dataclass
class DepsReport:
    """Outcome of :func:`check_deps` on one program."""

    arcs: List[ArcDiagnosis] = field(default_factory=list)
    missing: List[MissingDep] = field(default_factory=list)
    #: Names of templates the deriver could not see into.
    opaque_templates: List[str] = field(default_factory=list)

    @property
    def redundant(self) -> List[ArcDiagnosis]:
        return [a for a in self.arcs if a.status in ("redundant", "partial")]

    @property
    def ok(self) -> bool:
        """No missing ordering (redundancy is a warning, not an error)."""
        return not self.missing

    def format(self) -> str:
        lines: List[str] = []
        for dep in self.missing:
            lines.append(f"error: {dep.describe()}")
        for arc in self.arcs:
            if arc.status in ("redundant", "partial"):
                lines.append(f"warning: {arc.describe()}")
        if self.opaque_templates:
            lines.append(
                "note: no access declarations for "
                + ", ".join(self.opaque_templates)
                + " (their ordering was not checked)"
            )
        if not lines:
            lines.append("deps: clean (every declared arc is supported, no missing dependences)")
        else:
            lines.append(
                f"deps: {len(self.missing)} missing, "
                f"{len(self.redundant)} redundant/over-wide of "
                f"{len(self.arcs)} declared arc(s)"
            )
        return "\n".join(lines)


def _instance_overlap(
    footprints: Dict[int, Dict[str, Tuple[np.ndarray, np.ndarray]]],
    src: int,
    dst: int,
) -> bool:
    """Raw (uncoalesced) conflict test between two instances: any
    write/read, write/write or read/write byte overlap on any region."""
    a = footprints.get(src)
    b = footprints.get(dst)
    if a is None or b is None:
        return False
    for name in a.keys() & b.keys():
        a_read, a_write = a[name]
        b_read, b_write = b[name]
        if (
            intervals_overlap(a_write, b_read)
            or intervals_overlap(a_write, b_write)
            or intervals_overlap(a_read, b_write)
        ):
            return True
    return False


def check_deps(program) -> DepsReport:
    """Diagnose a built program's declared arcs against its accesses.

    Flags *redundant* declared arcs — instance pairs no access overlap
    supports (pure barriers that over-synchronise) — and *missing*
    ordering: derived conflicts with no directed path in the declared
    instance graph.  Arcs whose endpoints are opaque (no ``accesses``)
    are assumed intentional (e.g. pure control dependences) and
    conditional arcs are never judged.  Block (Inlet/Outlet) barriers
    add further ordering at run time, so "missing" is judged against
    the graph alone — the strictest reading.
    """
    graph = program.graph
    derivation = derive(graph, program.env)
    expanded = graph.expand()
    report = DepsReport(
        opaque_templates=[graph.template(t).name for t in derivation.opaque]
    )

    opaque = set(derivation.opaque)
    for arc in graph.arcs:
        prod = graph.template(arc.producer)
        cons = graph.template(arc.consumer)
        if arc.cond_key is not None:
            report.arcs.append(
                ArcDiagnosis(prod.name, cons.name, "conditional")
            )
            continue
        if arc.producer in opaque or arc.consumer in opaque:
            report.arcs.append(ArcDiagnosis(prod.name, cons.name, "opaque"))
            continue
        total = 0
        supported = 0
        for pctx in prod.contexts:
            src = derivation.index[(arc.producer, pctx)]
            for cctx in arc.consumer_contexts(pctx, cons):
                total += 1
                dst = derivation.index[(arc.consumer, cctx)]
                if _instance_overlap(derivation.footprints, src, dst):
                    supported += 1
        if total == 0 or supported == total:
            status = "supported"
        elif supported == 0:
            status = "redundant"
        else:
            status = "partial"
        report.arcs.append(
            ArcDiagnosis(prod.name, cons.name, status, supported, total)
        )

    # Reachability over the declared instance graph (packed bitsets,
    # reverse topological order): reach[u] covers every instance a token
    # from u can precede.
    n = expanded.ninstances
    if derivation.pairs:
        order = _topo_order(expanded.consumers, n)
        words = (n + 63) // 64
        reach = np.zeros((n, words), dtype=np.uint64)
        bit_word = np.arange(n) >> 6
        bit_mask = np.uint64(1) << (np.arange(n, dtype=np.uint64) & np.uint64(63))
        for u in reversed(order):
            row = reach[u]
            for v in expanded.consumers[u]:
                row |= reach[v]
                row[bit_word[v]] |= bit_mask[v]
        for (src, dst) in sorted(derivation.pairs):
            ptid, pctx = derivation.instances[src]
            ctid, cctx = derivation.instances[dst]
            s = expanded.iid_of(ptid, pctx)
            d = expanded.iid_of(ctid, cctx)
            if not (reach[s, bit_word[d]] & bit_mask[d]):
                report.missing.append(
                    MissingDep(
                        graph.template(ptid).name,
                        pctx,
                        graph.template(ctid).name,
                        cctx,
                        tuple(sorted(derivation.pairs[(src, dst)])),
                        tuple(sorted(derivation.pair_regions[(src, dst)])),
                    )
                )
    return report


def _topo_order(consumers: Sequence[Sequence[int]], n: int) -> List[int]:
    indeg = [0] * n
    for outs in consumers:
        for v in outs:
            indeg[v] += 1
    frontier = [u for u in range(n) if indeg[u] == 0]
    order: List[int] = []
    while frontier:
        u = frontier.pop()
        order.append(u)
        for v in consumers[u]:
            indeg[v] -= 1
            if not indeg[v]:
                frontier.append(v)
    return order
