"""The complete DDM program object.

A :class:`DDMProgram` bundles the Synchronization Graph, the shared-data
:class:`~repro.core.environment.Environment`, and optional sequential
prologue/epilogue sections (work the original program performs outside the
parallelised region — e.g. QSORT's array initialisation, which the paper
discusses as a source of cache hand-off cost in §6.2.2).

Programs are machine-independent; any TFlux platform can execute one — the
virtualization the paper claims.  ``blocks()`` produces the TSU-capacity
partition; ``run_sequential()`` executes the whole program in dependency
order on the calling thread, which is both the correctness oracle for the
tests and the functional part of the speedup baseline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.block import DDMBlock, split_into_blocks
from repro.core.dynamic import GraphEpoch, Subflow
from repro.core.environment import Environment
from repro.core.graph import ExpandedGraph, SynchronizationGraph

__all__ = ["DDMProgram", "ProgramReusedError", "SequentialSection"]


class ProgramReusedError(RuntimeError):
    """A DDMProgram was executed twice.

    Programs are single-run objects: executing one mutates its
    :class:`~repro.core.environment.Environment` in place, so a second
    run would start from post-run state and silently compute garbage.
    Build a fresh program (call the builder / ``bench.build()`` again)
    for every execution.
    """


@dataclass
class SequentialSection:
    """A non-parallelised section executed by one core.

    ``cost``/``accesses`` mirror the DThread conventions and price the
    section in the timing simulation (it runs on a single kernel before or
    after the dataflow region).
    """

    name: str
    body: Optional[Callable[[Environment], None]] = None
    cost: Optional[Callable[[Environment], int]] = None
    accesses: Optional[Callable[[Environment], Any]] = None

    def run(self, env: Environment) -> None:
        if self.body is not None:
            self.body(env)

    def compute_cost(self, env: Environment) -> int:
        return int(self.cost(env)) if self.cost is not None else 0


@dataclass
class DDMProgram:
    """A DDM executable: graph + environment + sequential sections."""

    name: str
    graph: SynchronizationGraph
    env: Environment
    prologue: list[SequentialSection] = field(default_factory=list)
    epilogue: list[SequentialSection] = field(default_factory=list)

    _expanded: Optional[ExpandedGraph] = field(default=None, init=False, repr=False)
    _executed: bool = field(default=False, init=False, repr=False)

    # -- single-run guard -----------------------------------------------------
    def mark_executed(self) -> None:
        """Claim this program for one execution (runtimes call this).

        Raises :class:`ProgramReusedError` on the second claim: the
        Environment was already mutated by the first run.
        """
        if self._executed:
            raise ProgramReusedError(
                f"program {self.name!r} was already executed and its "
                "Environment mutated; build a fresh program per run"
            )
        self._executed = True

    # -- structure ----------------------------------------------------------
    def expanded(self, refresh: bool = False) -> ExpandedGraph:
        """The (cached) instance-level graph."""
        if self._expanded is None or refresh:
            self._expanded = self.graph.expand()
        return self._expanded

    def blocks(self, tsu_capacity: Optional[int] = None) -> list[DDMBlock]:
        return split_into_blocks(self.expanded(), tsu_capacity)

    @property
    def ninstances(self) -> int:
        return self.expanded().ninstances

    # -- execution -----------------------------------------------------------
    def fire_order(self):
        """Yield instances in deterministic dataflow order.

        Dataflow firing with a priority queue keyed on instance id — the
        reference schedule used by both the functional oracle
        (:meth:`run_sequential`) and the timed sequential baseline
        (:func:`repro.runtime.simdriver.run_sequential_timed`).  Raises on
        deadlock (an instance whose producers never fire).

        Dynamic graphs: the generator is outcome-driven — after running
        an instance's body the caller sends its outcome back
        (``next_inst = gen.send(outcome)``).  A :class:`Subflow` outcome
        queues a fresh epoch, executed after the spawning epoch drains
        (mirroring the TSU's Outlet→Inlet barrier); a branch-key outcome
        resolves the instance's conditional arcs, squashed instances are
        skipped and their dead arcs give phantom decrements.  Plain
        iteration (``for inst in prog.fire_order()``) still works for
        static programs — ``next()`` sends ``None``.
        """
        pending: list[GraphEpoch] = [GraphEpoch(self.expanded())]
        epoch_idx = 0
        while epoch_idx < len(pending):
            epoch = pending[epoch_idx]
            epoch_idx += 1
            g = epoch.graph
            ready = list(g.ready_counts)
            heap = list(g.entry)
            heapq.heapify(heap)
            executed = 0
            retired = 0
            while heap:
                iid = heapq.heappop(heap)
                outcome = yield g.instances[iid]
                executed += 1
                if isinstance(outcome, Subflow):
                    pending.append(GraphEpoch(outcome.expand()))
                    key = None
                else:
                    key = outcome
                newly_squashed = (
                    epoch.resolve(iid, key) if epoch.has_cond else []
                )
                # Retire squashed instances: they count as done and their
                # dead out-arcs phantom-decrement surviving consumers.
                for siid in newly_squashed:
                    retired += 1
                    for dst in g.consumers[siid]:
                        if dst in epoch.squashed:
                            continue
                        ready[dst] -= 1
                        if ready[dst] == 0:
                            heapq.heappush(heap, dst)
                for dst in g.consumers[iid]:
                    if dst in epoch.squashed:
                        continue
                    ready[dst] -= 1
                    if ready[dst] == 0:
                        heapq.heappush(heap, dst)
            if executed + retired != g.ninstances:
                stuck = [
                    g.instances[i].name
                    for i in range(g.ninstances)
                    if ready[i] > 0 and i not in epoch.squashed
                ]
                raise RuntimeError(
                    f"deadlock: {len(stuck)} instances never fired, "
                    f"e.g. {stuck[:5]}"
                )

    def run_sequential(self) -> Environment:
        """Execute everything on the calling thread, in dependency order.

        This is the reference semantics: prologue sections, then every
        DThread instance in the :meth:`fire_order` schedule (outcomes fed
        back so subflows spawn and conditional arcs resolve), then
        epilogue sections.  Tests compare platform runs against this
        oracle.
        """
        self.mark_executed()
        for section in self.prologue:
            section.run(self.env)
        order = self.fire_order()
        outcome = None
        try:
            while True:
                inst = order.send(outcome)
                outcome = inst.template.run(self.env, inst.ctx)
        except StopIteration:
            pass
        for section in self.epilogue:
            section.run(self.env)
        return self.env
