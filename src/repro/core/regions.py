"""Region algebra: byte intervals, line indices and overlap queries.

DThreads declare *what* they touch as strided sweeps over named regions
(:mod:`repro.sim.accesses`); two consumers of those declarations need the
same geometric primitives:

* the TFluxDist owner map (:mod:`repro.net.ownermap`) intersects sweeps
  at **cache-line** granularity to decide which lines must be forwarded
  between nodes, and keeps vectorised per-line state;
* the dependence deriver (:mod:`repro.core.deps`) intersects sweeps at
  **byte** granularity to decide which DThread instances conflict —
  lines would manufacture false conflicts between neighbours sharing a
  line, and false conflicts inside one template are fatal (self-arcs are
  illegal).

Both views of one sweep live here.  A sweep is canonicalised either to
its line-index vector (:func:`op_line_index`, exactly the representation
the owner map always used) or to a canonical ``(k, 2)`` int64 array of
disjoint half-open byte intervals (:func:`op_intervals`).  On top of the
interval form sit the overlap queries (:func:`intervals_overlap`) and
the coordinate-compressed :class:`SegmentSpace` the deriver sweeps its
last-writer state over.  :class:`LineTable` is the per-region, per-line
vector state the owner map keeps (one row per region, lazily created).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence, Tuple, Union

import numpy as np

from repro.sim.accesses import Region, _RangeOp

__all__ = [
    "op_line_index",
    "op_intervals",
    "merge_intervals",
    "intervals_overlap",
    "intervals_difference",
    "SegmentSpace",
    "LineTable",
    "EMPTY_INTERVALS",
]

#: Canonical empty interval set (shape ``(0, 2)``).
EMPTY_INTERVALS = np.empty((0, 2), dtype=np.int64)


# -- line view (the owner map's granularity) -----------------------------------
def op_line_index(
    op: _RangeOp, line_size: int
) -> Union[slice, np.ndarray]:
    """Vector index selecting the lines one sweep touches.

    Dense sweeps (stride <= line size) become a ``slice``; strided sweeps
    an explicit ``np.intp`` index array — both index per-line state
    arrays (:class:`LineTable` rows) directly.
    """
    lines = op.line_indices(line_size)
    if isinstance(lines, range):
        return slice(lines.start, lines.stop)
    return np.asarray(lines, dtype=np.intp)


class LineTable:
    """Per-region, per-line vector state (one 1-D array per region).

    The owner map keeps two of these (last-writer id and copy-set mask);
    rows are created eagerly for the regions known at construction and
    lazily for regions declared later (which never happens for built
    programs, whose environment is frozen at build time).
    """

    __slots__ = ("line_size", "dtype", "fill", "_rows")

    def __init__(self, line_size: int, dtype, fill) -> None:
        if line_size <= 0:
            raise ValueError(f"line size must be positive, got {line_size}")
        self.line_size = line_size
        self.dtype = np.dtype(dtype)
        self.fill = fill
        self._rows: Dict[str, np.ndarray] = {}

    def add(self, region: Region) -> np.ndarray:
        row = np.full(region.lines(self.line_size), self.fill, dtype=self.dtype)
        self._rows[region.name] = row
        return row

    def row(self, region: Region) -> np.ndarray:
        """The region's state vector, created on first use."""
        row = self._rows.get(region.name)
        if row is None:
            row = self.add(region)
        return row

    def rows(self) -> Iterator[np.ndarray]:
        return iter(self._rows.values())

    def __contains__(self, name: str) -> bool:
        return name in self._rows


# -- byte-interval view (the deriver's granularity) ----------------------------
def op_intervals(op: _RangeOp) -> np.ndarray:
    """Canonical disjoint half-open byte intervals of one sweep.

    ``reps`` is ignored: repeating a sweep changes its cost, not its
    footprint.  Dense sweeps (stride <= elem_size) collapse to a single
    interval; strided sweeps yield one interval per element.
    """
    if op.count == 0:
        return EMPTY_INTERVALS
    if op.stride <= op.elem_size:
        end = op.offset + (op.count - 1) * op.stride + op.elem_size
        return np.array([[op.offset, end]], dtype=np.int64)
    starts = op.offset + np.arange(op.count, dtype=np.int64) * op.stride
    return np.stack([starts, starts + op.elem_size], axis=1)


def merge_intervals(intervals: np.ndarray) -> np.ndarray:
    """Merge overlapping/touching intervals into canonical disjoint form."""
    iv = np.asarray(intervals, dtype=np.int64).reshape(-1, 2)
    if len(iv) <= 1:
        return iv
    iv = iv[np.argsort(iv[:, 0], kind="stable")]
    running_end = np.maximum.accumulate(iv[:, 1])
    # An interval starts a new group when it begins past every prior end.
    new_group = np.empty(len(iv), dtype=bool)
    new_group[0] = True
    new_group[1:] = iv[1:, 0] > running_end[:-1]
    starts = iv[new_group, 0]
    group_idx = np.flatnonzero(new_group)
    ends = np.maximum.reduceat(running_end, group_idx)
    return np.stack([starts, ends], axis=1)


def intervals_overlap(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether two interval sets share at least one byte.

    Both arguments must be canonical (disjoint, sorted) — the output of
    :func:`op_intervals` or :func:`merge_intervals`.
    """
    if len(a) == 0 or len(b) == 0:
        return False
    # For each b-interval, the last a-interval starting before its end.
    pos = np.searchsorted(a[:, 0], b[:, 1], side="left")
    has_prior = pos > 0
    if not has_prior.any():
        return False
    prior_end = a[pos[has_prior] - 1, 1]
    return bool((prior_end > b[has_prior, 0]).any())


def intervals_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Parts of *a* not covered by *b*, in canonical form.

    Both arguments must be canonical (disjoint, sorted).  The race
    checker uses this to name exactly which bytes of an observed
    footprint fall outside the declared one.
    """
    a = np.asarray(a, dtype=np.int64).reshape(-1, 2)
    b = np.asarray(b, dtype=np.int64).reshape(-1, 2)
    if len(a) == 0 or len(b) == 0:
        return a.copy()
    out: list[tuple[int, int]] = []
    j = 0
    for lo, hi in a:
        cur = int(lo)
        # b intervals ending at or before cur can never cover this or any
        # later a interval (both sets are sorted and disjoint).
        while j < len(b) and b[j, 1] <= cur:
            j += 1
        k = j
        while k < len(b) and b[k, 0] < hi:
            if b[k, 0] > cur:
                out.append((cur, int(b[k, 0])))
            cur = max(cur, int(b[k, 1]))
            k += 1
        if cur < hi:
            out.append((cur, int(hi)))
    if not out:
        return EMPTY_INTERVALS
    return np.array(out, dtype=np.int64)


class SegmentSpace:
    """Coordinate-compressed 1-D space over a fixed boundary set.

    Built from every interval endpoint a region will ever see, it maps
    interval sets onto boolean masks over the induced elementary
    segments, so per-segment state (last writer, reader set) can be
    swept with plain NumPy indexing.  Query intervals must be drawn from
    the endpoint set the space was built with.
    """

    __slots__ = ("bounds", "nsegments")

    def __init__(self, bounds: np.ndarray) -> None:
        self.bounds = np.asarray(bounds, dtype=np.int64)
        self.nsegments = max(0, len(self.bounds) - 1)

    @classmethod
    def from_intervals(cls, interval_sets: Iterable[np.ndarray]) -> "SegmentSpace":
        pieces = [np.asarray(iv, dtype=np.int64).ravel() for iv in interval_sets]
        flat = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        return cls(np.unique(flat))

    def mask(self, intervals: np.ndarray) -> np.ndarray:
        """Boolean mask over segments covered by *intervals*."""
        covered = np.zeros(self.nsegments, dtype=bool)
        if len(intervals) == 0 or self.nsegments == 0:
            return covered
        lo = np.searchsorted(self.bounds, intervals[:, 0], side="left")
        hi = np.searchsorted(self.bounds, intervals[:, 1], side="left")
        delta = np.zeros(self.nsegments + 1, dtype=np.int64)
        np.add.at(delta, lo, 1)
        np.add.at(delta, hi, -1)
        np.cumsum(delta[:-1], out=delta[:-1])
        np.greater(delta[:-1], 0, out=covered)
        return covered
