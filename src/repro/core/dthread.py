"""DThreads: templates and dynamic instances.

A *DThread template* is a static node of the Synchronization Graph — a
section of code plus scheduling metadata.  Loop-parallel templates carry a
list of contexts; each context yields one dynamic *DThread instance*, the
unit the TSU actually schedules (paper §2).

Every template carries three callables:

``body(env, ctx)``
    The functional payload — real Python code mutating the shared
    :class:`~repro.core.environment.Environment`.  This is what executes
    in control-flow order once the instance fires.  Its return value is
    the instance's *outcome*: ``None`` for ordinary threads, a
    :class:`~repro.core.dynamic.Subflow` to spawn a dynamic sub-graph, or
    a branch key selecting among the template's conditional arcs.
``cost(env, ctx) -> int``
    Compute cycles charged by the timing simulation (pure CPU work,
    excluding memory stalls).
``accesses(env, ctx) -> AccessSummary``
    Declared memory behaviour, priced by the cache/coherence models.

``cost``/``accesses`` default to a small constant and an empty summary, so
purely functional runs (and the native threaded backend) never need them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.context import Context, normalize_context
from repro.sim.accesses import AccessSummary

__all__ = ["ThreadKind", "DThreadTemplate", "DThreadInstance", "DEFAULT_THREAD_COST"]

#: Fallback compute cost (cycles) when a template declares none: roughly a
#: short body of tens of instructions.
DEFAULT_THREAD_COST = 50


class ThreadKind(enum.Enum):
    """Role of a DThread within its DDM Block."""

    APPLICATION = "application"
    INLET = "inlet"
    OUTLET = "outlet"


@dataclass
class DThreadTemplate:
    """Static description of a DThread (one Synchronization Graph node)."""

    tid: int
    name: str
    body: Optional[Callable[[Any, Context], None]] = None
    contexts: Sequence[Context] = (0,)
    cost: Optional[Callable[[Any, Context], int]] = None
    accesses: Optional[Callable[[Any, Context], AccessSummary]] = None
    kind: ThreadKind = ThreadKind.APPLICATION
    #: Optional placement hint: (ctx, nkernels) -> kernel index.  Used by
    #: the TSU's locality policy when building the Thread-to-Kernel Table.
    affinity: Optional[Callable[[Context, int], int]] = None

    def __post_init__(self) -> None:
        if self.tid < 0:
            raise ValueError(f"thread id must be non-negative, got {self.tid}")
        ctxs = [normalize_context(c) for c in self.contexts]
        if len(set(ctxs)) != len(ctxs):
            raise ValueError(f"duplicate contexts in template {self.name!r}")
        if not ctxs:
            raise ValueError(f"template {self.name!r} has no contexts")
        self.contexts = ctxs

    @property
    def ninstances(self) -> int:
        return len(self.contexts)

    def run(self, env: Any, ctx: Context) -> Any:
        """Execute the functional payload and return its outcome.

        The outcome (the body's return value) is what the dynamic-graph
        machinery consumes: a :class:`~repro.core.dynamic.Subflow` spawns
        a sub-graph, any other non-``None`` value is a branch key for the
        template's conditional arcs.  Static bodies return ``None``.
        """
        if self.body is not None:
            return self.body(env, ctx)
        return None

    def compute_cost(self, env: Any, ctx: Context) -> int:
        if self.cost is None:
            return DEFAULT_THREAD_COST
        return int(self.cost(env, ctx))

    def access_summary(self, env: Any, ctx: Context) -> AccessSummary:
        if self.accesses is None:
            return AccessSummary()
        return self.accesses(env, ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DThreadTemplate #{self.tid} {self.name!r} "
            f"x{self.ninstances} {self.kind.value}>"
        )


@dataclass(frozen=True)
class DThreadInstance:
    """One dynamic DThread: ``(template, context)`` plus its dense id.

    ``iid`` is assigned during graph expansion and is the identifier the
    TSU tracks (Ready Counts, consumer lists, the TKT).
    """

    iid: int
    template: DThreadTemplate
    ctx: Context

    @property
    def name(self) -> str:
        return f"{self.template.name}[{self.ctx}]"

    @property
    def kind(self) -> ThreadKind:
        return self.template.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DThreadInstance {self.iid}: {self.name}>"
