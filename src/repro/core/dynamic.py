"""Dynamic graphs: subflow spawning and conditional-arc resolution.

Static DDM programs fix their Synchronization Graph before execution;
this module holds the two objects that relax that (the Taskflow-style
extension of ROADMAP item 3):

* :class:`Subflow` — a miniature graph builder a DThread *body* returns
  as its outcome.  The scheduler (the TSU at the instant of the
  completing thread's Post-Processing Phase, or the sequential oracle's
  fire order) expands it into a fresh graph *epoch*, cuts it into DDM
  Blocks and splices them after the spawning thread's block.  Because a
  spawned thread's body may itself return a Subflow, arbitrary
  data-dependent recursion (QSORT, adaptive quadrature) unrolls at run
  time.

* :class:`GraphEpoch` — the per-expansion bookkeeping for *conditional
  arcs*.  A conditional arc (``Arc.cond_key is not None``) counts in its
  consumer's Ready Count like any other arc, but only *delivers* if the
  producer's outcome equals its key.  When a producer resolves, every
  unchosen conditional arc dies; an instance all of whose incoming arcs
  are dead can never receive an input and is **squashed** — retired
  without running, counting toward block completion, its own out-arcs
  dying in turn (transitive squash).  An instance with at least one live
  input still fires once its Ready Count reaches zero: dead arcs give a
  *phantom* decrement ("resolved, no data"), so a join after an
  if/else diamond fires when the taken branch completes.

Squash is schedule-independent: whether an arc is dead depends only on
the producers' outcomes (functional values), never on timing, so every
backend and both memory models squash the same set — the
functional/timing split survives dynamism.

Epochs never share arcs: a spawned subflow synchronises with its parent
only through the Outlet→Inlet barrier of the block machinery, exactly
like a cross-block forward arc in a static program.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core.context import Context
from repro.core.dthread import DThreadTemplate, ThreadKind
from repro.core.graph import ExpandedGraph, SynchronizationGraph

__all__ = ["Subflow", "GraphEpoch"]


class Subflow:
    """A dynamically spawned sub-graph, built inside a DThread body.

    Mirrors the :class:`~repro.core.builder.ProgramBuilder` thread/arc
    API (without environment or sequential sections — a subflow shares
    its program's :class:`~repro.core.environment.Environment`).  Bodies
    typically close over the data range they should work on::

        def body(env, ctx):
            if small_enough(env, ctx):
                return None            # leaf: no spawn
            sf = Subflow("refine")
            a = sf.thread("left", body=make_body(lo, mid))
            b = sf.thread("right", body=make_body(mid, hi))
            return sf                  # spawned after this block's Outlet

    Template ids are local to the subflow; the block splitter assigns
    globally unique block ids at spawn time.
    """

    def __init__(self, name: str = "subflow") -> None:
        self.name = name
        self.graph = SynchronizationGraph()
        self._next_tid = 1

    # -- construction (mirrors ProgramBuilder) -------------------------------
    def thread(
        self,
        name: str,
        body: Optional[Callable[[Any, Context], Any]] = None,
        contexts: Union[int, Iterable[Context]] = 1,
        cost: Optional[Callable[[Any, Context], int]] = None,
        accesses: Optional[Callable[[Any, Context], Any]] = None,
        affinity: Optional[Callable[[Context, int], int]] = None,
    ) -> DThreadTemplate:
        tid = self._next_tid
        self._next_tid += 1
        if isinstance(contexts, int):
            ctxs: Sequence[Context] = tuple(range(contexts))
        else:
            ctxs = tuple(contexts)
        tmpl = DThreadTemplate(
            tid=tid,
            name=name,
            body=body,
            contexts=ctxs,
            cost=cost,
            accesses=accesses,
            kind=ThreadKind.APPLICATION,
            affinity=affinity,
        )
        return self.graph.add_template(tmpl)

    def depends(self, producer, consumer, mapping="same"):
        p = producer.tid if isinstance(producer, DThreadTemplate) else producer
        c = consumer.tid if isinstance(consumer, DThreadTemplate) else consumer
        return self.graph.add_arc(p, c, mapping)

    def cond(self, producer, consumer, key, mapping="same"):
        """A conditional arc taken when *producer*'s outcome equals *key*."""
        if key is None:
            raise ValueError(
                "cond key must not be None (None is the no-branch outcome)"
            )
        p = producer.tid if isinstance(producer, DThreadTemplate) else producer
        c = consumer.tid if isinstance(consumer, DThreadTemplate) else consumer
        return self.graph.add_arc(p, c, mapping, cond_key=key)

    # -- inspection ----------------------------------------------------------
    @property
    def ninstances(self) -> int:
        """Instances this subflow expands to (adapters price spawns by it)."""
        return sum(t.ninstances for t in self.graph.templates)

    def expand(self) -> ExpandedGraph:
        """Validate and expand (called by the scheduler at spawn time)."""
        return self.graph.expand()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Subflow {self.name!r} x{self.ninstances}>"


class GraphEpoch:
    """Conditional-arc bookkeeping for one expanded graph.

    Tracks, per instance, how many incoming arcs are still *live* (could
    yet deliver a real input).  ``resolve`` applies one completing
    producer's branch choice; arcs whose key was not chosen die, and any
    instance left with zero live inputs is squashed, killing its own
    out-arcs transitively.  The returned list (discovery order,
    deterministic) is what the scheduler retires.

    The squash set persists across the epoch's DDM Blocks: instances
    squashed while an earlier block runs are retired at load time when
    their block's Inlet fires (squash-at-load).
    """

    __slots__ = ("graph", "cond_out", "has_cond", "live_in", "squashed")

    def __init__(self, graph: ExpandedGraph) -> None:
        self.graph = graph
        self.cond_out = graph.cond_targets
        self.has_cond = bool(self.cond_out)
        # live_in only matters when conditional arcs exist; static epochs
        # skip the allocation (and resolve() is never consulted).
        self.live_in = list(graph.ready_counts) if self.has_cond else None
        self.squashed: set[int] = set()

    def resolve(self, iid: int, key: Any) -> list[int]:
        """Apply the branch choice of completing instance *iid*.

        *key* is the instance's outcome (``None`` and Subflow outcomes
        choose no branch: every conditional arc of the producer dies).
        Returns newly squashed instance ids in deterministic discovery
        order; the caller retires in-block ones and leaves future-block
        ones for squash-at-load.
        """
        arcs = self.cond_out.get(iid)
        if not arcs:
            return []
        newly: list[int] = []
        for arc_key, targets in arcs.items():
            if arc_key == key:
                continue
            for target in targets:
                self._kill_arc(target, newly)
        return newly

    def _kill_arc(self, target: int, newly: list[int]) -> None:
        """One incoming arc of *target* can no longer deliver."""
        self.live_in[target] -= 1
        if (
            self.live_in[target] == 0
            and target not in self.squashed
            and self.graph.ready_counts[target] > 0
        ):
            # No live inputs left (entry instances, in-degree 0, are
            # exempt): squash, and kill every out-arc — conditional arcs
            # of a squashed producer die for all keys, since it will
            # never complete and choose one.
            self.squashed.add(target)
            newly.append(target)
            for consumer in self.graph.consumers[target]:
                self._kill_arc(consumer, newly)
