"""DDM Blocks: TSU-sized partitions of the instance graph.

"To allow programs with arbitrarily large synchronization graphs, without
requiring equally large TSU, DDM programs can be split into DDM Blocks"
(paper §2).  Each block holds at most ``TSU capacity`` DThread instances
plus two special DThreads:

* the **Inlet**, which loads the block's metadata (Ready Counts and
  consumer lists) into the TSU, and
* the **Outlet**, which runs once every application DThread of the block
  has completed; it deallocates the TSU resources and chains to the next
  block's Inlet — or, for the last block, tells the Kernels to exit.

Blocks are cut along a topological order of the instance graph, so every
arc either stays inside one block or crosses *forward*; forward arcs are
subsumed by the Outlet→Inlet barrier (block *k+1* starts only after block
*k* completed), which over-synchronises but preserves dataflow semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.core.dthread import DThreadInstance, DThreadTemplate, ThreadKind
from repro.core.graph import ExpandedGraph

__all__ = ["DDMBlock", "split_into_blocks", "INLET_BASE_TID"]

#: Template ids for generated Inlet/Outlet threads start here, far above
#: anything an application (or the preprocessor) allocates.
INLET_BASE_TID = 1_000_000


@dataclass
class DDMBlock:
    """One TSU-loadable unit: a slice of the instance graph.

    Instance ids are *local* to the block (dense, 0-based); ``instances``
    maps the local id to the original :class:`DThreadInstance`.  The inlet
    and outlet occupy the two ids past the application instances.
    """

    block_id: int
    instances: list[DThreadInstance]
    ready_counts: list[int]
    consumers: list[list[int]]
    entry: list[int]
    inlet: DThreadInstance = field(init=False)
    outlet: DThreadInstance = field(init=False)
    is_last: bool = False

    def __post_init__(self) -> None:
        n = len(self.instances)
        inlet_tmpl = DThreadTemplate(
            tid=INLET_BASE_TID + 2 * self.block_id,
            name=f"inlet.{self.block_id}",
            kind=ThreadKind.INLET,
        )
        outlet_tmpl = DThreadTemplate(
            tid=INLET_BASE_TID + 2 * self.block_id + 1,
            name=f"outlet.{self.block_id}",
            kind=ThreadKind.OUTLET,
        )
        self.inlet = DThreadInstance(n, inlet_tmpl, 0)
        self.outlet = DThreadInstance(n + 1, outlet_tmpl, 0)

    @property
    def size(self) -> int:
        """Application instances in the block (excludes inlet/outlet)."""
        return len(self.instances)

    def check_invariants(self) -> None:
        n = self.size
        incoming = [0] * n
        for outs in self.consumers:
            for dst in outs:
                assert 0 <= dst < n
                incoming[dst] += 1
        for i in range(n):
            assert incoming[i] == self.ready_counts[i]
        assert sorted(self.entry) == [i for i in range(n) if self.ready_counts[i] == 0]


def _topological_order(graph: ExpandedGraph) -> list[int]:
    """Kahn's algorithm over the instance graph (deterministic)."""
    n = graph.ninstances
    indeg = list(graph.ready_counts)
    queue = deque(iid for iid in range(n) if indeg[iid] == 0)
    order: list[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.consumers[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if len(order) != n:
        raise ValueError("instance graph contains a cycle")
    return order


def split_into_blocks(
    graph: ExpandedGraph,
    tsu_capacity: Optional[int] = None,
    first_block_id: int = 0,
    mark_last: bool = True,
) -> list[DDMBlock]:
    """Cut the expanded graph into DDM Blocks of at most *tsu_capacity*
    application DThreads each (``None`` = one block for the whole graph).

    *first_block_id* offsets the block ids (and thereby the generated
    Inlet/Outlet template ids): dynamically spawned subflows must not
    collide with the static blocks already scheduled.  *mark_last* is
    disabled for spawned blocks — a dynamic block never terminates the
    program; the TSU exits on position, not on the flag.
    """
    n = graph.ninstances
    if tsu_capacity is None or tsu_capacity >= n:
        boundaries = [n]
    else:
        if tsu_capacity < 1:
            raise ValueError("tsu_capacity must be >= 1")
        boundaries = list(range(tsu_capacity, n, tsu_capacity)) + [n]

    order = _topological_order(graph)
    block_of = [0] * n
    start = 0
    for b, end in enumerate(boundaries):
        for pos in range(start, end):
            block_of[order[pos]] = b
        start = end

    blocks: list[DDMBlock] = []
    start = 0
    for b, end in enumerate(boundaries):
        members = order[start:end]
        start = end
        local = {iid: i for i, iid in enumerate(members)}
        instances = [graph.instances[iid] for iid in members]
        consumers: list[list[int]] = [[] for _ in members]
        ready = [0] * len(members)
        for iid in members:
            for dst in graph.consumers[iid]:
                if block_of[dst] == b:
                    consumers[local[iid]].append(local[dst])
                    ready[local[dst]] += 1
                # Cross-block (always forward) arcs are enforced by the
                # Outlet -> Inlet barrier between blocks.
        entry = [i for i in range(len(members)) if ready[i] == 0]
        blocks.append(
            DDMBlock(
                block_id=first_block_id + b,
                instances=instances,
                ready_counts=ready,
                consumers=consumers,
                entry=entry,
            )
        )
    if blocks and mark_last:
        blocks[-1].is_last = True
    return blocks
