"""The Data-Driven Multithreading (DDM) model — the paper's contribution.

This subpackage defines the machine-independent entities of §2 and §3:

* :class:`~repro.core.dthread.DThreadTemplate` /
  :class:`~repro.core.dthread.DThreadInstance` — DThreads: non-overlapping
  code sections executed internally in control-flow order but scheduled in
  dataflow order.
* :class:`~repro.core.graph.SynchronizationGraph` — nodes are DThreads,
  arcs are producer→consumer data dependencies; expansion yields the
  instance-level graph with Ready Counts.
* :class:`~repro.core.block.DDMBlock` — subsets of the instance graph that
  fit in the TSU, each bracketed by an Inlet and an Outlet DThread.
* :class:`~repro.core.program.DDMProgram` — the complete executable: the
  ordered blocks plus the shared-data environment.
* :class:`~repro.core.environment.Environment` — named shared variables and
  arrays, with the region map that lets the timing layer model their cache
  behaviour.
* :class:`~repro.core.builder.ProgramBuilder` — the construction API used
  by the preprocessor back-end, the decorator front-end, and the apps.
* :mod:`repro.core.regions` — the shared region algebra (byte intervals,
  line tables, segment spaces) used by the dependence deriver and the
  distributed owner map.
* :mod:`repro.core.deps` — the Couillard-style dependence deriver: computes
  the synchronization graph from per-thread access summaries
  (:func:`~repro.core.deps.derive`, :meth:`ProgramBuilder.auto_depends`)
  and diagnoses declared graphs against it
  (:func:`~repro.core.deps.check_deps`).
"""

from repro.core.context import Context, CTX_ALL
from repro.core.dthread import DThreadInstance, DThreadTemplate, ThreadKind
from repro.core.dynamic import GraphEpoch, Subflow
from repro.core.environment import Environment
from repro.core.graph import Arc, GraphError, SynchronizationGraph
from repro.core.block import DDMBlock
from repro.core.program import DDMProgram, ProgramReusedError
from repro.core.builder import ProgramBuilder
from repro.core.deps import (
    ContextMap,
    DepsReport,
    Derivation,
    DerivationError,
    check_deps,
    derive,
)

__all__ = [
    "Context",
    "CTX_ALL",
    "DThreadInstance",
    "DThreadTemplate",
    "ThreadKind",
    "GraphEpoch",
    "Subflow",
    "Environment",
    "Arc",
    "GraphError",
    "SynchronizationGraph",
    "DDMBlock",
    "DDMProgram",
    "ProgramReusedError",
    "ProgramBuilder",
    "ContextMap",
    "DepsReport",
    "Derivation",
    "DerivationError",
    "check_deps",
    "derive",
]
