"""DThread contexts.

A DThread template with a loop range is *instantiated* once per context
value, exactly like the context field of classic dynamic-dataflow tokens:
the pair ``(template id, context)`` names one dynamic DThread instance.
Contexts here are integers (loop indices) or tuples of integers (nested
loops); the special :data:`CTX_ALL` names "every instance of a template"
in dependence declarations.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

__all__ = ["Context", "CTX_ALL", "normalize_context", "context_range"]

#: One dynamic instance identifier component: an int or tuple of ints.
Context = Union[int, Tuple[int, ...]]


class _All:
    """Sentinel: an arc touching every instance of a template."""

    _instance = None

    def __new__(cls) -> "_All":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CTX_ALL"


CTX_ALL = _All()


def normalize_context(ctx: Context) -> Context:
    """Canonicalise a context: 1-tuples collapse to plain ints."""
    if isinstance(ctx, tuple):
        if len(ctx) == 1:
            return ctx[0]
        return tuple(int(c) for c in ctx)
    return int(ctx)


def context_range(*bounds: int) -> list[Context]:
    """All contexts of an n-deep loop nest with the given trip counts.

    >>> context_range(3)
    [0, 1, 2]
    >>> context_range(2, 2)
    [(0, 0), (0, 1), (1, 0), (1, 1)]
    """
    if not bounds:
        return [0]
    if len(bounds) == 1:
        return list(range(bounds[0]))
    result: list[Context] = []

    def rec(prefix: tuple[int, ...], rest: tuple[int, ...]) -> None:
        if not rest:
            result.append(normalize_context(prefix))
            return
        for i in range(rest[0]):
            rec(prefix + (i,), rest[1:])

    rec((), tuple(bounds))
    return result
