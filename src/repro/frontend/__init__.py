"""Pythonic front-end for writing DDM programs.

The pragma language (:mod:`repro.preprocessor`) is the faithful DDMCPP
reproduction; this package is the interface a Python user would actually
want: decorators over ordinary functions.

>>> from repro.frontend import DDM
>>> ddm = DDM("example")
>>> parts = ddm.env.alloc("parts", 4)
>>> @ddm.thread(contexts=4)
... def work(env, i):
...     env.array("parts")[i] = i + 1
>>> @ddm.thread(depends=[(work, "all")])
... def total(env, _):
...     env.set("total", float(env.array("parts").sum()))
>>> ddm.build().run_sequential().get("total")
10.0
"""

from repro.frontend.decorators import DDM

__all__ = ["DDM"]
