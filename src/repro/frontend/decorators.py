"""Decorator-based DDM program construction."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core.builder import ProgramBuilder
from repro.core.context import Context
from repro.core.dthread import DThreadTemplate
from repro.core.environment import Environment
from repro.core.program import DDMProgram

__all__ = ["DDM"]

#: A producer reference in ``depends=[...]``: the decorated function, the
#: template, or a numeric tid — optionally paired with a mapping.
ProducerRef = Union[Callable, DThreadTemplate, int]
DependSpec = Union[ProducerRef, tuple[ProducerRef, Union[str, Callable]]]


class DDM:
    """A DDM program under construction via decorators."""

    def __init__(
        self,
        name: str,
        env: Optional[Environment] = None,
        auto_depends: bool = False,
    ) -> None:
        self._builder = ProgramBuilder(name, env=env)
        self._templates: dict[Callable, DThreadTemplate] = {}
        self._built: Optional[DDMProgram] = None
        #: Derive arcs from the threads' ``accesses`` declarations at
        #: build time (:meth:`ProgramBuilder.auto_depends`) — explicit
        #: ``depends=[...]`` specs keep precedence per template pair.
        self._auto_depends = auto_depends

    @property
    def env(self) -> Environment:
        return self._builder.env

    # -- helpers -----------------------------------------------------------
    def _resolve(self, ref: ProducerRef) -> int:
        if isinstance(ref, DThreadTemplate):
            return ref.tid
        if isinstance(ref, int):
            return ref
        tmpl = self._templates.get(ref)
        if tmpl is None:
            raise ValueError(
                f"{ref!r} is not a registered DThread of this program"
            )
        return tmpl.tid

    # -- decorators -----------------------------------------------------------
    def thread(
        self,
        contexts: Union[int, Iterable[Context]] = 1,
        depends: Sequence[DependSpec] = (),
        cost: Optional[Callable[[Any, Context], int]] = None,
        accesses: Optional[Callable[[Any, Context], Any]] = None,
        affinity: Optional[Callable[[Context, int], int]] = None,
        name: Optional[str] = None,
    ) -> Callable[[Callable], Callable]:
        """Register the decorated ``f(env, ctx)`` as a DThread template.

        ``depends`` entries are producers: either a bare reference
        (mapping defaults to ``"same"``) or ``(producer, mapping)`` where
        mapping is ``"same"``, ``"all"`` or a callable context map.
        """

        def decorate(fn: Callable) -> Callable:
            if self._built is not None:
                raise RuntimeError("program already built")
            tmpl = self._builder.thread(
                name or fn.__name__,
                body=fn,
                contexts=contexts,
                cost=cost,
                accesses=accesses,
                affinity=affinity,
            )
            self._templates[fn] = tmpl
            for spec in depends:
                if isinstance(spec, tuple):
                    producer, mapping = spec
                else:
                    producer, mapping = spec, "same"
                self._builder.depends(self._resolve(producer), tmpl, mapping)
            fn.template = tmpl  # type: ignore[attr-defined]
            return fn

        return decorate

    def prologue(self, fn: Callable) -> Callable:
        """Register a sequential prologue section ``f(env)``."""
        self._builder.prologue(fn.__name__, body=fn)
        return fn

    def epilogue(self, fn: Callable) -> Callable:
        """Register a sequential epilogue section ``f(env)``."""
        self._builder.epilogue(fn.__name__, body=fn)
        return fn

    # -- finish ------------------------------------------------------------------
    def build(self) -> DDMProgram:
        """Validate and return the program (idempotent)."""
        if self._built is None:
            if self._auto_depends:
                self._builder.auto_depends()
            self._built = self._builder.build()
        return self._built
