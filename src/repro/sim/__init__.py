"""Full-system multicore simulator substrate.

This subpackage stands in for the Simics-based full-system simulator the
TFlux paper used for the TFluxHard evaluation (and for the native x86 and
Cell/BE machines used by TFluxSoft/TFluxCell).  It provides:

* :mod:`repro.sim.engine` — a discrete-event simulation (DES) core with
  generator-based processes, events, and capacity resources.
* :mod:`repro.sim.cache` — an exact set-associative, LRU, MESI-coherent
  cache-hierarchy model (line granularity), mirroring Simics ``gcache``.
* :mod:`repro.sim.fastcache` — a vectorised (NumPy) LRU/MESI model operating
  on declared access ranges; cross-validated against :mod:`repro.sim.cache`.
* :mod:`repro.sim.accesses` — the declarative memory-access summary language
  used by DThread cost models.
* :mod:`repro.sim.memory`, :mod:`repro.sim.interconnect` — DRAM and shared
  bus (with arbiter) models.
* :mod:`repro.sim.cpu`, :mod:`repro.sim.machine` — core and whole-machine
  configurations (the paper's "Bagle" 28-core CMP, the 8-core Xeon box, and
  the PS3 Cell/BE).
* :mod:`repro.sim.mmi` — the Memory-Mapped Interface through which the
  hardware TSU is attached to the system network.
"""

from repro.sim.engine import Engine, Event, Process, Resource, Timeout
from repro.sim.accesses import AccessSummary, Read, Write, Region
from repro.sim.cache import CacheConfig, CoherentMemorySystem
from repro.sim.fastcache import FastMemorySystem
from repro.sim.machine import MachineConfig, BAGLE_27, XEON_8, X86_9_SIM, CELL_PS3

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Resource",
    "Timeout",
    "AccessSummary",
    "Read",
    "Write",
    "Region",
    "CacheConfig",
    "CoherentMemorySystem",
    "FastMemorySystem",
    "MachineConfig",
    "BAGLE_27",
    "XEON_8",
    "X86_9_SIM",
    "CELL_PS3",
]
