"""Machine configurations used in the paper's evaluation.

Three machines appear in §6:

* **Bagle** — the Simics-simulated 28-core Sparc CMP (§6.1.1): per core a
  32 KB 4-way 64 B-line L1 D-cache (2-cycle read, 0-cycle write) and a
  2 MB 8-way L2 (20-cycle read/write); MESI coherence.  One core is
  reserved for the OS (§5), leaving the 27 compute nodes of Figure 5.
* **The IBM x3650 Xeon box** (§6.2.1) — 2 × Xeon E5320 QuadCore: per core
  a 32 KB 8-way 64 B L1 (3 cycles); each QuadCore pairs its cores, each
  pair sharing a 4 MB 16-way L2 (14 cycles).  One core is reserved for the
  OS and one runs the TSU Emulator, leaving the 6 kernels of Figure 6.
* **The Sony PS3 Cell/BE** (§6.3) — 3.2 GHz, one PPE (runs the TSU
  Emulator) plus 6 programmer-visible SPEs with 256 KB Local Stores and
  256 MB of XDR main memory.

:data:`BAGLE_27`, :data:`XEON_8` and :data:`CELL_PS3` are module-level
instances of these configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.accesses import RegionSpace
from repro.sim.cache import CacheConfig, CoherentMemorySystem, MemoryConfig
from repro.sim.fastcache import FastMemorySystem

__all__ = ["MachineConfig", "CellParams", "BAGLE_27", "XEON_8", "X86_9_SIM", "CELL_PS3"]


@dataclass(frozen=True)
class CellParams:
    """Cell/BE-specific parameters (only set on the PS3 config)."""

    n_spes: int = 6
    local_store_bytes: int = 256 * 1024
    dma_setup_cycles: int = 300
    dma_cycles_per_line: int = 4  # sustained EIB bandwidth per 128B line
    dma_line_size: int = 128
    mailbox_latency: int = 100
    command_buffer_bytes: int = 128


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one evaluation machine."""

    name: str
    ncores: int
    l1: CacheConfig
    l2: CacheConfig
    mem: MemoryConfig
    dram_bytes: int
    description: str = ""
    # Core i -> index of the L2 it uses (None = one private L2 per core).
    l2_group_of: Optional[tuple[int, ...]] = None
    os_reserved_cores: int = 1
    cell: Optional[CellParams] = None

    def l2_groups(self) -> list[int]:
        if self.l2_group_of is not None:
            return list(self.l2_group_of)
        return list(range(self.ncores))

    @property
    def max_kernels(self) -> int:
        """Compute kernels available once OS-reserved cores are removed.

        Platform layers subtract further cores (e.g. the TFluxSoft TSU
        Emulator core) on top of this.
        """
        return self.ncores - self.os_reserved_cores

    def memory_system(
        self, regions: RegionSpace, exact: bool = False,
        single_issuer: bool = False,
    ) -> CoherentMemorySystem | FastMemorySystem:
        """Build a memory system for this machine over *regions*.

        *single_issuer* declares that only one core will ever issue
        accesses (the sequential baseline): the fast model then skips the
        provably-inert coherence bookkeeping.  Timing is unaffected.
        """
        if exact:
            return CoherentMemorySystem(
                ncores=self.ncores,
                l1=self.l1,
                l2=self.l2,
                mem=self.mem,
                regions=regions,
                l2_groups=self.l2_groups(),
            )
        return FastMemorySystem(
            ncores=self.ncores,
            l1=self.l1,
            l2=self.l2,
            mem=self.mem,
            regions=regions,
            l2_groups=self.l2_groups(),
            single_issuer=single_issuer,
        )

    def with_cores(self, ncores: int) -> "MachineConfig":
        """A copy of this machine with a different core count.

        Used by the kernel-count sweeps: the paper varies the number of
        Kernels while keeping the machine fixed, which this mirrors by
        keeping all cache/latency parameters.
        """
        groups = None
        if self.l2_group_of is not None:
            # Preserve the pair-sharing *pattern* (cores/L2) at the new
            # core count rather than the original raw indices.
            cores_per_l2 = self.ncores // (max(self.l2_group_of) + 1)
            groups = tuple(i // cores_per_l2 for i in range(ncores))
        return replace(self, ncores=ncores, l2_group_of=groups)


# -- Bagle: the simulated 28-core Sparc CMP (TFluxHard host) ----------------
BAGLE_27 = MachineConfig(
    name="bagle",
    ncores=28,
    l1=CacheConfig(size=32 * 1024, line_size=64, assoc=4, read_latency=2, write_latency=0),
    l2=CacheConfig(size=2 * 1024 * 1024, line_size=64, assoc=8, read_latency=20, write_latency=20),
    mem=MemoryConfig(dram_latency=100, cache_to_cache_latency=40, upgrade_latency=8),
    dram_bytes=4 << 30,
    os_reserved_cores=1,
    description="Simics-simulated 28-core Sparc CMP (Suse 7.3, kernel 2.4.14 SMP)",
)

# -- IBM x3650: 2 x Xeon E5320 QuadCore (TFluxSoft host) --------------------
XEON_8 = MachineConfig(
    name="xeon8",
    ncores=8,
    l1=CacheConfig(size=32 * 1024, line_size=64, assoc=8, read_latency=3, write_latency=1),
    l2=CacheConfig(size=4 * 1024 * 1024, line_size=64, assoc=16, read_latency=14, write_latency=14),
    mem=MemoryConfig(dram_latency=200, cache_to_cache_latency=60, upgrade_latency=12),
    dram_bytes=18 << 30,
    # E5320: each QuadCore is two pairs, each pair shares one 4MB L2.
    l2_group_of=tuple(i // 2 for i in range(8)),
    os_reserved_cores=1,
    description="IBM x3650, 2x Xeon E5320 QuadCore, 18GB DDR2-333",
)

# -- The "9 cores X86 system similar to Bagle" of §6.1.2 --------------------
# "The same benchmarks have been executed on a simulated 9 cores X86 system
# similar to Bagle.  The speedup values observed and conclusions drawn are
# similar to those reported" — 9 cores, x86-flavoured latencies, otherwise
# Bagle-like (hardware TSU, private L2s, MESI).
X86_9_SIM = MachineConfig(
    name="x86_9sim",
    ncores=9,
    l1=CacheConfig(size=32 * 1024, line_size=64, assoc=8, read_latency=3, write_latency=1),
    l2=CacheConfig(size=2 * 1024 * 1024, line_size=64, assoc=8, read_latency=18, write_latency=18),
    mem=MemoryConfig(dram_latency=150, cache_to_cache_latency=50, upgrade_latency=10),
    dram_bytes=4 << 30,
    os_reserved_cores=1,
    description="Simics-style 9-core x86 CMP similar to Bagle (§6.1.2)",
)

# -- Sony PS3 Cell/BE (TFluxCell host) --------------------------------------
CELL_PS3 = MachineConfig(
    name="cell_ps3",
    ncores=7,  # 1 PPE + 6 programmer-visible SPEs
    # The PPE's caches (SPEs have Local Stores instead, see CellParams).
    l1=CacheConfig(size=32 * 1024, line_size=128, assoc=4, read_latency=2, write_latency=1),
    l2=CacheConfig(size=512 * 1024, line_size=128, assoc=8, read_latency=25, write_latency=25),
    mem=MemoryConfig(dram_latency=250, cache_to_cache_latency=80, upgrade_latency=16),
    dram_bytes=256 << 20,
    os_reserved_cores=0,
    cell=CellParams(),
    description="Sony PS3, Cell/BE @3.2GHz, 6 usable SPEs, 256MB XDR",
)
