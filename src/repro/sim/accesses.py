"""Declarative memory-access summaries for DThread cost models.

The TFlux paper's workloads are regular scientific kernels: the memory
behaviour of each DThread is a handful of strided sweeps over named arrays
("the thread reads rows ``i0..i1`` of A, the whole of B, and writes rows
``i0..i1`` of C").  Instead of instruction-level traces, DThreads declare
an :class:`AccessSummary` — an ordered list of :class:`Read`/:class:`Write`
range operations over named :class:`Region` objects.

Both memory models consume summaries:

* :class:`repro.sim.cache.CoherentMemorySystem` expands each range to
  individual cache-line accesses (exact, slow — used for validation and
  small runs);
* :class:`repro.sim.fastcache.FastMemorySystem` processes whole ranges with
  vectorised NumPy state (fast — used for the benchmark sweeps).

Regions live in a :class:`RegionSpace` so that two DThreads naming "B" talk
about the same lines, which is what makes MESI coherence effects (the
paper's MMULT coherency misses, QSORT array hand-off) visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Region", "RegionSpace", "Read", "Write", "AccessSummary"]


@dataclass(frozen=True)
class Region:
    """A named, contiguous allocation in the simulated address space.

    Attributes
    ----------
    name:
        Unique name within its :class:`RegionSpace` (e.g. ``"matrix_B"``).
    size:
        Size in bytes.
    index:
        Dense id assigned by the owning :class:`RegionSpace`; memory models
        use it to key per-region state arrays.
    """

    name: str
    size: int
    index: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} has non-positive size")

    def lines(self, line_size: int) -> int:
        """Number of cache lines the region spans."""
        return -(-self.size // line_size)


class RegionSpace:
    """Registry of named regions forming one simulated address space."""

    def __init__(self) -> None:
        self._regions: dict[str, Region] = {}

    def region(self, name: str, size: int) -> Region:
        """Create (or fetch, if sizes agree) the region called *name*."""
        existing = self._regions.get(name)
        if existing is not None:
            if existing.size != size:
                raise ValueError(
                    f"region {name!r} re-declared with size {size} != {existing.size}"
                )
            return existing
        reg = Region(name, size, index=len(self._regions))
        self._regions[name] = reg
        return reg

    def get(self, name: str) -> Region:
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions.values())

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self._regions.values())


@dataclass(frozen=True)
class _RangeOp:
    """One strided sweep over a byte range of a region.

    ``stride`` is the distance in bytes between consecutive *element*
    accesses; elements of ``elem_size`` bytes are touched starting at
    ``offset``, ``count`` of them.  ``reps`` repeats the whole sweep (e.g.
    an in-place sort passes over its chunk ~log n times); repeated sweeps
    hit in cache if the footprint fits, which the models account for.
    """

    region: Region
    offset: int
    count: int
    elem_size: int = 8
    stride: int = 8
    reps: int = 1
    #: Whether the whole range must be simultaneously resident in a
    #: scratchpad (SPE Local Store) for the DThread to execute, or can be
    #: streamed through it in tiles.  Irrelevant to cache-based machines;
    #: decisive for TFluxCell capacity checks (paper §6.3).
    resident: bool = True

    is_write = False

    def __post_init__(self) -> None:
        if self.count < 0 or self.reps < 0:
            raise ValueError("count/reps must be non-negative")
        if self.elem_size <= 0 or self.stride <= 0:
            raise ValueError("elem_size/stride must be positive")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")
        end = self.offset + (self.count - 1) * self.stride + self.elem_size
        if self.count and end > self.region.size:
            raise ValueError(
                f"access [{self.offset}, {end}) overruns region "
                f"{self.region.name!r} of size {self.region.size}"
            )

    @property
    def bytes_touched(self) -> int:
        """Bytes of distinct elements touched in one sweep."""
        return self.count * self.elem_size

    def line_indices(self, line_size: int) -> range | list[int]:
        """Distinct line numbers (region-relative) touched by one sweep.

        Returns a ``range`` when the sweep is dense (stride <= line size),
        otherwise an explicit sorted list.
        """
        if self.count == 0:
            return range(0)
        first = self.offset // line_size
        last = (self.offset + (self.count - 1) * self.stride + self.elem_size - 1) // line_size
        if self.stride <= line_size:
            return range(first, last + 1)
        seen: set[int] = set()
        for i in range(self.count):
            start = (self.offset + i * self.stride) // line_size
            end = (self.offset + i * self.stride + self.elem_size - 1) // line_size
            seen.update(range(start, end + 1))
        return sorted(seen)


@dataclass(frozen=True)
class Read(_RangeOp):
    """A read sweep."""

    is_write = False


@dataclass(frozen=True)
class Write(_RangeOp):
    """A write sweep."""

    is_write = True


@dataclass
class AccessSummary:
    """Ordered collection of range operations performed by one DThread."""

    ops: list[_RangeOp] = field(default_factory=list)

    def read(
        self,
        region: Region,
        offset: int = 0,
        count: int | None = None,
        *,
        elem_size: int = 8,
        stride: int | None = None,
        reps: int = 1,
        resident: bool = True,
    ) -> "AccessSummary":
        """Append a read sweep; defaults to a sweep of the whole region
        (element count derived from the stride when one is given)."""
        step = stride or elem_size
        if count is None:
            count = max(0, (region.size - offset - elem_size) // step + 1)
        self.ops.append(
            Read(region, offset, count, elem_size, step, reps, resident)
        )
        return self

    def write(
        self,
        region: Region,
        offset: int = 0,
        count: int | None = None,
        *,
        elem_size: int = 8,
        stride: int | None = None,
        reps: int = 1,
        resident: bool = True,
    ) -> "AccessSummary":
        """Append a write sweep; defaults to a sweep of the whole region
        (element count derived from the stride when one is given)."""
        step = stride or elem_size
        if count is None:
            count = max(0, (region.size - offset - elem_size) // step + 1)
        self.ops.append(
            Write(region, offset, count, elem_size, step, reps, resident)
        )
        return self

    def extend(self, other: "AccessSummary") -> "AccessSummary":
        self.ops.extend(other.ops)
        return self

    def __iter__(self) -> Iterator[_RangeOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def bytes_read(self) -> int:
        return sum(op.bytes_touched * op.reps for op in self.ops if not op.is_write)

    @property
    def bytes_written(self) -> int:
        return sum(op.bytes_touched * op.reps for op in self.ops if op.is_write)

    def regions(self) -> set[str]:
        return {op.region.name for op in self.ops}

    @staticmethod
    def merge(summaries: Iterable["AccessSummary"]) -> "AccessSummary":
        merged = AccessSummary()
        for s in summaries:
            merged.ops.extend(s.ops)
        return merged
