"""Vectorised LRU/MESI memory model for large benchmark sweeps.

The exact model (:mod:`repro.sim.cache`) walks every cache line of every
sweep through a set-associative LRU in pure Python — faithful but far too
slow for the paper's full parameter grid (5 benchmarks × 3 sizes × 5 kernel
counts × unroll factors).  This module keeps the same *protocol-level*
behaviour but processes each declared range with NumPy array operations:

* **Residency** is approximated by time-distance LRU: a per-core logical
  clock advances by the number of distinct lines each sweep touches, and a
  line is considered L1-resident when it was touched within the last
  ``L1 capacity`` line-touches (i.e. the cache is modelled as fully
  associative with LRU).  The same scheme models each (possibly shared) L2.
* **Coherence** is exact at line granularity: a per-line ``owner`` array
  records the core holding the line Modified, and a per-line bitmask
  records all cores with a valid copy.  Writes invalidate remote copies
  (upgrade or request-for-ownership), remote-owned reads are classified as
  cache-to-cache coherence misses — precisely the MMULT "coherency miss"
  effect the paper discusses in §6.1.2.

Latency constants are identical to the exact model, and the test suite
cross-validates the two models' hit/miss breakdowns on the workload access
patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.accesses import AccessSummary, RegionSpace, _RangeOp
from repro.sim.cache import CacheConfig, CacheStats, MemoryConfig

__all__ = ["FastMemorySystem"]


@dataclass
class _RegionState:
    """Per-region coherence/residency arrays (one entry per cache line)."""

    l1_last: np.ndarray  # (ncores, nlines) int64, -1 = never
    l2_last: np.ndarray  # (ngroups, nlines) int64, -1 = never
    owner: np.ndarray  # (nlines,) int16, -1 = no modified owner
    sharers: np.ndarray  # (nlines,) uint64 bitmask of cores with valid copies


class FastMemorySystem:
    """Drop-in counterpart of :class:`~repro.sim.cache.CoherentMemorySystem`.

    Exposes the same ``run_op`` / ``run_summary`` / ``stats`` surface so the
    runtime drivers can switch between exact and fast models with a flag.
    """

    def __init__(
        self,
        ncores: int,
        l1: CacheConfig,
        l2: CacheConfig,
        mem: MemoryConfig,
        regions: RegionSpace,
        l2_groups: list[int] | None = None,
    ) -> None:
        if ncores > 63:
            raise ValueError("bitmask coherence supports at most 63 cores")
        self.ncores = ncores
        self.l1cfg = l1
        self.l2cfg = l2
        self.mem = mem
        self.line_size = l1.line_size
        self.regions = regions
        if l2_groups is None:
            l2_groups = list(range(ncores))
        self.l2_groups = l2_groups
        self.ngroups = max(l2_groups) + 1

        self.l1_capacity = l1.num_lines
        self.l2_capacity = l2.size // self.line_size

        self._clock = np.zeros(ncores, dtype=np.int64)
        self._l2_clock = np.zeros(self.ngroups, dtype=np.int64)
        # Freed-by-invalidation L1 slots per core (see _sweep).
        self._holes = [0] * ncores
        # Per-core coherence bitmasks, hoisted out of the per-sweep hot
        # path (uint64 construction is surprisingly costly in a loop).
        all_cores = (1 << ncores) - 1
        self._corebit = [np.uint64(1 << c) for c in range(ncores)]
        self._othermask = [np.uint64(all_cores ^ (1 << c)) for c in range(ncores)]
        self._group_of = np.asarray(self.l2_groups, dtype=np.int64)
        self._state: dict[str, _RegionState] = {}
        for reg in regions:
            n = reg.lines(self.line_size)
            self._state[reg.name] = _RegionState(
                l1_last=np.full((ncores, n), -1, dtype=np.int64),
                l2_last=np.full((self.ngroups, n), -1, dtype=np.int64),
                owner=np.full(n, -1, dtype=np.int16),
                sharers=np.zeros(n, dtype=np.uint64),
            )
        self.stats = [CacheStats() for _ in range(ncores)]
        self.bus_transactions = 0

    # -- helpers -----------------------------------------------------------
    def _region_state(self, name: str) -> _RegionState:
        st = self._state.get(name)
        if st is None:
            # Region declared after construction: lazily allocate.
            reg = self.regions.get(name)
            n = reg.lines(self.line_size)
            st = _RegionState(
                l1_last=np.full((self.ncores, n), -1, dtype=np.int64),
                l2_last=np.full((self.ngroups, n), -1, dtype=np.int64),
                owner=np.full(n, -1, dtype=np.int16),
                sharers=np.zeros(n, dtype=np.uint64),
            )
            self._state[name] = st
        return st

    def _lines_array(self, op: _RangeOp) -> np.ndarray:
        idx = op.line_indices(self.line_size)
        if isinstance(idx, range):
            return np.arange(idx.start, idx.stop, dtype=np.int64)
        return np.asarray(idx, dtype=np.int64)

    # -- main entry points ---------------------------------------------------
    def run_op(self, core: int, op: _RangeOp) -> int:
        total = 0
        lines = self._lines_array(op)
        if lines.size == 0:
            return 0
        nlines = lines.size
        dense = op.stride <= self.line_size
        fits_l1 = nlines <= self.l1_capacity
        for rep in range(op.reps):
            if rep > 0 and fits_l1:
                # Whole footprint resident after the first sweep: the
                # remaining sweeps are pure L1 hits (unless invalidated,
                # which cannot happen within one DThread's execution).
                remaining = op.reps - rep
                lat = (
                    self.l1cfg.write_latency if op.is_write else self.l1cfg.read_latency
                )
                st = self.stats[core]
                st.accesses += nlines * remaining
                st.l1_hits += nlines * remaining
                st.cycles += lat * nlines * remaining
                total += lat * nlines * remaining
                break
            total += self._sweep(core, op.region.name, lines, op.is_write, dense)
        return total

    def run_summary(self, core: int, summary: AccessSummary) -> int:
        return sum(self.run_op(core, op) for op in summary)

    # -- the vectorised protocol ----------------------------------------------
    def _sweep(
        self, core: int, region: str, lines: np.ndarray, is_write: bool,
        dense: bool = True,
    ) -> int:
        rs = self._region_state(region)
        group = self.l2_groups[core]
        st = self.stats[core]
        n = lines.size

        clock = self._clock[core]
        l2_clock = self._l2_clock[group]
        mybit = self._corebit[core]
        otherbits = self._othermask[core]

        last = rs.l1_last[core, lines]
        sh = rs.sharers[lines]
        own = rs.owner[lines]

        has_copy = (sh & mybit) != 0
        recent = (last >= 0) & (clock - last < self.l1_capacity)
        in_l1 = has_copy & recent
        miss = ~in_l1

        # Remote modified owner → cache-to-cache transfer.
        remote_owned = miss & (own >= 0) & (own != core)

        # L2 residency for plain misses.
        l2_last = rs.l2_last[group, lines]
        in_l2 = (l2_last >= 0) & (l2_clock - l2_last < self.l2_capacity)
        plain_miss = miss & ~remote_owned
        l2_hit = plain_miss & in_l2
        mem_miss = plain_miss & ~in_l2

        n_l1 = int(in_l1.sum())
        n_coh = int(remote_owned.sum())
        n_l2 = int(l2_hit.sum())
        n_mem = int(mem_miss.sum())

        l1r, l1w = self.l1cfg.read_latency, self.l1cfg.write_latency
        l2r = self.l2cfg.read_latency
        cycles = 0
        n_upg = 0

        if is_write:
            shared_hit = in_l1 & ((sh & otherbits) != 0)
            n_upg = int(shared_hit.sum())
            cycles += n_upg * (l1w + self.mem.upgrade_latency)
            cycles += (n_l1 - n_upg) * l1w
            # All written lines: invalidate remote copies, become owner.
            # Invalidating a *resident* remote copy frees an L1 slot there:
            # record it as a hole so the victim's next fills do not advance
            # its LRU clock (matching set-associative behaviour, where a
            # refill reoccupies the invalidated way instead of evicting).
            # Fast path: private data (no remote copies) skips the scan —
            # the common case for each kernel's own output ranges.
            if ((sh & otherbits) != 0).any():
                for other in range(self.ncores):
                    if other == core:
                        continue
                    held = (sh & self._corebit[other]) != 0
                    if not held.any():
                        continue
                    olast = rs.l1_last[other, lines]
                    resident = held & (olast >= 0) & (
                        self._clock[other] - olast < self.l1_capacity
                    )
                    self._holes[other] += int(resident.sum())
            rs.sharers[lines] = mybit
            rs.owner[lines] = core
        else:
            cycles += n_l1 * l1r
            # Reads: remote-owned lines downgrade (owner cleared, shared).
            if n_coh:
                downgrade = lines[remote_owned]
                rs.owner[downgrade] = -1
                # The previous owner's copy stays valid (now SHARED); the
                # line also lands in the owner's L2 via writeback.
                owner_groups = self._group_of[own[remote_owned].astype(np.int64)]
                for g in np.unique(owner_groups):
                    rs.l2_last[g, downgrade[owner_groups == g]] = self._l2_clock[g]
            rs.sharers[lines] |= mybit

        cycles += n_coh * (self.mem.cache_to_cache_latency + l1r)
        cycles += n_l2 * (l1r + l2r)
        # DRAM misses: dense sweeps stream — within each consecutive run of
        # missing lines only the first pays full latency, the rest the
        # pipelined burst latency (open-page / prefetch overlap).
        if n_mem:
            if dense:
                mm = mem_miss
                run_starts = int(mm[0]) + int(np.count_nonzero(mm[1:] & ~mm[:-1]))
                full, burst = run_starts, n_mem - run_starts
            else:
                full, burst = n_mem, 0
            # Run-leading misses pay the full hierarchy; the pipelined rest
            # of each run only the per-line burst cost (see cache.py).
            cycles += full * (l1r + l2r + self.mem.dram_latency)
            cycles += burst * (l1r + self.mem.dram_burst_latency)

        # Residency updates.  The logical clocks advance only on *fills*
        # (misses): a hit re-references a resident line without displacing
        # anything, so time-distance then tracks true LRU stack distance
        # for the chunked/streaming patterns the workloads produce.  Fills
        # first consume any invalidation holes (freed slots) before they
        # start displacing LRU victims.
        l1_fills = np.cumsum(miss.astype(np.int64))
        total_fills = int(l1_fills[-1])
        holes_used = min(self._holes[core], total_fills)
        self._holes[core] -= holes_used
        rs.l1_last[core, lines] = clock + np.maximum(l1_fills - holes_used, 0)
        self._clock[core] = clock + total_fills - holes_used
        l2_fill_mask = (mem_miss | remote_owned).astype(np.int64)
        l2_fills = np.cumsum(l2_fill_mask)
        rs.l2_last[group, lines] = l2_clock + l2_fills
        self._l2_clock[group] = l2_clock + int(l2_fills[-1])

        st.accesses += n
        st.l1_hits += n_l1
        st.l2_hits += n_l2
        st.mem_misses += n_mem
        st.coherence_misses += n_coh
        st.upgrades += n_upg
        st.cycles += cycles
        self.bus_transactions += n_coh + n_l2 + n_mem + n_upg
        return cycles

    # -- aggregate ------------------------------------------------------------
    def total_stats(self) -> CacheStats:
        agg = CacheStats()
        for s in self.stats:
            agg.merge(s)
        return agg
