"""Vectorised LRU/MESI memory model for large benchmark sweeps.

The exact model (:mod:`repro.sim.cache`) walks every cache line of every
sweep through a set-associative LRU in pure Python — faithful but far too
slow for the paper's full parameter grid (5 benchmarks × 3 sizes × 5 kernel
counts × unroll factors).  This module keeps the same *protocol-level*
behaviour but processes each declared range with NumPy array operations:

* **Residency** is approximated by time-distance LRU: a per-core logical
  clock advances by the number of distinct lines each sweep touches, and a
  line is considered L1-resident when it was touched within the last
  ``L1 capacity`` line-touches (i.e. the cache is modelled as fully
  associative with LRU).  The same scheme models each (possibly shared) L2.
* **Coherence** is exact at line granularity: a per-line ``owner`` array
  records the core holding the line Modified, and a **two-level (node,
  core) directory** records all cores with a valid copy.  Writes
  invalidate remote copies (upgrade or request-for-ownership),
  remote-owned reads are classified as cache-to-cache coherence misses —
  precisely the MMULT "coherency miss" effect the paper discusses in
  §6.1.2.

Sharer directory layout (see :mod:`repro.sim.capability` for the limits):
cores are grouped into *directory nodes* of 64 (one ``uint64`` word
each); per line the directory keeps one core-mask word per node
(``sharers``, shape ``(nwords, nlines)``) plus a compact *node-presence*
word (``presence``, one bit per node with any sharer).  Machines of
≤64 cores need a single word, and every coherence decision then runs on
exactly one mask array — the flat-bitmask hot path this model has always
had.  Wider machines (up to 64 nodes × 64 cores) consult the presence
word first, so sharer-set union, upgrade detection and invalidation
sweeps stay vectorised numpy ops that only touch nodes that actually
hold copies.

Latency constants are identical to the exact model, and the test suite
cross-validates the two models' hit/miss breakdowns on the workload access
patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.accesses import AccessSummary, RegionSpace, _RangeOp
from repro.sim.cache import CacheConfig, CacheStats, MemoryConfig
from repro.sim.capability import CORES_PER_NODE, check_cores

__all__ = ["FastMemorySystem"]

#: All 64 bits of one directory word.
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class _RegionState:
    """Per-region coherence/residency arrays (one entry per cache line)."""

    l1_last: np.ndarray  # (ncores, nlines) int64, -1 = never
    l2_last: np.ndarray  # (ngroups, nlines) int64, -1 = never
    owner: np.ndarray  # (nlines,) int16, -1 = no modified owner
    sharers: np.ndarray  # (nwords, nlines) uint64 per-node core masks
    presence: np.ndarray  # (nlines,) uint64 node-presence word


class FastMemorySystem:
    """Drop-in counterpart of :class:`~repro.sim.cache.CoherentMemorySystem`.

    Exposes the same ``run_op`` / ``run_summary`` / ``stats`` surface so the
    runtime drivers can switch between exact and fast models with a flag.
    """

    def __init__(
        self,
        ncores: int,
        l1: CacheConfig,
        l2: CacheConfig,
        mem: MemoryConfig,
        regions: RegionSpace,
        l2_groups: list[int] | None = None,
        single_issuer: bool = False,
        directory_words: Optional[int] = None,
    ) -> None:
        check_cores(ncores, what="FastMemorySystem")
        self.ncores = ncores
        # Directory nodes: 64-core groups, one uint64 core mask each.
        # *directory_words* forces a wider directory than the core count
        # needs — the cross-validation tests use it to run the multi-word
        # code paths on small machines and pin them bit-identical to the
        # single-word (flat bitmask) fast path.
        nwords = -(-ncores // CORES_PER_NODE)
        if directory_words is not None:
            if directory_words < nwords:
                raise ValueError(
                    f"directory_words={directory_words} below the "
                    f"{nwords} words {ncores} cores need"
                )
            nwords = directory_words
        self._nwords = nwords
        # Declared at construction by the sequential baseline: with one
        # issuing core the sharer directory and owner array are provably
        # inert (nothing to invalidate or downgrade), so _sweep may skip
        # them.  Guarded: a second issuing core raises rather than
        # mis-modelling.
        self._single_issuer = single_issuer or ncores == 1
        self._issuer: int | None = None
        self.l1cfg = l1
        self.l2cfg = l2
        self.mem = mem
        self.line_size = l1.line_size
        self.regions = regions
        if l2_groups is None:
            l2_groups = list(range(ncores))
        self.l2_groups = l2_groups
        self.ngroups = max(l2_groups) + 1

        self.l1_capacity = l1.num_lines
        self.l2_capacity = l2.size // self.line_size

        self._clock = np.zeros(ncores, dtype=np.int64)
        self._l2_clock = np.zeros(self.ngroups, dtype=np.int64)
        # Freed-by-invalidation L1 slots per core (see _sweep).
        self._holes = [0] * ncores
        # Per-core coherence masks, hoisted out of the per-sweep hot path
        # (uint64 construction is surprisingly costly in a loop).  A
        # core's bit lives in the word of its directory node; its "other
        # cores of my node" mask covers only cores that exist there.
        self._word_of = [c // CORES_PER_NODE for c in range(ncores)]
        self._corebit = [np.uint64(1 << (c % CORES_PER_NODE)) for c in range(ncores)]
        self._corebit_arr = np.asarray(self._corebit, dtype=np.uint64)
        self._othermask = []
        for c in range(ncores):
            w = self._word_of[c]
            in_word = min(CORES_PER_NODE, ncores - w * CORES_PER_NODE)
            word_mask = (1 << in_word) - 1
            self._othermask.append(np.uint64(word_mask ^ (1 << (c % CORES_PER_NODE))))
        self._nodebit = [np.uint64(1 << w) for w in range(nwords)]
        self._othernodes = [
            np.uint64(((1 << nwords) - 1) ^ (1 << w)) for w in range(nwords)
        ]
        self._group_of = np.asarray(self.l2_groups, dtype=np.int64)
        # Reusable 1..k fill-count ramp for the single-core scatter path,
        # and a reusable 0..n-1 line-index ramp for downgrade scatters.
        self._iota = np.arange(1, 1025, dtype=np.int64)
        self._line_iota = np.arange(1024, dtype=np.int64)
        self._state: dict[str, _RegionState] = {}
        for reg in regions:
            self._state[reg.name] = self._new_region_state(reg.lines(self.line_size))
        self.stats = [CacheStats() for _ in range(ncores)]
        self.bus_transactions = 0

    # -- helpers -----------------------------------------------------------
    def _new_region_state(self, n: int) -> _RegionState:
        return _RegionState(
            l1_last=np.full((self.ncores, n), -1, dtype=np.int64),
            l2_last=np.full((self.ngroups, n), -1, dtype=np.int64),
            owner=np.full(n, -1, dtype=np.int16),
            sharers=np.zeros((self._nwords, n), dtype=np.uint64),
            presence=np.zeros(n, dtype=np.uint64),
        )

    def _region_state(self, name: str) -> _RegionState:
        st = self._state.get(name)
        if st is None:
            # Region declared after construction: lazily allocate.
            reg = self.regions.get(name)
            st = self._new_region_state(reg.lines(self.line_size))
            self._state[name] = st
        return st

    def _lines_of(self, sel) -> np.ndarray:
        """Line indices selected by *sel* (cached ramp for dense slices)."""
        if isinstance(sel, slice):
            if self._line_iota.size < sel.stop:
                self._line_iota = np.arange(
                    max(sel.stop, 2 * self._line_iota.size), dtype=np.int64
                )
            return self._line_iota[sel]
        return sel

    def _fill_single(self, dst: np.ndarray, miss: np.ndarray, k: int,
                     base) -> None:
        """Write post-sweep fill timestamps ``base + cumsum(miss)`` into the
        contiguous view *dst*, shortcutting the cumulative sum when the
        misses form a single leading run (then the counts are 1..k
        followed by a flat k for the resident tail)."""
        n = dst.size
        if k == 0:
            dst[:] = base
            return
        if k == n or bool(miss[:k].all()):
            if self._iota.size < k:
                self._iota = np.arange(
                    1, max(k, 2 * self._iota.size) + 1, dtype=np.int64
                )
            np.add(self._iota[:k], base, out=dst[:k])
            if k < n:
                dst[k:] = base + k
            return
        np.add(np.cumsum(miss, dtype=np.int64), base, out=dst)

    def _absorb_holes(self, rs: _RegionState, sel, masked: np.ndarray,
                      word: int) -> None:
        """Credit invalidation holes to every core of directory node *word*
        whose set bits appear in *masked* (per-line core masks of copies
        being invalidated): a still-resident invalidated copy frees an L1
        slot there.  One sharer (the overwhelmingly common case — a single
        producer) takes a scalar path; several sharers are handled as one
        vectorised (ncores_sharing, nlines) residency comparison instead
        of a per-bit Python loop."""
        union = int(np.bitwise_or.reduce(masked)) if masked.size else 0
        if not union:
            return
        base = word * CORES_PER_NODE
        cap = self.l1_capacity
        if union & (union - 1) == 0:  # exactly one sharing core
            other = base + union.bit_length() - 1
            held = (masked & self._corebit[other]) != 0
            olast = rs.l1_last[other, sel]
            resident = held & (olast >= max(0, self._clock[other] - cap + 1))
            self._holes[other] += int(resident.sum())
            return
        cores = []
        while union:
            cores.append(base + (union & -union).bit_length() - 1)
            union &= union - 1
        carr = np.asarray(cores, dtype=np.int64)
        bits = self._corebit_arr[carr % CORES_PER_NODE]
        held = (masked[None, :] & bits[:, None]) != 0
        thr = np.maximum(0, self._clock[carr] - cap + 1)
        resident = held & (rs.l1_last[carr][:, sel] >= thr[:, None])
        for core, count in zip(cores, resident.sum(axis=1).tolist()):
            self._holes[core] += count

    # -- main entry points ---------------------------------------------------
    def run_op(self, core: int, op: _RangeOp) -> int:
        total = 0
        idx = op.line_indices(self.line_size)
        if isinstance(idx, range):
            # Dense sweeps (the overwhelmingly common shape) index the
            # per-line arrays with a slice: gathers become views and
            # scatters contiguous writes, instead of fancy-indexed copies.
            nlines = len(idx)
            sel: slice | np.ndarray = slice(idx.start, idx.stop)
        else:
            lines = np.asarray(idx, dtype=np.int64)
            nlines = lines.size
            sel = lines
        if nlines == 0:
            return 0
        dense = op.stride <= self.line_size
        fits_l1 = nlines <= self.l1_capacity
        for rep in range(op.reps):
            if rep > 0 and fits_l1:
                # Whole footprint resident after the first sweep: the
                # remaining sweeps are pure L1 hits (unless invalidated,
                # which cannot happen within one DThread's execution).
                remaining = op.reps - rep
                lat = (
                    self.l1cfg.write_latency if op.is_write else self.l1cfg.read_latency
                )
                st = self.stats[core]
                st.accesses += nlines * remaining
                st.l1_hits += nlines * remaining
                st.cycles += lat * nlines * remaining
                total += lat * nlines * remaining
                break
            total += self._sweep(core, op.region.name, sel, nlines, op.is_write, dense)
        return total

    def run_summary(self, core: int, summary: AccessSummary) -> int:
        return sum(self.run_op(core, op) for op in summary)

    # -- the vectorised protocol ----------------------------------------------
    def _sweep(
        self, core: int, region: str, sel: slice | np.ndarray, n: int,
        is_write: bool, dense: bool = True,
    ) -> int:
        rs = self._region_state(region)
        group = self.l2_groups[core]
        st = self.stats[core]
        single = self._single_issuer
        nw = self._nwords
        if single and core != self._issuer:
            if self._issuer is not None:
                raise RuntimeError(
                    "memory system declared single_issuer but saw traffic "
                    f"from cores {self._issuer} and {core}"
                )
            self._issuer = core

        clock = self._clock[core]
        l2_clock = self._l2_clock[group]

        # Residency is one comparison per level: ``last >= 0 and
        # clock - last < capacity`` is, for integer clocks, exactly
        # ``last >= max(0, clock - capacity + 1)``.
        last = rs.l1_last[core, sel]
        thr1 = max(0, clock - self.l1_capacity + 1)
        thr2 = max(0, l2_clock - self.l2_capacity + 1)
        l2_last = rs.l2_last[group, sel]

        if single:
            # One core: nothing invalidates, so "ever filled and still
            # recent" is the whole residency story — the sharer directory
            # and owner array are provably inert (no remote copies to
            # track, no remote owner to downgrade) and never touched.
            miss = last < thr1
            n_miss = int(miss.sum())
            n_l1 = n - n_miss
            remote_owned = None
            n_coh = 0
            mem_miss = miss & (l2_last < thr2)
            n_mem = int(mem_miss.sum())
            n_l2 = n_miss - n_mem
        else:
            word = self._word_of[core]
            mybit = self._corebit[core]
            otherbits = self._othermask[core]
            sh = rs.sharers[word, sel]
            own = rs.owner[sel]
            in_l1 = ((sh & mybit) != 0) & (last >= thr1)
            miss = ~in_l1
            # Remote modified owner → cache-to-cache transfer.
            remote_owned = miss & (own >= 0) & (own != core)
            plain_miss = miss & ~remote_owned
            n_coh = int(remote_owned.sum())
            # L2 residency for plain misses.
            in_l2 = l2_last >= thr2
            l2_hit = plain_miss & in_l2
            mem_miss = plain_miss & ~in_l2
            n_l1 = int(in_l1.sum())
            n_l2 = int(l2_hit.sum())
            n_mem = int(mem_miss.sum())

        l1r, l1w = self.l1cfg.read_latency, self.l1cfg.write_latency
        l2r = self.l2cfg.read_latency
        cycles = 0
        n_upg = 0

        if is_write:
            if single:
                cycles += n_l1 * l1w  # no remote sharers → no upgrades
            else:
                if nw == 1:
                    remote_any = (sh & otherbits) != 0
                else:
                    # Two-level test: other sharers exist in my node's
                    # word, or the presence word names any other node.
                    pres = rs.presence[sel]
                    remote_any = ((sh & otherbits) != 0) | (
                        (pres & self._othernodes[word]) != 0
                    )
                shared_hit = in_l1 & remote_any
                n_upg = int(shared_hit.sum())
                cycles += n_upg * (l1w + self.mem.upgrade_latency)
                cycles += (n_l1 - n_upg) * l1w
                # All written lines: invalidate remote copies, become owner.
                # Invalidating a *resident* remote copy frees an L1 slot
                # there: record it as a hole so the victim's next fills do
                # not advance its LRU clock (matching set-associative
                # behaviour, where a refill reoccupies the invalidated way
                # instead of evicting).  Fast path: private data (no remote
                # copies) skips the scan — the common case for each
                # kernel's own output ranges.  When remote copies exist,
                # only directory nodes named by the presence union are
                # visited, and within each only the set bits of the union
                # core mask: the sharer set of a swept range is typically
                # one or two producers.
                if nw == 1:
                    self._absorb_holes(rs, sel, sh & otherbits, 0)
                    rs.sharers[0, sel] = mybit
                else:
                    pres_union = int(np.bitwise_or.reduce(rs.presence[sel]))
                    while pres_union:
                        w2 = (pres_union & -pres_union).bit_length() - 1
                        pres_union &= pres_union - 1
                        wordsh = rs.sharers[w2, sel]
                        masked = wordsh & otherbits if w2 == word else wordsh
                        self._absorb_holes(rs, sel, masked, w2)
                        if w2 != word:
                            rs.sharers[w2, sel] = 0
                    rs.sharers[word, sel] = mybit
                    rs.presence[sel] = self._nodebit[word]
                rs.owner[sel] = core
        else:
            cycles += n_l1 * l1r
            if not single:
                # Reads: remote-owned lines downgrade (owner cleared, shared).
                if n_coh:
                    downgrade = self._lines_of(sel)[remote_owned]
                    # The previous owner's copy stays valid (now SHARED);
                    # the line also lands in the owner's L2 via writeback.
                    # ``own`` aliases ``rs.owner`` on dense sweeps, so the
                    # owner groups must be read before the owner is cleared.
                    owner_groups = self._group_of[own[remote_owned].astype(np.int64)]
                    rs.owner[downgrade] = -1
                    for g in np.unique(owner_groups):
                        rs.l2_last[g, downgrade[owner_groups == g]] = self._l2_clock[g]
                rs.sharers[word, sel] |= mybit
                if nw > 1:
                    rs.presence[sel] |= self._nodebit[word]

        cycles += n_coh * (self.mem.cache_to_cache_latency + l1r)
        cycles += n_l2 * (l1r + l2r)
        # DRAM misses: dense sweeps stream — within each consecutive run of
        # missing lines only the first pays full latency, the rest the
        # pipelined burst latency (open-page / prefetch overlap).
        if n_mem:
            if dense:
                mm = mem_miss
                run_starts = int(mm[0]) + int(np.count_nonzero(mm[1:] & ~mm[:-1]))
                full, burst = run_starts, n_mem - run_starts
            else:
                full, burst = n_mem, 0
            # Run-leading misses pay the full hierarchy; the pipelined rest
            # of each run only the per-line burst cost (see cache.py).
            cycles += full * (l1r + l2r + self.mem.dram_latency)
            cycles += burst * (l1r + self.mem.dram_burst_latency)

        # Residency updates.  The logical clocks advance only on *fills*
        # (misses): a hit re-references a resident line without displacing
        # anything, so time-distance then tracks true LRU stack distance
        # for the chunked/streaming patterns the workloads produce.  Fills
        # first consume any invalidation holes (freed slots) before they
        # start displacing LRU victims.
        if single and isinstance(sel, slice):
            # One core never receives invalidation holes, and dense sweeps
            # almost always miss in one leading run (the streaming shape:
            # any still-resident tail of the previous pass hits at the
            # end), so the fill counts 1..k then flat can be written
            # directly instead of through a cumulative sum.
            self._fill_single(rs.l1_last[core, sel], miss, n_miss, clock)
            self._clock[core] = clock + n_miss
            self._fill_single(rs.l2_last[group, sel], mem_miss, n_mem, l2_clock)
            self._l2_clock[group] = l2_clock + n_mem
        else:
            l1_fills = np.cumsum(miss, dtype=np.int64)
            total_fills = int(l1_fills[-1])
            holes_used = min(self._holes[core], total_fills)
            self._holes[core] -= holes_used
            rs.l1_last[core, sel] = clock + np.maximum(l1_fills - holes_used, 0)
            self._clock[core] = clock + total_fills - holes_used
            l2_fill_mask = mem_miss if single else (mem_miss | remote_owned)
            l2_fills = np.cumsum(l2_fill_mask, dtype=np.int64)
            rs.l2_last[group, sel] = l2_clock + l2_fills
            self._l2_clock[group] = l2_clock + int(l2_fills[-1])

        st.accesses += n
        st.l1_hits += n_l1
        st.l2_hits += n_l2
        st.mem_misses += n_mem
        st.coherence_misses += n_coh
        st.upgrades += n_upg
        st.cycles += cycles
        self.bus_transactions += n_coh + n_l2 + n_mem + n_upg
        return cycles

    # -- aggregate ------------------------------------------------------------
    def total_stats(self) -> CacheStats:
        agg = CacheStats()
        for s in self.stats:
            agg.merge(s)
        return agg
