"""Simulated CPU core.

Cores in TFlux run Kernels (the user-level runtime loop).  For the timing
simulation a core is an accounting entity: it accumulates busy cycles
(DThread compute + memory stalls + runtime code) and idle cycles (waiting
on the TSU for a ready DThread), and exposes the utilisation numbers the
analysis layer reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Core", "CoreStats"]


@dataclass
class CoreStats:
    """Cycle breakdown for one core."""

    compute_cycles: int = 0
    memory_cycles: int = 0
    runtime_cycles: int = 0  # kernel loop, TSU protocol, post-processing
    idle_cycles: int = 0
    dthreads_executed: int = 0

    @property
    def busy_cycles(self) -> int:
        return self.compute_cycles + self.memory_cycles + self.runtime_cycles

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.idle_cycles

    def utilisation(self) -> float:
        total = self.total_cycles
        return self.busy_cycles / total if total else 0.0


@dataclass
class Core:
    """One core of the simulated machine."""

    core_id: int
    role: str = "compute"  # "compute" | "os" | "tsu" (TFluxSoft emulator)
    stats: CoreStats = field(default_factory=CoreStats)

    def charge_compute(self, cycles: int) -> None:
        self.stats.compute_cycles += cycles

    def charge_memory(self, cycles: int) -> None:
        self.stats.memory_cycles += cycles

    def charge_runtime(self, cycles: int) -> None:
        self.stats.runtime_cycles += cycles

    def charge_idle(self, cycles: int) -> None:
        self.stats.idle_cycles += cycles

    def finished_dthread(self) -> None:
        self.stats.dthreads_executed += 1
