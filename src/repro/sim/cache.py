"""Exact cache-hierarchy and MESI coherence model.

This mirrors the memory system the paper simulated with Simics ``gcache``
modules for the 28-core "Bagle" machine (§6.1.1): per-core set-associative
L1 data caches, per-core (or per-cluster, for the Xeon) unified L2 caches,
and a MESI protocol kept consistent through a snooping bus.  All state is
tracked at cache-line granularity with true LRU within each set, so hits,
capacity misses, cold misses, coherence (cache-to-cache) misses, and
upgrade (S→M) transactions are all first-class observable events.

Latency accounting follows the paper's configuration:

* L1 read 2 cycles / write 0 cycles (Bagle) or 3 cycles (Xeon);
* L2 read/write 20 cycles (Bagle) or 14 cycles (Xeon);
* main memory and coherence transfer latencies are parameters of
  :class:`MemoryConfig`.

The model is exact but line-by-line, so it is used for validation and
small runs; :mod:`repro.sim.fastcache` provides the vectorised equivalent
used in the benchmark sweeps and is cross-validated against this module in
the test suite.

Coherence granularity note: the Bagle configuration gives L1 64-byte and
L2 128-byte lines.  We track both levels and the directory at the L1 line
size — the evaluation-relevant effects (sharing, invalidations, transfer
volume) happen at producer/consumer granularity far above one line, so
this simplification does not change any reported shape.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.accesses import AccessSummary, RegionSpace, _RangeOp

__all__ = [
    "CacheConfig",
    "MemoryConfig",
    "CacheLevel",
    "CacheStats",
    "CoherentMemorySystem",
]


# MESI line states.
MODIFIED = "M"
EXCLUSIVE = "E"
SHARED = "S"
# Invalid lines are simply absent from the cache structures.


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size: int
    line_size: int
    assoc: int
    read_latency: int
    write_latency: int

    def __post_init__(self) -> None:
        if self.size % (self.line_size * self.assoc):
            raise ValueError(
                f"cache size {self.size} not divisible by line*assoc "
                f"({self.line_size}*{self.assoc})"
            )

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size


@dataclass(frozen=True)
class MemoryConfig:
    """Latencies of everything beyond the L2.

    ``dram_burst_latency`` is the effective per-line stall of a *dense
    sequential* miss stream: after the first (full-latency) miss of a run,
    consecutive-line misses overlap via hardware prefetch / open-page
    bursts.  Strided and isolated misses always pay ``dram_latency``.
    """

    dram_latency: int = 100
    dram_burst_latency: int = 16
    cache_to_cache_latency: int = 30
    upgrade_latency: int = 6
    writeback_latency: int = 0  # off the critical path (posted writes)


class CacheLevel:
    """One set-associative cache with true-LRU replacement.

    Lines are keyed by line address; MESI state is stored with the line.
    The class is deliberately policy-free: coherence decisions live in
    :class:`CoherentMemorySystem`.
    """

    __slots__ = ("config", "_sets", "name")

    def __init__(self, config: CacheConfig, name: str = "") -> None:
        self.config = config
        self.name = name
        # One OrderedDict per set: line_addr -> state; LRU order = insertion
        # order with move_to_end on touch.
        self._sets: list[OrderedDict[int, str]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    def _set_for(self, line_addr: int) -> OrderedDict[int, str]:
        return self._sets[(line_addr // self.config.line_size) % self.config.num_sets]

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[str]:
        """Return the MESI state if present (refreshing LRU), else None."""
        s = self._set_for(line_addr)
        state = s.get(line_addr)
        if state is not None and touch:
            s.move_to_end(line_addr)
        return state

    def insert(self, line_addr: int, state: str) -> Optional[tuple[int, str]]:
        """Install a line; returns ``(evicted_line, evicted_state)`` or None."""
        s = self._set_for(line_addr)
        victim: Optional[tuple[int, str]] = None
        if line_addr not in s and len(s) >= self.config.assoc:
            victim = s.popitem(last=False)  # least recently used
        s[line_addr] = state
        s.move_to_end(line_addr)
        return victim

    def set_state(self, line_addr: int, state: str) -> None:
        s = self._set_for(line_addr)
        if line_addr not in s:
            raise KeyError(f"line {line_addr:#x} not in cache {self.name!r}")
        s[line_addr] = state

    def invalidate(self, line_addr: int) -> Optional[str]:
        """Drop the line; returns its prior state (None if absent)."""
        s = self._set_for(line_addr)
        return s.pop(line_addr, None)

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, line_addr: int) -> bool:
        return self.lookup(line_addr, touch=False) is not None


@dataclass
class CacheStats:
    """Per-core access statistics."""

    l1_hits: int = 0
    l2_hits: int = 0
    mem_misses: int = 0
    coherence_misses: int = 0
    upgrades: int = 0
    writebacks: int = 0
    accesses: int = 0
    cycles: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.l1_hits += other.l1_hits
        self.l2_hits += other.l2_hits
        self.mem_misses += other.mem_misses
        self.coherence_misses += other.coherence_misses
        self.upgrades += other.upgrades
        self.writebacks += other.writebacks
        self.accesses += other.accesses
        self.cycles += other.cycles

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return 1.0 - self.l1_hit_rate


class CoherentMemorySystem:
    """MESI-coherent multi-level memory hierarchy for *ncores* cores.

    Parameters
    ----------
    ncores:
        Number of cores, each with a private L1.
    l1, l2:
        Cache geometries.  ``l2_groups`` maps each core to an L2 instance
        (``None`` means one private L2 per core, as in Bagle; the Xeon box
        shares one 4MB L2 per core pair).
    mem:
        Latencies beyond L2.
    regions:
        The :class:`RegionSpace` whose regions are laid out contiguously
        (line-aligned) in the simulated physical address space.
    """

    def __init__(
        self,
        ncores: int,
        l1: CacheConfig,
        l2: CacheConfig,
        mem: MemoryConfig,
        regions: RegionSpace,
        l2_groups: Optional[list[int]] = None,
    ) -> None:
        self.ncores = ncores
        self.l1cfg = l1
        self.l2cfg = l2
        self.mem = mem
        self.line_size = l1.line_size
        self.regions = regions

        self.l1s = [CacheLevel(l1, name=f"L1#{i}") for i in range(ncores)]
        if l2_groups is None:
            l2_groups = list(range(ncores))
        if len(l2_groups) != ncores:
            raise ValueError("l2_groups must have one entry per core")
        self.l2_groups = l2_groups
        self.l2s = [
            CacheLevel(l2, name=f"L2#{g}") for g in range(max(l2_groups) + 1)
        ]
        # Directory: line address -> set of cores holding it in L1 (any
        # state); the single M/E owner is tracked separately.
        self._sharers: dict[int, set[int]] = {}
        self._owner: dict[int, int] = {}  # line -> core holding M
        self.stats = [CacheStats() for _ in range(ncores)]
        self.bus_transactions = 0

        # Region layout: sequential, line-aligned.
        self._bases: dict[str, int] = {}
        cursor = 0
        for reg in regions:
            self._bases[reg.name] = cursor
            cursor += -(-reg.size // self.line_size) * self.line_size

    # -- address helpers --------------------------------------------------
    def region_base(self, name: str) -> int:
        return self._bases[name]

    def _line_of(self, region_name: str, offset: int) -> int:
        addr = self._bases[region_name] + offset
        return addr - addr % self.line_size

    # -- core protocol -----------------------------------------------------
    def access(self, core: int, region_name: str, offset: int, is_write: bool) -> int:
        """Perform one access; returns its latency in cycles."""
        line = self._line_of(region_name, offset)
        latency, _dram = self._access_line(core, line, is_write)
        return latency

    def _drop_from_l1(self, core: int, line: int) -> None:
        """Directory bookkeeping for a line leaving core's L1.

        Ownership of a dirty line is *not* cleared: the dirty data now
        lives in the core's L2 and a remote access must still fetch it via
        a coherence intervention (dirty-in-L2 transfer).
        """
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(core)
            if not sharers:
                del self._sharers[line]

    def _install(self, core: int, line: int, state: str) -> None:
        victim = self.l1s[core].insert(line, state)
        self._sharers.setdefault(line, set()).add(core)
        if state == MODIFIED:
            self._owner[line] = core
        if victim is not None:
            vline, vstate = victim
            if vstate == MODIFIED:
                self.stats[core].writebacks += 1
                # Dirty victim lands in this core's L2; ownership persists.
                self.l2s[self.l2_groups[core]].insert(vline, MODIFIED)
            self._drop_from_l1(core, vline)

    def _l2_fill(self, core: int, line: int) -> bool:
        """Look up / fill the core's L2; returns True on L2 hit."""
        l2 = self.l2s[self.l2_groups[core]]
        if l2.lookup(line) is not None:
            return True
        victim = l2.insert(line, SHARED)
        if victim is not None and victim[1] == MODIFIED:
            self.stats[core].writebacks += 1
        return False

    def _access_line(
        self, core: int, line: int, is_write: bool, burst: bool = False
    ) -> tuple[int, bool]:
        """One line access; returns ``(latency, hit_dram)``.  *burst* marks
        the access as part of a dense sequential miss run (pipelined DRAM
        pricing)."""
        st = self.stats[core]
        st.accesses += 1
        l1 = self.l1s[core]
        state = l1.lookup(line)
        cfg = self.l1cfg

        if state is not None:
            if not is_write:
                st.l1_hits += 1
                st.cycles += cfg.read_latency
                return cfg.read_latency, False
            # Write hit.
            if state == MODIFIED:
                st.l1_hits += 1
                st.cycles += cfg.write_latency
                return cfg.write_latency, False
            if state == EXCLUSIVE:
                l1.set_state(line, MODIFIED)
                self._owner[line] = core
                st.l1_hits += 1
                st.cycles += cfg.write_latency
                return cfg.write_latency, False
            # SHARED: upgrade — invalidate other sharers over the bus.
            # This is still an L1 hit (the data is local); the upgrade is
            # the extra ownership transaction.
            self._invalidate_others(core, line)
            l1.set_state(line, MODIFIED)
            self._owner[line] = core
            st.l1_hits += 1
            st.upgrades += 1
            self.bus_transactions += 1
            lat = cfg.write_latency + self.mem.upgrade_latency
            st.cycles += lat
            return lat, False

        # L1 miss.  Consult the directory for a remote *Modified* owner
        # (dirty either in the owner's L1 or, after eviction, in its L2).
        owner = self._owner.get(line)
        if owner is not None and owner != core:
            # Cache-to-cache transfer (coherence miss).
            if is_write:
                # Request-for-ownership: dirty copy and any sharers die.
                self._invalidate_others(core, line)
                self._owner.pop(line, None)
                new_state = MODIFIED
            else:
                # Owner downgrades to SHARED (if the copy is still in its
                # L1); the dirty data is written back to the owner's L2.
                if line in self.l1s[owner]:
                    self.l1s[owner].set_state(line, SHARED)
                self.l2s[self.l2_groups[owner]].insert(line, SHARED)
                del self._owner[line]
                new_state = SHARED
            self._l2_fill(core, line)
            self._install(core, line, new_state)
            st.coherence_misses += 1
            self.bus_transactions += 1
            lat = self.mem.cache_to_cache_latency + self.l1cfg.read_latency
            st.cycles += lat
            return lat, False

        if is_write:
            # Request-for-ownership: other S/E copies must be invalidated.
            self._invalidate_others(core, line)

        l2_hit = self._l2_fill(core, line)
        self.bus_transactions += 1
        sharers = self._sharers.get(line)
        other_sharers = bool(sharers) and any(c != core for c in sharers)
        if is_write:
            new_state = MODIFIED
        else:
            new_state = SHARED if other_sharers else EXCLUSIVE
            if other_sharers:
                # Remote Exclusive copies downgrade to Shared on a snooped
                # read (clean transfer, no latency penalty beyond the L2
                # or memory fill already charged).
                for other in sharers:
                    if other != core and self.l1s[other].lookup(line, touch=False) == EXCLUSIVE:
                        self.l1s[other].set_state(line, SHARED)
        self._install(core, line, new_state)
        if l2_hit:
            st.l2_hits += 1
            lat = self.l1cfg.read_latency + self.l2cfg.read_latency
            dram = False
        elif burst:
            # Streaming fill: the L2 and DRAM stages of consecutive-line
            # misses are pipelined behind the previous miss; only the
            # per-line burst cost reaches the core.
            st.mem_misses += 1
            lat = self.l1cfg.read_latency + self.mem.dram_burst_latency
            dram = True
        else:
            st.mem_misses += 1
            lat = (
                self.l1cfg.read_latency
                + self.l2cfg.read_latency
                + self.mem.dram_latency
            )
            dram = True
        st.cycles += lat
        return lat, dram

    def _invalidate_others(self, core: int, line: int) -> None:
        sharers = self._sharers.get(line)
        if not sharers:
            return
        for other in list(sharers):
            if other == core:
                continue
            prior = self.l1s[other].invalidate(line)
            if prior == MODIFIED:
                self.stats[other].writebacks += 1
            sharers.discard(other)
            if self._owner.get(line) == other:
                del self._owner[line]
        if not sharers:
            self._sharers.pop(line, None)

    # -- bulk interfaces ---------------------------------------------------
    def run_op(self, core: int, op: _RangeOp) -> int:
        """Process one range sweep; returns total cycles.

        Dense sweeps (stride <= line size) stream: after the first DRAM
        miss of a consecutive run, subsequent consecutive-line DRAM misses
        are priced at the pipelined burst latency.
        """
        total = 0
        base = self._bases[op.region.name]
        ls = self.line_size
        dense = op.stride <= ls
        for _ in range(op.reps):
            prev_dram_line = None
            for li in op.line_indices(ls):
                line = base + li * ls
                burst = dense and prev_dram_line == line - ls
                lat, dram = self._access_line(core, line, op.is_write, burst=burst)
                prev_dram_line = line if dram else None
                total += lat
        return total

    def run_summary(self, core: int, summary: AccessSummary) -> int:
        """Process a DThread's whole access summary; returns cycles."""
        return sum(self.run_op(core, op) for op in summary)

    # -- invariant checking (used by property tests) -----------------------
    def check_invariants(self) -> None:
        """Assert MESI single-writer/multi-reader invariants."""
        seen: dict[int, list[tuple[int, str]]] = {}
        for core, l1 in enumerate(self.l1s):
            for s in l1._sets:
                for line, state in s.items():
                    seen.setdefault(line, []).append((core, state))
        for line, holders in seen.items():
            states = [st for (_c, st) in holders]
            if any(st in (MODIFIED, EXCLUSIVE) for st in states):
                assert len(holders) == 1, (
                    f"line {line:#x} M/E with multiple holders: {holders}"
                )
            owner = self._owner.get(line)
            if MODIFIED in states:
                assert owner == holders[0][0], (
                    f"directory owner {owner} disagrees with L1 state at {line:#x}"
                )
            dir_sharers = self._sharers.get(line, set())
            assert {c for c, _ in holders} <= dir_sharers, (
                f"directory sharers stale for line {line:#x}"
            )

    def total_stats(self) -> CacheStats:
        agg = CacheStats()
        for s in self.stats:
            agg.merge(s)
        return agg
