"""System network (shared bus) with an arbiter.

TFluxHard attaches the TSU Group to the chip's system network as a
memory-mapped device (paper §4.1, Figure 3); the MMI snoops this network
and forwards TSU-directed requests.  The bus here is a FIFO-arbitrated
shared medium: one transaction at a time, each occupying the bus for a
fixed number of cycles.  Cores' ordinary cache traffic is accounted
analytically inside the memory models (per-line latencies already include
the bus hop); the DES-level bus is used for the *control* traffic whose
queueing genuinely matters — TSU commands and replies.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.engine import Engine, Resource, fastpath_enabled

__all__ = ["SystemBus"]


class SystemBus:
    """FIFO-arbitrated shared bus for control transactions."""

    def __init__(self, engine: Engine, cycles_per_transaction: int = 2) -> None:
        self.engine = engine
        self.cycles_per_transaction = cycles_per_transaction
        self._arbiter = Resource(engine, capacity=1, name="system-bus")
        self.transactions = 0
        self.busy_cycles = 0
        self._fast = fastpath_enabled()

    def transfer(self, payload_cycles: int = 0) -> Generator:
        """DES process fragment: occupy the bus for one transaction.

        Usage inside a process generator::

            yield from bus.transfer()

        The caller resumes once the transaction (arbitration + occupancy)
        has completed.  *payload_cycles* extends the occupancy for larger
        payloads (e.g. a multi-word TSU load).

        Uncontended fast path: when the arbiter grants synchronously, the
        whole transaction collapses into one timeout with a lazy release
        at its exact end time — queued contenders re-engage the eager
        event-per-step protocol (see ``Resource``).
        """
        hold = self.cycles_per_transaction + payload_cycles
        if self._fast and self._arbiter.try_acquire():
            self._arbiter.release_at(self.engine.now + hold)
            yield hold
            self.transactions += 1
            self.busy_cycles += hold
            return
        grant = self._arbiter.request()
        yield grant
        try:
            yield hold
        finally:
            self._arbiter.release()
        self.transactions += 1
        self.busy_cycles += hold

    @property
    def queue_length(self) -> int:
        return self._arbiter.queue_length
