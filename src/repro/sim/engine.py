"""Discrete-event simulation core.

A minimal but complete DES kernel in the style of SimPy, tailored to the
needs of the TFlux platform models: cycle-granularity virtual time,
generator-based processes, one-shot events, and FIFO capacity resources
(used for the system bus arbiter, the hardware TSU command port, the TSU
emulator core, Cell mailboxes and the DMA engine).

Processes are plain Python generators.  A process may ``yield``:

* a number — advance this process by that many cycles;
* an :class:`Event` — suspend until the event is triggered (the ``yield``
  expression evaluates to the event's value);
* another :class:`Process` — suspend until that process terminates (the
  ``yield`` evaluates to its return value).

Example
-------
>>> eng = Engine()
>>> def pinger(eng, ev):
...     yield 10
...     ev.succeed("pong")
>>> def ponger(eng, ev):
...     value = yield ev
...     return (eng.now, value)
>>> ev = eng.event()
>>> eng.process(pinger(eng, ev))        # doctest: +ELLIPSIS
<repro.sim.engine.Process object at ...>
>>> p = eng.process(ponger(eng, ev))
>>> eng.run()
>>> p.value
(10, 'pong')
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "SimulationError",
    "fastpath_enabled",
]

#: Environment toggle for the uncontended-protocol fast path (default on).
#: Read at model *construction* time, never stored on platform objects —
#: platform instances feed the repro.exec cache digest, and the toggle
#: must not change cache keys (cycles are bit-identical either way).
ENV_FASTPATH = "TFLUX_FASTPATH"


def fastpath_enabled(default: bool = True) -> bool:
    """Whether the event-coalescing fast path is enabled (``TFLUX_FASTPATH``)."""
    raw = os.environ.get(ENV_FASTPATH, "").strip().lower()
    if not raw:
        return default
    return raw not in ("0", "off", "false", "no")


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation kernel.

    Examples include triggering an already-triggered event or running an
    engine whose event queue contains an item scheduled in the past.
    """


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once, resuming every waiting process at the current
    simulation time.  Late waiters (processes that yield an event that has
    already been triggered) resume immediately.
    """

    __slots__ = ("engine", "_value", "_exc", "triggered", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self.triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        # Allocated lazily on the first waiter: most events (resource
        # grants, process-done markers) trigger with zero or one waiter,
        # and this is the hottest allocation site in the kernel.
        self._waiters: Optional[list[Callable[["Event"], None]]] = None

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering *value* to all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._value = value
        self._flush()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event so that waiters observe *exc* raised."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._exc = exc
        self._flush()
        return self

    def _flush(self) -> None:
        waiters, self._waiters = self._waiters, None
        if waiters:
            # Deliver on the engine queue so resumption order is
            # deterministic and never re-entrant.
            schedule = self.engine._schedule
            for cb in waiters:
                schedule(0.0, cb, self)

    # -- waiting ---------------------------------------------------------
    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register *cb* to run (with this event) once triggered."""
        if self.triggered:
            self.engine._schedule(0.0, cb, self)
        elif self._waiters is None:
            self._waiters = [cb]
        else:
            self._waiters.append(cb)

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(engine, name=f"timeout({delay})")
        engine._schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process:
    """A running simulation process wrapping a generator.

    The process's :attr:`done` event triggers when the generator returns;
    the generator's return value becomes the event value (and is exposed as
    :attr:`value`).  Yielding inside the generator follows the protocol
    documented in the module docstring.
    """

    __slots__ = ("engine", "gen", "done", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(engine, name=f"done:{self.name}")
        engine._schedule(0.0, self._resume, _SEND_NONE)

    # Sentinel distinguishing "send None" from "event delivery".
    @property
    def value(self) -> Any:
        """Return value of the finished process (raises if still running)."""
        return self.done.value

    @property
    def is_alive(self) -> bool:
        return not self.done.triggered

    def _resume(self, item: Any) -> None:
        try:
            if item is _SEND_NONE:  # timer expiry: the hot case
                target = self.gen.send(None)
            elif isinstance(item, Event):
                try:
                    send_value = item.value
                except BaseException as exc:  # failed event propagates
                    target = self.gen.throw(exc)
                else:
                    target = self.gen.send(send_value)
            else:
                target = self.gen.send(item)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        self._dispatch(target)

    def _dispatch(self, target: Any) -> None:
        """Suspend on the yielded target (delay, event, or process)."""
        if type(target) is int:  # plain cycle delay: the hot case
            self.engine._schedule(target, self._resume, _SEND_NONE)
        elif isinstance(target, (int, float)):
            # Numeric delays short-circuit here (float and the rare int
            # subclass); they used to fall through two failed isinstance
            # checks to a duplicate tail branch.
            self.engine._schedule(float(target), self._resume, _SEND_NONE)
        elif isinstance(target, Process):
            target.done.add_callback(self._resume)
        elif isinstance(target, Event):
            target.add_callback(self._resume)
        else:
            exc = SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )
            try:
                recovered = self.gen.throw(exc)
            except StopIteration as stop:
                self.done.succeed(stop.value)
                return
            # The generator handled the error and yielded a new target:
            # keep it running.  If it re-raised, the error escapes to the
            # engine run loop — a process that cannot handle it is a bug.
            self._dispatch(recovered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {state}>"


_SEND_NONE = object()


class Resource:
    """FIFO capacity resource (bus arbiter, TSU port, emulator core...).

    ``request()`` returns an :class:`Event` that triggers when a slot is
    granted; the holder must call ``release()`` exactly once.  Grant order
    is strictly FIFO, which models the paper's bus arbiter behaviour and
    keeps simulations deterministic.

    The uncontended fast path pairs :meth:`try_acquire` (synchronous
    grant when a slot is free — no grant event, no zero-delay hop) with
    :meth:`release_at` (a *lazy* release: the slot is free from the given
    time onward, but no callback is scheduled for it).  Lazy holds expire
    passively inside the next ``try_acquire``/``request`` at or after
    their deadline; the moment a requester actually has to queue, every
    outstanding lazy hold is materialised into a scheduled release so the
    waiter is granted at exactly the time the slow path would have
    granted it.  Invariant: a non-empty wait queue implies no
    unmaterialised lazy holds.
    """

    __slots__ = ("engine", "capacity", "_in_use", "_queue", "_lazy", "name")

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        # deque: grants pop from the head on every release, and the bus
        # arbiter queue grows to O(kernels) under contention — list.pop(0)
        # made release O(n) on exactly the hottest simulations.
        self._queue: deque[Event] = deque()
        #: Min-heap of lazy-release deadlines (times, not delays).
        self._lazy: list[float] = []

    def _expire_lazy(self, now: float) -> None:
        # Strictly past deadlines only: a hold expiring exactly *now* is
        # still an in-flight release on the eager path (an event later in
        # this cycle's sequence order), so a same-cycle requester must
        # queue behind it — passively freeing the slot here would let the
        # requester jump same-cycle FIFO arbitration and win a grant the
        # slow path gives to somebody else.
        lazy = self._lazy
        while lazy and lazy[0] < now:
            heapq.heappop(lazy)
            self._in_use -= 1

    def _materialize_lazy(self) -> None:
        """Turn every lazy hold into a scheduled real release.

        Called when a requester queues: from that point on, frees must
        arrive as events so the FIFO grant happens at the exact time the
        eager protocol would have produced it.
        """
        engine = self.engine
        lazy = self._lazy
        while lazy:
            t = heapq.heappop(lazy)
            engine._schedule(t - engine.now, self._lazy_release, None)

    def _lazy_release(self, _arg: Any) -> None:
        self.release()

    def try_acquire(self) -> bool:
        """Grant a slot synchronously if one is free *right now*.

        Returns ``True`` and takes the slot without creating any event,
        or ``False`` when the caller must use the eager ``request()``
        protocol (at capacity, or waiters are queued).
        """
        if self._lazy:
            self._expire_lazy(self.engine.now)
        if self._queue or self._in_use >= self.capacity:
            return False
        self._in_use += 1
        return True

    def release_at(self, time: float) -> None:
        """Lazily free a slot at *time* (>= now).

        Only valid for slots taken with :meth:`try_acquire` while no
        waiter is queued; contended paths must use :meth:`release`.
        """
        if self._queue:
            # A waiter queued after our try_acquire: deliver eagerly so
            # the FIFO grant fires at the exact slow-path time.
            engine = self.engine
            engine._schedule(time - engine.now, self._lazy_release, None)
        else:
            heapq.heappush(self._lazy, time)

    def request(self) -> Event:
        """Ask for a slot; the returned event triggers when granted."""
        if self._lazy:
            self._expire_lazy(self.engine.now)
        ev = Event(self.engine, name=f"grant:{self.name}")
        if not self._queue and self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
            if self._lazy:
                self._materialize_lazy()
        return ev

    def release(self) -> None:
        """Free a slot, granting it to the longest-waiting requester."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            ev = self._queue.popleft()
            ev.succeed(self)
        else:
            self._in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_use(self) -> int:
        return self._in_use


class Engine:
    """The simulation kernel: virtual clock plus an event heap.

    Time is a float but all TFlux models use integral CPU cycles.  The heap
    is keyed on ``(time, sequence)`` so same-time callbacks run in schedule
    order, making every simulation deterministic.
    """

    __slots__ = ("now", "_heap", "_seq", "_nevents")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._nevents = 0

    @property
    def events_scheduled(self) -> int:
        """Total heap pushes so far (diagnostic; ``_seq`` is the push count)."""
        return self._seq

    # -- factory helpers --------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        return Resource(self, capacity, name=name)

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """Event that triggers once every event in *events* has triggered."""
        events = list(events)
        combined = Event(self, name=name)
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        values: list[Any] = [None] * remaining
        state = {"left": remaining}

        def make_cb(i: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                values[i] = ev.value
                state["left"] -= 1
                if state["left"] == 0:
                    combined.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return combined

    # -- scheduling --------------------------------------------------------
    def _schedule(self, delay: float, cb: Callable, arg: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self.now + delay, seq, cb, arg))

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock passes *until*."""
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        try:
            if until is None:
                # Dispatch loop with no deadline checks: the whole-program
                # case every figure simulation takes.
                while heap:
                    t, _seq, cb, arg = pop(heap)
                    if t < self.now:
                        raise SimulationError("event scheduled in the past")
                    self.now = t
                    dispatched += 1
                    cb(arg)
                return
            while heap:
                if heap[0][0] > until:
                    self.now = until
                    return
                t, _seq, cb, arg = pop(heap)
                if t < self.now:
                    raise SimulationError("event scheduled in the past")
                self.now = t
                dispatched += 1
                cb(arg)
            if until > self.now:
                self.now = until
        finally:
            self._nevents += dispatched

    @property
    def events_executed(self) -> int:
        """Total number of callbacks dispatched (diagnostic)."""
        return self._nevents
