"""Directory-capacity limits of the simulated machines, in one place.

The fast memory model tracks each cache line's sharers with a two-level
(node, core) directory (:mod:`repro.sim.fastcache`): a per-line
*node-presence* word — one ``uint64`` bit per group of
:data:`CORES_PER_NODE` cores — plus one ``uint64`` core mask per node.
The same scheme backs the cross-node copy-set of
:class:`~repro.net.ownermap.RegionOwnerMap`.  The representable machine
is therefore bounded by the presence word's width:

* at most :data:`MAX_NODES` (= 64) directory nodes, and
* at most :data:`MAX_CORES` (= 64 × 64 = 4096) cores in total.

Everything that composes a machine — platform constructors,
``tflux-run --nodes`` validation, the memory models themselves — funnels
through :func:`check_cores` / :func:`check_nodes` so the limit is
enforced once, with one error message, instead of a scatter of bare
``ValueError("bitmask ...")`` raises (the pre-directory 63-core wall).
"""

from __future__ import annotations

__all__ = [
    "CORES_PER_NODE",
    "MAX_NODES",
    "MAX_CORES",
    "DirectoryCapacityError",
    "check_cores",
    "check_nodes",
]

#: Width of one per-node core mask (one ``uint64`` word).
CORES_PER_NODE = 64
#: Width of the per-line node-presence word (one ``uint64`` word).
MAX_NODES = 64
#: Total simulated cores the two-level directory can represent.
MAX_CORES = MAX_NODES * CORES_PER_NODE


class DirectoryCapacityError(ValueError):
    """A machine larger than the two-level sharer directory can track."""


def _limits() -> str:
    return (
        f"the two-level sharer directory supports up to {MAX_NODES} nodes "
        f"x {CORES_PER_NODE} cores ({MAX_CORES} cores total)"
    )


def check_cores(ncores: int, what: str = "machine") -> int:
    """Validate a total core count against the directory width.

    Returns *ncores* so constructors can use it inline.
    """
    if not 1 <= ncores <= MAX_CORES:
        raise DirectoryCapacityError(
            f"{what} requests {ncores} cores, but {_limits()}"
        )
    return ncores


def check_nodes(nnodes: int, cores_per_node: int = 0, what: str = "machine") -> int:
    """Validate a node count (and optionally the resulting core total).

    Returns *nnodes* so constructors can use it inline.
    """
    if not 1 <= nnodes <= MAX_NODES:
        raise DirectoryCapacityError(
            f"{what} requests {nnodes} nodes, but {_limits()}"
        )
    if cores_per_node > 0:
        check_cores(nnodes * cores_per_node, what=what)
    return nnodes
