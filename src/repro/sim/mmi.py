"""Memory-Mapped Interface (MMI) for the hardware TSU.

In TFluxHard the TSU Group is attached to the system network as a
memory-mapped device (paper §4.1): CPUs control it through "specially
encoded flags" written to its address window; the MMI snoops the network,
forwards TSU-directed requests to the TSU Group, and writes replies back
onto the network once the arbiter grants access.

The model exposes the two timed primitives the Kernel code uses:

* :meth:`MMI.command` — a posted store carrying an encoded command; it
  occupies the bus for one transaction and the TSU's command port for the
  TSU processing time (the paper's "+4 cycles over an L1 access" default,
  swept 1→128 in the ablation).
* :meth:`MMI.query` — a load that returns the TSU's reply (e.g. the next
  ready DThread), costing a bus round-trip plus the TSU processing time.

Both are DES process fragments (``yield from``), so queueing at the bus
and at the single TSU command port is modelled faithfully.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.sim.engine import Engine, Resource
from repro.sim.interconnect import SystemBus

__all__ = ["MemoryMappedInterface"]


class MemoryMappedInterface:
    """The bridge between the system network and the hardware TSU Group."""

    def __init__(
        self,
        engine: Engine,
        bus: SystemBus,
        tsu_processing_cycles: int = 4,
        l1_access_cycles: int = 2,
    ) -> None:
        self.engine = engine
        self.bus = bus
        # "Each access to the TSU is penalized with 4 additional cycles
        # compared to a normal L1 cache access" (§6.1.1).
        self.tsu_processing_cycles = tsu_processing_cycles
        self.l1_access_cycles = l1_access_cycles
        # The TSU Group processes one command at a time.
        self._port = Resource(engine, capacity=1, name="tsu-port")
        self.commands = 0
        self.queries = 0

    @property
    def access_cycles(self) -> int:
        """Latency of one TSU access seen by the CPU."""
        return self.l1_access_cycles + self.tsu_processing_cycles

    def command(self, action: Callable[[], Any]) -> Generator:
        """Deliver an encoded command; *action* mutates the TSU state."""
        yield from self.bus.transfer()
        grant = self._port.request()
        yield grant
        try:
            yield self.access_cycles
            action()
        finally:
            self._port.release()
        self.commands += 1

    def query(self, action: Callable[[], Any]) -> Generator:
        """Round-trip load; the process's return value is *action*'s result."""
        yield from self.bus.transfer()
        grant = self._port.request()
        yield grant
        try:
            yield self.access_cycles
            result = action()
        finally:
            self._port.release()
        # Reply travels back over the network (arbiter-granted write).
        yield from self.bus.transfer()
        self.queries += 1
        return result
