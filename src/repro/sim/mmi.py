"""Memory-Mapped Interface (MMI) for the hardware TSU.

In TFluxHard the TSU Group is attached to the system network as a
memory-mapped device (paper §4.1): CPUs control it through "specially
encoded flags" written to its address window; the MMI snoops the network,
forwards TSU-directed requests to the TSU Group, and writes replies back
onto the network once the arbiter grants access.

The model exposes the two timed primitives the Kernel code uses:

* :meth:`MMI.command` — a posted store carrying an encoded command; it
  occupies the bus for one transaction and the TSU's command port for the
  TSU processing time (the paper's "+4 cycles over an L1 access" default,
  swept 1→128 in the ablation).
* :meth:`MMI.query` — a load that returns the TSU's reply (e.g. the next
  ready DThread), costing a bus round-trip plus the TSU processing time.

Both are DES process fragments (``yield from``), so queueing at the bus
and at the single TSU command port is modelled faithfully.

Uncontended fast path (``TFLUX_FASTPATH``, default on): when an op is
*alone* in the device (no other command/query between entry and exit)
and both the bus arbiter and the command port grant synchronously, the
whole bus-hold → port-acquire → TSU-processing ladder collapses into a
single accumulated timeout: the bus is lazily released at the exact
cycle the eager protocol would free it, and the port is released
eagerly when the timeout fires — the exact point the eager protocol
releases it.  The alone-in-device gate matters: a contender already in
flight (past the bus, about to request the port) may reach the port at
the *same timestamp* as our plan-time claim, and pre-claiming would
jump it in the FIFO and reorder TSU operations.  The functional
*action* still runs at its exact slow-path time (end of the TSU
processing slot), preserving the functional/timing split and
bit-identical cycle counts.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.sim.engine import Engine, Resource, fastpath_enabled
from repro.sim.interconnect import SystemBus

__all__ = ["MemoryMappedInterface", "InflightGate"]


class InflightGate:
    """Ops in flight across every MMI device attached to one TSU Group.

    A single-device adapter keeps a private gate; adapters with several
    MMI devices in front of the *same* functional TSU (multigroup) must
    share one.  The fast path coalesces an op into a single timeout whose
    action-resume event is scheduled at *entry* time, while the eager path
    schedules it at the *port-grant* instant — same cycle, different
    engine sequence numbers.  With a sibling op in flight on another
    device, a TSU mutation can land between those two instants and the
    coalesced query would read TSU state the eager schedule has not yet
    produced.  Sharing the gate makes "alone in the device" mean "alone
    in front of the TSU", which restores the eager ordering exactly.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


class MemoryMappedInterface:
    """The bridge between the system network and the hardware TSU Group."""

    def __init__(
        self,
        engine: Engine,
        bus: SystemBus,
        tsu_processing_cycles: int = 4,
        l1_access_cycles: int = 2,
        inflight: "InflightGate | None" = None,
    ) -> None:
        self.engine = engine
        self.bus = bus
        # "Each access to the TSU is penalized with 4 additional cycles
        # compared to a normal L1 cache access" (§6.1.1).
        self.tsu_processing_cycles = tsu_processing_cycles
        self.l1_access_cycles = l1_access_cycles
        # The TSU Group processes one command at a time.
        self._port = Resource(engine, capacity=1, name="tsu-port")
        self.commands = 0
        self.queries = 0
        self._fast = fastpath_enabled()
        #: Ops currently somewhere between entry and exit of command/query
        #: on any MMI sharing this gate (see :class:`InflightGate`).  The
        #: fast path engages only when an op is alone in front of the TSU
        #: (``count == 1``): a contender mid-flight may reach a command
        #: port at the *same timestamp* as our claim, and jumping it in
        #: the FIFO would reorder TSU operations.
        self._inflight = inflight if inflight is not None else InflightGate()
        self.fast_commands = 0
        self.fast_queries = 0

    @property
    def access_cycles(self) -> int:
        """Latency of one TSU access seen by the CPU."""
        return self.l1_access_cycles + self.tsu_processing_cycles

    def _try_claim(self) -> bool:
        """Claim bus + port synchronously, or neither (fast-path gate).

        Only called when this op is alone in the device; the port is
        then acquired at plan time (unobservable: any later contender
        must first win the bus, which stays held for the full eager bus
        slot) and released *eagerly* when the plan's timeout fires — the
        exact point the eager protocol releases it.
        """
        if self._inflight.count != 1:
            return False
        bus_arbiter = self.bus._arbiter
        if not bus_arbiter.try_acquire():
            return False
        if not self._port.try_acquire():
            # Undo: the synchronous grant created no event, so a plain
            # release (queue is empty, or try_acquire would have failed)
            # restores the arbiter exactly.
            bus_arbiter.release()
            return False
        return True

    def _claim_plan(self) -> int:
        """Lazy-release schedule for a claimed bus; returns the plan delay."""
        bus_hold = self.bus.cycles_per_transaction
        self.bus._arbiter.release_at(self.engine.now + bus_hold)
        self.bus.transactions += 1
        self.bus.busy_cycles += bus_hold
        return bus_hold + self.access_cycles

    def command(self, action: Callable[[], Any]) -> Generator:
        """Deliver an encoded command; *action* mutates the TSU state."""
        self._inflight.count += 1
        try:
            if self._fast and self._try_claim():
                # One accumulated timeout for bus hold + TSU processing;
                # the action still runs at the exact eager-protocol cycle.
                yield self._claim_plan()
                action()
                self._port.release()
                self.commands += 1
                self.fast_commands += 1
                return
            yield from self.bus.transfer()
            grant = self._port.request()
            yield grant
            try:
                yield self.access_cycles
                action()
            finally:
                self._port.release()
            self.commands += 1
        finally:
            self._inflight.count -= 1

    def query(self, action: Callable[[], Any]) -> Generator:
        """Round-trip load; the process's return value is *action*'s result."""
        self._inflight.count += 1
        try:
            if self._fast and self._try_claim():
                yield self._claim_plan()
                result = action()
                self._port.release()
                # Reply travels back over the network (arbiter-granted
                # write); the bus may have been re-taken mid-flight, so
                # the reply leg arbitrates on its own.
                yield from self.bus.transfer()
                self.queries += 1
                self.fast_queries += 1
                return result
            yield from self.bus.transfer()
            grant = self._port.request()
            yield grant
            try:
                yield self.access_cycles
                result = action()
            finally:
                self._port.release()
            # Reply travels back over the network (arbiter-granted write).
            yield from self.bus.transfer()
            self.queries += 1
            return result
        finally:
            self._inflight.count -= 1
