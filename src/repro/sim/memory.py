"""Main-memory (DRAM) model.

The cache hierarchy charges a flat DRAM access latency per missing line
(:class:`repro.sim.cache.MemoryConfig.dram_latency`); this module adds the
machine-level view: capacity accounting (the PS3's 256 MB XDR is small
enough that the paper had to care) and aggregate bandwidth statistics used
by the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MainMemory"]


@dataclass
class MainMemory:
    """A flat memory device with capacity and traffic accounting.

    Parameters
    ----------
    capacity:
        Bytes of physical memory (e.g. ``256 << 20`` for the PS3).
    latency:
        Access latency in CPU cycles for one cache line.
    line_size:
        Transfer granularity in bytes.
    """

    capacity: int
    latency: int = 100
    line_size: int = 64
    _allocated: int = field(default=0, init=False)
    lines_read: int = field(default=0, init=False)
    lines_written: int = field(default=0, init=False)

    def allocate(self, nbytes: int) -> int:
        """Reserve *nbytes*; returns the base offset.

        Raises :class:`MemoryError` when the machine's physical memory is
        exhausted — the PS3's 256 MB limit is a real constraint for the
        large QSORT/MMULT problem sizes.
        """
        if self._allocated + nbytes > self.capacity:
            raise MemoryError(
                f"allocation of {nbytes} bytes exceeds capacity "
                f"{self.capacity} (used {self._allocated})"
            )
        base = self._allocated
        self._allocated += nbytes
        return base

    def free_bytes(self) -> int:
        return self.capacity - self._allocated

    def record_read(self, nbytes: int) -> None:
        self.lines_read += -(-nbytes // self.line_size)

    def record_write(self, nbytes: int) -> None:
        self.lines_written += -(-nbytes // self.line_size)

    @property
    def traffic_bytes(self) -> int:
        return (self.lines_read + self.lines_written) * self.line_size
