"""Cell/BE substrate for TFluxCell.

The Cell Broadband Engine (paper §4.3) is a heterogeneous chip: one PPE
(general-purpose core, runs the OS and the TSU Emulator) and SPEs (SIMD
cores with *no* caches — each has a 256 KB Local Store fed explicitly by
DMA).  TFluxCell maps Kernels onto SPEs and communicates through:

* a per-SPE 128-byte **CommandBuffer** in main memory (kernel → TSU),
* SPE **mailboxes** (TSU → kernel: the id of the next ready DThread),
* a **SharedVariableBuffer** through which DThread outputs are exported
  and inputs imported (DMA to/from the Local Store).

Modules: :mod:`~repro.cell.localstore` (capacity accounting — the reason
QSORT's large inputs cannot run, §6.3), :mod:`~repro.cell.dma` (transfer
cost model), :mod:`~repro.cell.mailbox`, :mod:`~repro.cell.commandbuffer`,
and :mod:`~repro.cell.adapter` (the TFluxCell protocol adapter wiring it
all to the TSU Group on the DES).
"""

from repro.cell.localstore import CellLocalStoreError, LocalStore
from repro.cell.dma import DMAEngine
from repro.cell.mailbox import Mailbox
from repro.cell.commandbuffer import CommandBuffer, SharedVariableBuffer
from repro.cell.adapter import CellTSUAdapter, CellCosts

__all__ = [
    "CellLocalStoreError",
    "LocalStore",
    "DMAEngine",
    "Mailbox",
    "CommandBuffer",
    "SharedVariableBuffer",
    "CellTSUAdapter",
    "CellCosts",
]
