"""TFluxCell protocol adapter: SPE kernels, PPE TSU Emulator.

The control flow of paper §4.3:

* "Whenever a DThread needs to notify its TSU of any event, it places a
  command into its corresponding CommandBuffer" — completions and
  next-thread requests are :class:`~repro.cell.commandbuffer.Command`
  records written (small DMA) into the SPE's 128-byte buffer;
* "The TSU Emulator ... is in a loop checking the CommandBuffers of all
  Kernels and updates the internal status of each TSU based on these
  commands" — a DES process that round-robins over the buffers, paying a
  poll cost per buffer and a processing cost per command;
* "the Kernel waits on a mailbox for the information about the next
  DThread to be executed, which is sent by the TSU Emulator" — fetches
  therefore *block on the SPE side*: the emulator parks requests that
  cannot be satisfied yet and answers them (mailbox latency included) as
  soon as post-processing makes work available.  The adapter consequently
  never returns WAIT to the driver: the Kernel step machine's ``wait``
  step (and the wake discipline of :mod:`repro.runtime.core`) is unused
  on this platform — blocking lives inside the mailbox, not the loop.
* DThread data moves by DMA between the SharedVariableBuffer and the
  Local Store; :meth:`CellTSUAdapter.thread_memory_cycles` prices those
  transfers and enforces the 256 KB Local Store capacity — the constraint
  that forced the paper's smaller Cell problem sizes for QSORT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cell.commandbuffer import Command, CommandBuffer, SharedVariableBuffer
from repro.cell.dma import DMAEngine
from repro.core.dynamic import Subflow
from repro.cell.localstore import LocalStore
from repro.cell.mailbox import Mailbox
from repro.core.block import DDMBlock
from repro.core.dthread import DThreadInstance
from repro.sim.accesses import AccessSummary
from repro.sim.engine import Engine, Event
from repro.sim.machine import CellParams
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import Fetch, FetchKind, TSUGroup

__all__ = ["CellCosts", "CellTSUAdapter"]


@dataclass(frozen=True)
class CellCosts:
    """Cycle costs of the TFluxCell protocol (3.2 GHz PS3 magnitudes)."""

    command_write_cycles: int = 250  # small DMA into the CommandBuffer
    command_retry_cycles: int = 300  # buffer full: back off and retry
    ppe_poll_cycles: int = 200  # emulator checks one CommandBuffer
    ppe_per_command: int = 400  # decode + TSU state machine step
    ppe_per_update: int = 200  # one consumer Ready-Count decrement
    mailbox_latency: int = 400  # PPE write -> SPE mailbox visible
    inlet_per_entry: int = 150  # metadata load per DThread entry
    outlet_cycles: int = 800


class CellTSUAdapter(ProtocolAdapter):
    """The Cell/BE implementation of the TSU protocol."""

    def __init__(
        self,
        engine: Engine,
        tsu: TSUGroup,
        params: Optional[CellParams] = None,
        costs: CellCosts = CellCosts(),
    ) -> None:
        super().__init__(engine, tsu)
        params = params or CellParams()
        self.params = params
        self.costs = costs
        n = tsu.nkernels
        if n > params.n_spes:
            raise ValueError(
                f"{n} kernels exceed the {params.n_spes} available SPEs"
            )
        self.command_buffers = [
            CommandBuffer(params.command_buffer_bytes) for _ in range(n)
        ]
        self.mailboxes = [
            Mailbox(engine, latency=costs.mailbox_latency) for _ in range(n)
        ]
        self.dma = [
            DMAEngine(
                setup_cycles=params.dma_setup_cycles,
                cycles_per_line=params.dma_cycles_per_line,
                line_size=params.dma_line_size,
            )
            for _ in range(n)
        ]
        self.local_stores = [
            LocalStore(capacity=params.local_store_bytes) for _ in range(n)
        ]
        self.shared_buffer = SharedVariableBuffer()
        self._parked_fetch: set[int] = set()
        self._ppe_wake: Optional[Event] = None
        self._ppe_started = False
        self._shutdown = False
        # Statistics (plain ints on the hot path; see publish_counters).
        self.ppe_busy_cycles = 0
        self.ppe_commands = 0
        self.ppe_polls = 0

    def publish_counters(self, counters) -> None:
        ppe = counters.scope("ppe")
        ppe.inc("busy_cycles", self.ppe_busy_cycles)
        ppe.inc("commands", self.ppe_commands)
        ppe.inc("polls", self.ppe_polls)
        cmdbuf = counters.scope("cmdbuf")
        cmdbuf.inc("writes", sum(cb.writes for cb in self.command_buffers))
        cmdbuf.inc("stalls", sum(cb.stalls for cb in self.command_buffers))
        dma = counters.scope("dma")
        dma.inc("bytes_imported", self.shared_buffer.bytes_imported)
        dma.inc("bytes_exported", self.shared_buffer.bytes_exported)
        dma.inc("imports", self.shared_buffer.imports)
        dma.inc("exports", self.shared_buffer.exports)

    # -- PPE emulator lifecycle ----------------------------------------------------
    def start(self) -> None:
        if not self._ppe_started:
            self._ppe_started = True
            self.engine.process(self._ppe_proc(), name="ppe-emulator")

    def shutdown(self) -> None:
        self._shutdown = True
        self._kick()

    def _kick(self) -> None:
        if self._ppe_wake is not None and not self._ppe_wake.triggered:
            self._ppe_wake.succeed()

    def _retry_parked(self) -> None:
        """Answer parked next-thread requests that can now be satisfied."""
        if not self._parked_fetch:
            return
        for k in sorted(self._parked_fetch):
            if not self.tsu.has_work(k):
                continue
            f = self.tsu.fetch(k)
            if f.kind == FetchKind.WAIT:
                continue
            self._parked_fetch.discard(k)
            self.mailboxes[k].send(f)

    def _ppe_proc(self) -> Generator:
        # Deliberately outside the TFLUX_FASTPATH coalescing: each poll
        # must be its own timeout because a command written *mid-sweep*
        # is observed (or missed) depending on whether its buffer's
        # drain() has already run this sweep — collapsing the empty
        # polls into one accumulated timeout would drain every buffer at
        # the sweep's end and catch commands the eager schedule misses.
        costs = self.costs
        n = self.tsu.nkernels
        while True:
            progressed = False
            for k in range(n):
                yield costs.ppe_poll_cycles
                self.ppe_busy_cycles += costs.ppe_poll_cycles
                self.ppe_polls += 1
                for cmd in self.command_buffers[k].drain():
                    progressed = True
                    if cmd.opcode == "complete":
                        nconsumers = len(
                            self.tsu.current_block.consumers[cmd.arg]
                        )
                        busy = costs.ppe_per_command + costs.ppe_per_update * nconsumers
                        yield busy
                        self.ppe_busy_cycles += busy
                        self.ppe_commands += 1
                        self._apply_thread_completion(
                            cmd.kernel, cmd.arg, cmd.outcome
                        )
                    elif cmd.opcode == "fetch":
                        yield costs.ppe_per_command
                        self.ppe_busy_cycles += costs.ppe_per_command
                        self.ppe_commands += 1
                        f = self.tsu.fetch(cmd.kernel)
                        if f.kind == FetchKind.WAIT:
                            self._parked_fetch.add(cmd.kernel)
                        else:
                            self.mailboxes[cmd.kernel].send(f)
                    else:  # pragma: no cover - defensive
                        raise ValueError(f"unknown command {cmd.opcode!r}")
                    self._retry_parked()
            if not progressed:
                # A command may have landed in an already-scanned buffer
                # during this sweep; re-check before sleeping (the kick
                # only fires when the wake event already exists).
                if any(len(cb) for cb in self.command_buffers):
                    continue
                if self._shutdown and not self._parked_fetch:
                    return
                if self._shutdown and self.tsu.is_exited():
                    # Flush parked fetches with EXIT replies.
                    self._retry_parked()
                    if not self._parked_fetch:
                        return
                self._ppe_wake = Event(self.engine, name="ppe-wake")
                yield self._ppe_wake
                self._ppe_wake = None

    # -- SPE-side protocol ------------------------------------------------------------
    def _write_command(self, cmd: Command) -> Generator:
        """SPE writes a command word; backs off while the buffer is full."""
        cb = self.command_buffers[cmd.kernel]
        yield self.costs.command_write_cycles
        while not cb.try_write(cmd):
            yield self.costs.command_retry_cycles
        self._kick()

    def fetch(self, kernel: int) -> Generator:
        yield from self._write_command(Command("fetch", kernel))
        reply = yield from self.mailboxes[kernel].receive()
        return reply

    def complete_inlet(self, kernel: int, block: DDMBlock) -> Generator:
        # The Inlet streams the block's metadata into the PPE-side TSU
        # structures in main memory.
        yield self.costs.inlet_per_entry * max(block.size, 1)
        self.tsu.complete_inlet(kernel)
        self._retry_parked()
        self.wake_kernels()

    def resolve_dynamic(
        self, kernel: int, local_iid: int, outcome: object
    ) -> Generator:
        # A spawned subflow's descriptor is staged into the
        # SharedVariableBuffer with one extra command-sized DMA write;
        # a branch key packs into the completion command for free.
        if isinstance(outcome, Subflow):
            yield self.costs.command_write_cycles

    def complete_thread(
        self,
        kernel: int,
        local_iid: int,
        instance: DThreadInstance,
        outcome: object = None,
    ) -> Generator:
        yield from self._write_command(
            Command("complete", kernel, local_iid, outcome=outcome)
        )

    def complete_outlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield self.costs.outlet_cycles
        self.tsu.complete_outlet(kernel)
        self._retry_parked()
        self.wake_kernels()

    # -- memory pricing -----------------------------------------------------------------
    def thread_memory_cycles(
        self, kernel: int, instance: DThreadInstance, summary: AccessSummary
    ) -> Optional[int]:
        dma = self.dma[kernel]
        ws = dma.working_set_bytes(summary)
        self.local_stores[kernel].require(ws, what=f"DThread {instance.name}")
        imports = dma.import_cycles(summary)
        exports = dma.export_cycles(summary)
        self.shared_buffer.record_import(summary.bytes_read)
        self.shared_buffer.record_export(summary.bytes_written)
        return imports + exports
