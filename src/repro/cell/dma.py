"""DMA cost model for SPE Local Store transfers.

SPEs access main memory only through explicit DMA over the Element
Interconnect Bus: each transfer pays a setup cost (MFC command issue +
queue) plus a per-128-byte-line streaming cost.  Imports (main memory →
LS) happen before a DThread starts; exports (LS → SharedVariableBuffer)
after it completes — "this data is imported from the sharedVariableBuffer
into the SPE Local Store memory space, where this new DThread will
execute.  This operation is performed using the DMA primitives" (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.accesses import AccessSummary

__all__ = ["DMAEngine"]


@dataclass
class DMAEngine:
    """Per-SPE DMA channel (costs only; bandwidth shared via the EIB is
    second-order for ≤6 SPEs and not modelled)."""

    setup_cycles: int = 300
    cycles_per_line: int = 4
    line_size: int = 128
    #: Tile size for streamed (non-resident) ranges; double-buffered.
    stream_tile_bytes: int = 16 * 1024
    transfers: int = field(default=0, init=False)
    bytes_moved: int = field(default=0, init=False)

    def transfer_cycles(self, nbytes: int, streamed: bool = False) -> int:
        """Cost of moving *nbytes* (one transfer, or tile-by-tile)."""
        if nbytes <= 0:
            return 0
        lines = -(-nbytes // self.line_size)
        ntransfers = (
            -(-nbytes // self.stream_tile_bytes) if streamed else 1
        )
        self.transfers += ntransfers
        self.bytes_moved += nbytes
        return self.setup_cycles * ntransfers + lines * self.cycles_per_line

    def import_cycles(self, summary: AccessSummary) -> int:
        """DMA-in every range the DThread reads."""
        return sum(
            self.transfer_cycles(op.bytes_touched, streamed=not op.resident)
            for op in summary
            if not op.is_write
        )

    def export_cycles(self, summary: AccessSummary) -> int:
        """DMA-out every range the DThread writes."""
        return sum(
            self.transfer_cycles(op.bytes_touched, streamed=not op.resident)
            for op in summary
            if op.is_write
        )

    def working_set_bytes(self, summary: AccessSummary) -> int:
        """Bytes simultaneously needed in the Local Store.

        Resident ranges count in full (reads are held while outputs are
        produced); streamed ranges need two tiles (double buffering).
        """
        total = 0
        for op in summary:
            if op.resident:
                total += op.bytes_touched
            else:
                total += min(op.bytes_touched, 2 * self.stream_tile_bytes)
        return total
