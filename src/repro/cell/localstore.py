"""SPE Local Store capacity model.

Each SPE owns 256 KB of Local Store holding *everything* it needs: the
kernel's code, the runtime, and every byte of DThread data DMA'd in.
"The reason for not using larger problem sizes is that they would not fit
in each SPE Local Store" (paper §6.3) — this module is where that
constraint lives: a DThread whose working set exceeds the available data
budget raises :class:`CellLocalStoreError`, exactly the wall the paper hit
with QSORT.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CellLocalStoreError", "LocalStore"]

#: Bytes of Local Store consumed by the SPE kernel binary + TFlux runtime
#: (the paper's SPE kernel, DMA lists, stack, and the CommandBuffer copy).
DEFAULT_RESERVED_BYTES = 48 * 1024


class CellLocalStoreError(MemoryError):
    """A DThread's working set does not fit in the SPE Local Store."""


@dataclass
class LocalStore:
    """Capacity tracker for one SPE's Local Store."""

    capacity: int = 256 * 1024
    reserved: int = DEFAULT_RESERVED_BYTES
    high_watermark: int = 0

    @property
    def data_budget(self) -> int:
        return self.capacity - self.reserved

    def require(self, nbytes: int, what: str = "DThread working set") -> None:
        """Record a working-set demand; raise if it cannot fit."""
        self.high_watermark = max(self.high_watermark, nbytes)
        if nbytes > self.data_budget:
            raise CellLocalStoreError(
                f"{what} needs {nbytes} bytes but only {self.data_budget} of "
                f"the {self.capacity}-byte Local Store are available "
                f"({self.reserved} reserved for code/runtime); the "
                "application must be restructured to stage its data (§6.3)"
            )

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.data_budget
