"""SPE mailboxes.

Each SPE has a small inbound mailbox the PPE writes to; the SPE blocks on
a read until a message arrives.  TFluxCell uses it for the TSU Emulator's
"here is your next DThread" notifications (§4.3).  Modelled as a bounded
FIFO with a fixed PPE→SPE delivery latency on the DES.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.sim.engine import Engine, Event

__all__ = ["Mailbox"]


class Mailbox:
    """Bounded FIFO with delivery latency (one per SPE)."""

    def __init__(self, engine: Engine, capacity: int = 4, latency: int = 100) -> None:
        if capacity < 1:
            raise ValueError("mailbox capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.latency = latency
        self._items: deque[Any] = deque()
        self._reader: Optional[Event] = None
        self.messages = 0
        self.blocked_reads = 0

    def send(self, value: Any) -> None:
        """PPE side: deliver *value* after the mailbox latency.

        Raises on overflow — the TFluxCell protocol never has more than
        one outstanding reply per SPE, so overflow indicates a bug.
        """

        def deliver(_):
            if len(self._items) >= self.capacity:
                raise OverflowError("SPE mailbox overflow")
            self._items.append(value)
            self.messages += 1
            if self._reader is not None and not self._reader.triggered:
                self._reader.succeed()
                self._reader = None

        self.engine._schedule(self.latency, deliver, None)

    def receive(self) -> Generator:
        """SPE side: block until a message is available, then pop it."""
        while not self._items:
            self.blocked_reads += 1
            self._reader = Event(self.engine, name="mbox-read")
            yield self._reader
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)
