"""CommandBuffer and SharedVariableBuffer.

"... it is necessary to use another unit per TSU named the CommandBuffer
which size is 128 Bytes.  This unit, which is also allocated in main
memory[,] holds the commands sent by the kernels executing on the
corresponding SPE.  Also one shared buffer (SharedVariableBuffer) is used
by all kernels for transferring the values of the shared variables
between DThreads" (paper §4.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CommandBuffer", "SharedVariableBuffer", "Command"]

#: Bytes per encoded command word (opcode + DThread id + context).
COMMAND_BYTES = 16


@dataclass(frozen=True)
class Command:
    """One encoded kernel→TSU command."""

    opcode: str  # "complete" | "fetch" | "exit_ack"
    kernel: int
    arg: Any = None
    #: Dynamic outcome riding a "complete" command: a branch key packed
    #: into the command word, or a reference to a spawned Subflow staged
    #: in the SharedVariableBuffer (its transfer is priced separately).
    outcome: Any = None


class CommandBuffer:
    """One SPE's 128-byte command window in main memory.

    Capacity is small (128 B / 16 B = 8 commands); the SPE stalls if the
    PPE has not drained it — visible back-pressure, as on the real chip.
    """

    def __init__(self, size_bytes: int = 128) -> None:
        self.capacity = max(1, size_bytes // COMMAND_BYTES)
        self._cmds: deque[Command] = deque()
        self.writes = 0
        self.stalls = 0

    def try_write(self, cmd: Command) -> bool:
        if len(self._cmds) >= self.capacity:
            self.stalls += 1
            return False
        self._cmds.append(cmd)
        self.writes += 1
        return True

    def drain(self) -> list[Command]:
        out = list(self._cmds)
        self._cmds.clear()
        return out

    def __len__(self) -> int:
        return len(self._cmds)


@dataclass
class SharedVariableBuffer:
    """Main-memory staging area for inter-DThread shared variables.

    Functionally our shared data already lives in the
    :class:`~repro.core.environment.Environment`; this object carries the
    *accounting*: bytes exported after completion and imported before
    execution, which the DMA engine prices.
    """

    bytes_exported: int = 0
    bytes_imported: int = 0
    exports: int = 0
    imports: int = 0

    def record_export(self, nbytes: int) -> None:
        self.bytes_exported += nbytes
        self.exports += 1

    def record_import(self, nbytes: int) -> None:
        self.bytes_imported += nbytes
        self.imports += 1
