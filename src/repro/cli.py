"""``tflux-run`` — run a Table-1 benchmark on a TFlux platform.

Examples::

    tflux-run trapez --platform hard --kernels 27 --size large
    tflux-run mmult --platform cell --kernels 6 --size small --unroll 64
    tflux-run qsort --platform soft --kernels 6 --sweep
"""

from __future__ import annotations

import argparse

from repro.apps import BENCHMARKS, get_benchmark, problem_sizes
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft

__all__ = ["main"]

_PLATFORMS = {
    "hard": TFluxHard,
    "soft": TFluxSoft,
    "cell": TFluxCell,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tflux-run", description="Run a TFlux workload on a platform"
    )
    parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    parser.add_argument("--platform", choices=sorted(_PLATFORMS), default="hard")
    parser.add_argument("--kernels", type=int, default=0, help="0 = platform max")
    parser.add_argument("--size", choices=("small", "medium", "large"), default="small")
    parser.add_argument("--unroll", type=int, default=0, help="0 = best over grid")
    parser.add_argument(
        "--sweep", action="store_true", help="sweep kernel counts 2..max"
    )
    args = parser.parse_args(argv)

    platform = _PLATFORMS[args.platform]()
    bench = get_benchmark(args.benchmark)
    size = problem_sizes(args.benchmark, platform.target)[args.size]
    unrolls = (args.unroll,) if args.unroll else (1, 2, 4, 8, 16, 32, 64)

    if args.sweep:
        counts = [k for k in (2, 4, 8, 16, platform.max_kernels) if k <= platform.max_kernels]
        counts = sorted(set(counts))
    else:
        counts = [args.kernels or platform.max_kernels]

    print(f"{bench.name.upper()} ({size}) on {platform.name}")
    try:
        for nk in counts:
            ev = platform.evaluate(bench, size, nkernels=nk, unrolls=unrolls)
            print(f"  {ev.row()}")
    except (ValueError, MemoryError) as exc:
        import sys

        print(f"tflux-run: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
