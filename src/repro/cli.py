"""``tflux-run`` — run a Table-1 benchmark on a TFlux platform.

Examples::

    tflux-run trapez --platform hard --kernels 27 --size large
    tflux-run mmult --platform cell --kernels 6 --size small --unroll 64
    tflux-run qsort --platform soft --kernels 6 --sweep --jobs 4
    tflux-run susan --platform hard --sweep --cache-dir ~/.cache/tflux
    tflux-run fft --platform dist --nodes 4 --size small
    tflux-run trapez --platform dist --sweep         # sweeps --nodes

``--jobs`` and ``--cache-dir`` are command-line spellings of the
``TFLUX_JOBS`` / ``TFLUX_CACHE_DIR`` knobs (see docs/simulation.md,
"Running the harness fast"); explicit flags win over the environment.
"""

from __future__ import annotations

import argparse
import os

from repro.apps import BENCHMARKS, problem_sizes
from repro.exec import ENV_CACHE_DIR, ENV_JOBS, EvalRequest, evaluate_many
from repro.net.topology import FatTree, OversubscribedSpine
from repro.platforms import TFluxCell, TFluxDist, TFluxHard, TFluxSoft
from repro.sim.capability import MAX_CORES, MAX_NODES

__all__ = ["main"]

_PLATFORMS = {
    "hard": TFluxHard,
    "soft": TFluxSoft,
    "cell": TFluxCell,
    "dist": TFluxDist,
}


def _ladder(maximum: int, rungs: tuple[int, ...] = (2, 4, 8, 16)) -> list[int]:
    """The sweep ladder: the standard *rungs* that fit under *maximum*,
    plus *maximum* itself, deduplicated and sorted (a platform whose max
    coincides with a rung — e.g. 16 kernels — must not be run twice)."""
    return sorted({r for r in rungs if r <= maximum} | {maximum})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tflux-run", description="Run a TFlux workload on a platform"
    )
    parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    parser.add_argument("--platform", choices=sorted(_PLATFORMS), default="hard")
    parser.add_argument("--kernels", type=int, default=0, help="0 = platform max")
    parser.add_argument("--size", choices=("small", "medium", "large"), default="small")
    parser.add_argument(
        "--unroll",
        default="0",
        help="a fixed unroll factor, 0 = best over the full grid, or "
        "'auto' = adaptive search (coarse probes + local refinement, "
        "same winner as the grid in fewer simulations)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=0,
        help="message-passing nodes (dist platform only; 0 = platform default)",
    )
    parser.add_argument(
        "--topology",
        choices=("mesh", "fattree", "spine"),
        default="mesh",
        help="fabric wiring between dist nodes (mesh = dedicated pairwise "
        "links; fattree = pods of 8 with full bisection; spine = pods of 8 "
        "behind a 4:1 oversubscribed spine)",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="SIZE",
        help="relay TSU fan-out through cluster heads of SIZE nodes "
        "(dist platform only; 0 = flat point-to-point fan-out)",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="sweep kernel counts 2..max (node counts 1..max on dist)",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help=f"worker processes for the sweep (overrides {ENV_JOBS}; 'auto' = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"persistent result cache directory (overrides {ENV_CACHE_DIR})",
    )
    parser.add_argument(
        "--check-native",
        action="store_true",
        help="after evaluating, re-run the first cell's program on the "
        "native (OS-thread) runtime and verify its functional output — "
        "the same Kernel step machine on a different backend",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a Chrome-trace JSON timeline of one run at the best "
        "unroll (open in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after evaluating, re-run the first cell at the best unroll "
        "with the engine fast path on and off and print an events/instance "
        "+ sec/run comparison table",
    )
    parser.add_argument(
        "--check-deps",
        action="store_true",
        help="instead of evaluating, diagnose the benchmark's declared "
        "synchronization graph against the dependence graph derived from "
        "its access summaries; exit 1 if any dependence is missing",
    )
    parser.add_argument(
        "--check-races",
        action="store_true",
        help="instead of evaluating, run the benchmark once functionally "
        "under the dynamic race detector (recorded footprints vs declared "
        "summaries, races vs the happens-before order); exit 1 on findings",
    )
    args = parser.parse_args(argv)
    if args.unroll != "auto":
        # Mirror the evaluate-path error contract (stderr + exit code 2,
        # not argparse's SystemExit) — the CLI tests rely on it.
        try:
            args.unroll = int(args.unroll)
        except ValueError:
            args.unroll = -1
        if args.unroll < 0:
            import sys

            print(
                "tflux-run: error: --unroll must be a factor >= 0 or 'auto'",
                file=sys.stderr,
            )
            return 2

    # The exec layer reads the knobs from the environment at call time;
    # flags simply override it for this invocation.
    if args.jobs is not None:
        os.environ[ENV_JOBS] = str(args.jobs)
    if args.cache_dir is not None:
        os.environ[ENV_CACHE_DIR] = os.path.expanduser(args.cache_dir)

    if args.nodes and args.platform != "dist":
        parser.error("--nodes is only meaningful with --platform dist")
    if args.cluster and args.platform != "dist":
        parser.error("--cluster is only meaningful with --platform dist")
    if args.topology != "mesh" and args.platform != "dist":
        parser.error("--topology is only meaningful with --platform dist")
    if args.platform == "dist":
        topology = {
            "mesh": None,
            "fattree": FatTree(pod_size=8),
            "spine": OversubscribedSpine(pod_size=8),
        }[args.topology]
        cluster = args.cluster or None
        try:
            # DirectoryCapacityError (a ValueError) surfaces the two-level
            # directory limits — 64 nodes x 64 cores — in the CLI error.
            platform = TFluxDist(
                nnodes=args.nodes or 2, topology=topology, cluster_size=cluster
            )
        except ValueError as exc:
            parser.error(str(exc))
    else:
        platform = _PLATFORMS[args.platform]()
    size = problem_sizes(args.benchmark, platform.target)[args.size]

    if args.check_deps or args.check_races:
        # The two audits compose: static graph diagnosis, then one
        # recorded functional run (each on a fresh program build).
        unroll = args.unroll if isinstance(args.unroll, int) else 0
        status = 0
        if args.check_deps:
            status = max(status, _check_deps(args.benchmark, size, unroll))
        if args.check_races:
            status = max(status, _check_races(args.benchmark, size, unroll))
        return status

    if args.unroll == "auto":
        unrolls: tuple[int, ...] | str = "auto"
    elif args.unroll:
        unrolls = (args.unroll,)
    else:
        unrolls = (1, 2, 4, 8, 16, 32, 64)

    if args.sweep and args.platform == "dist":
        # On dist the interesting axis is node count, not kernels within
        # one node: one TFluxDist per rung, each at its own kernel max
        # (or the explicit --kernels, where it fits every rung).
        max_nodes = min(MAX_NODES, MAX_CORES // platform.node_machine.ncores)
        platforms = [
            TFluxDist(
                nnodes=n,
                costs=platform.costs,
                net=platform.net,
                topology=platform.topology,
                cluster_size=platform.cluster_size,
            )
            for n in _ladder(max_nodes, rungs=(1, 2, 4, 8))
        ]
        cells = [(f"nodes={p.nnodes:<2d} ", p, args.kernels or p.max_kernels)
                 for p in platforms]
    elif args.sweep:
        cells = [("", platform, nk) for nk in _ladder(platform.max_kernels)]
    else:
        cells = [("", platform, args.kernels or platform.max_kernels)]

    print(f"{args.benchmark.upper()} ({size}) on {platform.name}")
    requests = [
        EvalRequest(
            platform=p,
            bench=args.benchmark,
            size=size,
            nkernels=nk,
            unrolls=unrolls,
        )
        for _, p, nk in cells
    ]
    try:
        evaluations = evaluate_many(requests)
        for (label, _, _), ev in zip(cells, evaluations):
            print(f"  {label}{ev.row()}")
        if args.trace_out:
            _write_trace(args.trace_out, cells[0][1], args.benchmark, size,
                         evaluations[0])
        if args.check_native:
            _check_native(args.benchmark, size, evaluations[0])
        if args.profile:
            _profile(cells[0][1], args.benchmark, size, evaluations[0])
    except (ValueError, MemoryError) as exc:
        import sys

        print(f"tflux-run: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _check_deps(bench_name: str, size, unroll: int) -> int:
    """Diagnose the benchmark's declared graph against the derived one."""
    from repro.apps import get_benchmark
    from repro.core.deps import check_deps

    prog = get_benchmark(bench_name).build(size, unroll=unroll or 1)
    report = check_deps(prog)
    print(f"{bench_name} ({size}):")
    print(report.format())
    return 0 if report.ok else 1


def _check_races(bench_name: str, size, unroll: int) -> int:
    """Run once functionally under the dynamic race detector."""
    from repro.apps import get_benchmark
    from repro.check import run_checked

    prog = get_benchmark(bench_name).build(size, unroll=unroll or 1)
    report = run_checked(prog)
    print(f"{bench_name} ({size}):")
    print(report.format())
    return 0 if report.ok else 1


def _write_trace(path: str, platform, bench_name: str, size, evaluation) -> None:
    """Re-run the first evaluated cell at its best unroll with a
    collecting probe and export the timeline as Chrome-trace JSON."""
    from repro.apps import get_benchmark
    from repro.obs import Tracer, write_chrome_trace

    prog = get_benchmark(bench_name).build(size, unroll=evaluation.best_unroll)
    tracer = Tracer()
    platform.execute(prog, nkernels=evaluation.nkernels, tracer=tracer)
    write_chrome_trace(path, tracer)
    print(
        f"trace: {len(tracer.spans)} spans -> {path} "
        "(load in Perfetto or chrome://tracing)"
    )


def _profile(platform, bench_name: str, size, evaluation) -> None:
    """Engine-cost profile of the first evaluated cell: the same run with
    the DES fast path on and off, as an events/instance + sec/run table
    (scheduled events ≈ heap churn: every push pays a heapq rebalance)."""
    import time

    from repro.apps import get_benchmark
    from repro.sim.engine import ENV_FASTPATH

    bench = get_benchmark(bench_name)
    rows = []
    for fast in (True, False):
        old = os.environ.get(ENV_FASTPATH)
        os.environ[ENV_FASTPATH] = "1" if fast else "0"
        try:
            prog = bench.build(size, unroll=evaluation.best_unroll)
            start = time.perf_counter()
            result = platform.execute(prog, nkernels=evaluation.nkernels)
            seconds = time.perf_counter() - start
        finally:
            if old is None:
                del os.environ[ENV_FASTPATH]
            else:
                os.environ[ENV_FASTPATH] = old
        instances = max(result.total_dthreads, 1)
        rows.append(
            (
                "on" if fast else "off",
                result.cycles,
                result.counters["engine.events"],
                result.counters["engine.scheduled"],
                result.counters["engine.events"] / instances,
                seconds,
            )
        )
    print("profile (fast path on vs off, identical simulated schedule):")
    print(
        f"  {'fastpath':>8s} {'cycles':>12s} {'events':>10s} "
        f"{'scheduled':>10s} {'ev/inst':>8s} {'sec/run':>8s}"
    )
    for name, cycles, events, scheduled, per_inst, seconds in rows:
        print(
            f"  {name:>8s} {cycles:>12d} {events:>10d} "
            f"{scheduled:>10d} {per_inst:>8.1f} {seconds:>8.3f}"
        )
    if rows[0][1] != rows[1][1]:
        print("  WARNING: cycle counts differ — fast path is NOT neutral")


def _check_native(bench_name: str, size, evaluation) -> None:
    """Cross-backend functional check: run the first evaluated cell's
    program (fresh build — programs are single-run) on the OS-thread
    runtime and verify the benchmark's output."""
    from repro.apps import get_benchmark
    from repro.runtime.native import NativeRuntime

    bench = get_benchmark(bench_name)
    prog = bench.build(size, unroll=evaluation.best_unroll)
    nkernels = min(evaluation.nkernels, os.cpu_count() or 1)
    result = NativeRuntime(prog, nkernels=nkernels).run()
    bench.verify(result.env, size)
    print(
        f"native check: {result.total_dthreads} dthreads on "
        f"{nkernels} kernels in {result.wall_seconds:.3f}s — output verified"
    )


if __name__ == "__main__":
    raise SystemExit(main())
