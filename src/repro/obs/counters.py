"""The typed counter registry: one spine for all per-run accounting.

Every component that counts something — the TSU Group's scheduling
counters, each protocol adapter's traffic counters, the TUB's push/retry
statistics, the native runtime's emulator drain counters — publishes its
values into one :class:`Counters` registry at the end of a run, under a
dotted namespace (``tsu.fetches``, ``tub.retries``, ``dma.bytes_imported``).

Components keep plain integer attributes on their hot paths (a DES fetch
happens millions of times per sweep; attribute increments are the cheapest
Python offers) and implement ``publish_counters(counters)`` to dump them
into the registry once, when the run's :class:`~repro.obs.record.RunRecord`
is assembled.  That keeps the paper-critical timing loops untouched while
giving every platform the same reporting contract.

Counters are *typed* (integer-only, validated on the way in), *namespaced*
(dotted names; :meth:`Counters.scope` binds a prefix), and *mergeable*
(:meth:`Counters.merge` sums by name — the natural reduction for
aggregating repeated runs or multi-device adapters).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

__all__ = ["Counters", "CounterScope"]

_NAME_ERROR = (
    "counter names are non-empty dotted identifiers, e.g. 'tsu.fetches'"
)


def _check_name(name: str) -> None:
    if not isinstance(name, str) or not name:
        raise TypeError(_NAME_ERROR)
    for part in name.split("."):
        if not part.isidentifier():
            raise ValueError(f"bad counter name {name!r}: {_NAME_ERROR}")


def _check_value(name: str, value: object) -> int:
    # bool is an int subclass but a True/False count is always a bug.
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"counter {name!r} takes int values, got {type(value).__name__}"
        )
    return value


class Counters:
    """Named, namespaced, mergeable integer counters."""

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[str, int]] = None) -> None:
        self._values: dict[str, int] = {}
        if values:
            for name, value in values.items():
                self.inc(name, value)

    # -- writing ------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add *value* to counter *name* (creating it at zero)."""
        _check_name(name)
        self._values[name] = self._values.get(name, 0) + _check_value(name, value)

    def scope(self, prefix: str) -> "CounterScope":
        """A view that prefixes every name with ``prefix.``."""
        _check_name(prefix)
        return CounterScope(self, prefix)

    def merge(self, other: "Counters | Mapping[str, int]") -> "Counters":
        """Sum *other*'s counters into this registry; returns ``self``."""
        items = other.items() if isinstance(other, Counters) else other.items()
        for name, value in items:
            self.inc(name, value)
        return self

    # -- reading ------------------------------------------------------------
    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def get(self, name: str, default: int = 0) -> int:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> list[tuple[str, int]]:
        return sorted(self._values.items())

    def namespace(self, prefix: str) -> dict[str, int]:
        """All counters under ``prefix.``, with the prefix stripped."""
        _check_name(prefix)
        cut = len(prefix) + 1
        return {
            name[cut:]: value
            for name, value in sorted(self._values.items())
            if name.startswith(prefix + ".")
        }

    def as_dict(self) -> dict[str, int]:
        """A plain sorted ``{name: value}`` dict (JSON-ready)."""
        return dict(sorted(self._values.items()))

    # -- equality / debugging -----------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counters):
            return self._values == other._values
        if isinstance(other, dict):
            return self._values == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"

    # -- pickling (__slots__ classes need explicit state) ---------------------
    def __getstate__(self) -> dict[str, int]:
        return self._values

    def __setstate__(self, state: dict[str, int]) -> None:
        self._values = dict(state)


class CounterScope:
    """A :class:`Counters` view bound to a dotted namespace prefix."""

    __slots__ = ("_counters", "_prefix")

    def __init__(self, counters: Counters, prefix: str) -> None:
        self._counters = counters
        self._prefix = prefix

    def inc(self, name: str, value: int = 1) -> None:
        self._counters.inc(f"{self._prefix}.{name}", value)

    def scope(self, prefix: str) -> "CounterScope":
        return CounterScope(self._counters, f"{self._prefix}.{prefix}")

    def __repr__(self) -> str:
        return f"CounterScope({self._prefix!r})"
