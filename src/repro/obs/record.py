"""RunRecord: the schema-versioned, picklable telemetry payload of one run.

A :class:`~repro.runtime.stats.RunResult` is a *live* object — it carries
the program's mutated :class:`~repro.core.environment.Environment` so
callers can verify functional output.  A :class:`RunRecord` is what is
left once the run is over and only the *measurement* matters: identity,
cycle/wall totals, per-kernel stats, memory-system stats, the unified
counter registry, and any collected spans.  It is what crosses the
:mod:`repro.exec` pool/cache boundary (records are env-free by
construction, so nothing needs stripping) and what the analysis layer
consumes.

The record is **schema-versioned**: :data:`SCHEMA_VERSION` must be bumped
whenever the field set of the record (or of any type embedded in it)
changes.  ``tools/check_record_schema.py`` enforces this against a golden
fixture, and the exec cache refuses to return records whose version does
not match — a stale cache can never be deserialised silently.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.counters import Counters
from repro.obs.probe import Span
from repro.sim.cache import CacheStats
from repro.sim.cpu import CoreStats

__all__ = [
    "SCHEMA_VERSION",
    "KernelAccount",
    "KernelStats",
    "RunRecord",
    "record_schema",
    "verify_schema_fixture",
]

#: Bump whenever the field set of RunRecord or an embedded type changes.
#: v2: added ``nnodes`` (TFluxDist) alongside the ``net.*`` counter
#: namespace.
#: v3: added ``topology`` (the fabric wiring of a TFluxDist run)
#: alongside the per-hop congestion counters ``net.hops`` /
#: ``net.link_queue_cycles``.
SCHEMA_VERSION = 3


@dataclass
class KernelStats:
    """Per-kernel execution summary.

    ``core`` cycle fields hold simulated cycles on the simulated machines
    and microseconds of wall time on the native backend — one integer time
    axis either way.
    """

    kernel_id: int
    dthreads: int = 0
    fetches: int = 0
    waits: int = 0
    core: CoreStats = field(default_factory=CoreStats)


class KernelAccount:
    """The live per-kernel accounting object every backend charges into.

    One instance per kernel per run, shared between the backend (which
    charges compute/memory/runtime/idle time on its own axis — cycles or
    microseconds) and the Kernel step machine
    (:func:`repro.runtime.core.kernel_loop`, which counts fetches, waits
    and completed DThreads).  It replaces the three structs the backends
    used to keep in parallel (a mutable ``KernelStats``, the native
    backend's wall-clock ``_KernelClock``, and the simulated ``Core``
    accumulator); :meth:`snapshot` freezes it into the
    :class:`KernelStats` record that rides in the :class:`RunRecord`.

    Charge amounts may be fractional (the native backend charges µs
    floats); totals are truncated to int only at snapshot time, so
    many small charges are not individually rounded away.
    """

    __slots__ = (
        "kernel_id", "dthreads", "fetches", "waits",
        "compute", "memory", "runtime", "idle",
    )

    def __init__(self, kernel_id: int) -> None:
        self.kernel_id = kernel_id
        self.dthreads = 0
        self.fetches = 0
        self.waits = 0
        self.compute = 0.0
        self.memory = 0.0
        self.runtime = 0.0
        self.idle = 0.0

    # -- time charging (backend's axis: cycles or µs) -----------------------
    def charge_compute(self, amount: float) -> None:
        self.compute += amount

    def charge_memory(self, amount: float) -> None:
        self.memory += amount

    def charge_runtime(self, amount: float) -> None:
        self.runtime += amount

    def charge_idle(self, amount: float) -> None:
        self.idle += amount

    # -- freezing ------------------------------------------------------------
    def snapshot(self) -> KernelStats:
        """The immutable per-kernel record of this account."""
        return KernelStats(
            kernel_id=self.kernel_id,
            dthreads=self.dthreads,
            fetches=self.fetches,
            waits=self.waits,
            core=CoreStats(
                compute_cycles=int(self.compute),
                memory_cycles=int(self.memory),
                runtime_cycles=int(self.runtime),
                idle_cycles=int(self.idle),
                dthreads_executed=self.dthreads,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelAccount(k{self.kernel_id}: dthreads={self.dthreads}, "
            f"fetches={self.fetches}, waits={self.waits})"
        )


@dataclass
class RunRecord:
    """Everything measured about one run, and nothing functional."""

    program: str
    platform: str
    nkernels: int
    cycles: int
    #: Cycles of the parallelised region only (prologue/epilogue excluded)
    #: — what the paper measures with gettimeofday (§5).
    region_cycles: int
    #: Wall-clock seconds for native runs (0.0 for simulated runs).
    wall_seconds: float
    kernels: list[KernelStats]
    memory: Optional[CacheStats]
    #: The unified counter registry (tsu.*, tub.*, mmi.*, ppe.*, dma.*, ...).
    counters: Counters
    #: Spans collected by an attached probe (empty unless one was attached).
    spans: list[Span]
    #: Message-passing nodes of a TFluxDist run (1 on single-node platforms).
    nnodes: int = 1
    #: Fabric wiring of a TFluxDist run, e.g. ``"fullmesh"`` or
    #: ``"fattree(pod=8,up=8)"`` ("" on single-node platforms).
    topology: str = ""
    schema_version: int = SCHEMA_VERSION

    # -- the paper's derived quantities ------------------------------------
    @property
    def measured_cycles(self) -> int:
        """The §5 measured quantity: region cycles, else total cycles."""
        return self.region_cycles or self.cycles

    def speedup_over(self, sequential_cycles: int) -> float:
        """Paper-style speedup: sequential time / parallel time, over the
        parallelised region."""
        cyc = self.measured_cycles
        if cyc <= 0:
            raise ValueError("run has no cycle measurement")
        return sequential_cycles / cyc

    @property
    def total_dthreads(self) -> int:
        return sum(k.dthreads for k in self.kernels)

    def utilisation(self) -> float:
        """Mean fraction of kernel time spent busy (not waiting on TSU)."""
        if not self.kernels:
            return 0.0
        return sum(k.core.utilisation() for k in self.kernels) / len(self.kernels)

    def summary_line(self) -> str:
        return (
            f"{self.program:>8s} on {self.platform:<10s} "
            f"kernels={self.nkernels:<3d} cycles={self.cycles:>14,d} "
            f"util={self.utilisation():.2f}"
        )

    # -- JSON round trip ---------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """A plain-JSON form of the record (inverse: :meth:`from_json_dict`)."""
        return {
            "schema_version": self.schema_version,
            "program": self.program,
            "platform": self.platform,
            "nkernels": self.nkernels,
            "nnodes": self.nnodes,
            "topology": self.topology,
            "cycles": self.cycles,
            "region_cycles": self.region_cycles,
            "wall_seconds": self.wall_seconds,
            "kernels": [
                {
                    "kernel_id": k.kernel_id,
                    "dthreads": k.dthreads,
                    "fetches": k.fetches,
                    "waits": k.waits,
                    "core": dataclasses.asdict(k.core),
                }
                for k in self.kernels
            ],
            "memory": dataclasses.asdict(self.memory) if self.memory else None,
            "counters": self.counters.as_dict(),
            "spans": [dataclasses.asdict(s) for s in self.spans],
        }

    @classmethod
    def from_json_dict(cls, data: dict[str, Any]) -> "RunRecord":
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"RunRecord schema {version} != supported {SCHEMA_VERSION}"
            )
        return cls(
            program=data["program"],
            platform=data["platform"],
            nkernels=data["nkernels"],
            cycles=data["cycles"],
            region_cycles=data["region_cycles"],
            wall_seconds=data["wall_seconds"],
            kernels=[
                KernelStats(
                    kernel_id=k["kernel_id"],
                    dthreads=k["dthreads"],
                    fetches=k["fetches"],
                    waits=k["waits"],
                    core=CoreStats(**k["core"]),
                )
                for k in data["kernels"]
            ],
            memory=CacheStats(**data["memory"]) if data["memory"] else None,
            counters=Counters(data["counters"]),
            spans=[Span(**s) for s in data["spans"]],
            nnodes=data["nnodes"],
            topology=data["topology"],
            schema_version=version,
        )


# -- schema governance ---------------------------------------------------------
def record_schema() -> dict[str, list[str]]:
    """The record's complete field set: RunRecord plus every embedded type.

    This is what the golden fixture (``tests/data/run_record_schema.json``)
    pins; any change here without a :data:`SCHEMA_VERSION` bump fails
    ``tools/check_record_schema.py``.
    """
    return {
        cls.__name__: [f.name for f in dataclasses.fields(cls)]
        for cls in (RunRecord, KernelStats, CoreStats, CacheStats, Span)
    }


def verify_schema_fixture(fixture: dict[str, Any]) -> list[str]:
    """Compare the live schema against a golden *fixture* dict.

    Returns a list of human-readable problems (empty = consistent).  The
    rules: a changed field set requires a version bump, and a version bump
    requires regenerating the fixture — so the fixture diff and the bump
    always land in the same commit.
    """
    problems: list[str] = []
    golden_version = fixture.get("schema_version")
    golden_fields = fixture.get("fields", {})
    current = record_schema()
    fields_changed = golden_fields != current
    if fields_changed and golden_version == SCHEMA_VERSION:
        for name in sorted(set(golden_fields) | set(current)):
            if golden_fields.get(name) != current.get(name):
                problems.append(
                    f"{name} fields changed: {golden_fields.get(name)} -> "
                    f"{current.get(name)}"
                )
        problems.append(
            "RunRecord field set changed without a SCHEMA_VERSION bump: "
            f"bump repro.obs.record.SCHEMA_VERSION (still {SCHEMA_VERSION}) "
            "and regenerate the fixture with "
            "`python tools/check_record_schema.py --update`"
        )
    elif golden_version != SCHEMA_VERSION:
        problems.append(
            f"golden fixture pins schema {golden_version} but the code is at "
            f"{SCHEMA_VERSION}: regenerate the fixture with "
            "`python tools/check_record_schema.py --update`"
        )
    return problems
