"""repro.obs — the unified run-telemetry layer.

The paper's evaluation (§5–§6) is per-run accounting: kernel utilisation,
TSU traffic, TUB retries, DMA volume.  This package is the one spine all
of that flows through, on every backend:

* :mod:`repro.obs.counters` — the typed, namespaced, mergeable integer
  counter registry that the TSU Group, every protocol adapter, the TUB,
  and both runtimes publish into (``publish_counters(counters)``);
* :mod:`repro.obs.probe` — the probe/span protocol: simulated, native and
  sequential executions all emit per-DThread spans through one
  :class:`Probe` interface, with Chrome-trace and JSONL exporters and the
  in-memory collecting :class:`Tracer`;
* :mod:`repro.obs.record` — the schema-versioned, picklable
  :class:`RunRecord` (counters + spans + per-kernel/core/cache stats, no
  ``Environment``) that crosses the :mod:`repro.exec` pool/cache boundary
  and feeds the analysis layer.

See "Observability" in ``docs/simulation.md`` for the paper-quantity →
field map and a Perfetto how-to.
"""

from repro.obs.counters import Counters, CounterScope
from repro.obs.probe import (
    NULL_PROBE,
    Probe,
    Span,
    Tracer,
    check_no_overlap,
    render_gantt,
    spans_from_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.record import (
    SCHEMA_VERSION,
    KernelAccount,
    KernelStats,
    RunRecord,
    record_schema,
    verify_schema_fixture,
)

__all__ = [
    "Counters",
    "CounterScope",
    "NULL_PROBE",
    "Probe",
    "Span",
    "Tracer",
    "check_no_overlap",
    "render_gantt",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "SCHEMA_VERSION",
    "KernelAccount",
    "KernelStats",
    "RunRecord",
    "record_schema",
    "verify_schema_fixture",
]
