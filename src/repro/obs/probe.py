"""The probe/span protocol: one instrumentation interface for every backend.

A :class:`Probe` is the shared span-emission interface.  The simulated
runtime driver, the native (OS-thread) backend, and the sequential
baselines all call :meth:`Probe.record` for every scheduled unit they
execute; what happens to the span is the probe's business.  The base
class discards everything (so instrumentation is always *emitted* and
only *collected* on demand); :class:`Tracer` collects spans in memory and
offers the timeline queries the analysis layer and the examples use.

Time units are backend-defined: simulated backends record **cycles**,
the native backend records **microseconds** of wall time.  Both are
integers on one monotonically increasing axis per run, which is all the
invariants (no per-kernel overlap) and the exporters need.

Exporters: :func:`to_chrome_trace` / :func:`write_chrome_trace` produce
the Chrome ``chrome://tracing`` / Perfetto JSON format;
:func:`spans_to_jsonl` / :func:`spans_from_jsonl` give a line-oriented
round-trippable form for archiving spans next to run records.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Union

__all__ = [
    "Span",
    "Probe",
    "NULL_PROBE",
    "Tracer",
    "render_gantt",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_to_jsonl",
    "spans_from_jsonl",
]


@dataclass(frozen=True)
class Span:
    """One scheduled unit on one kernel."""

    kernel: int
    name: str
    kind: str  # "thread" | "inlet" | "outlet" | "section"
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


class Probe:
    """The span-emission interface; the base class is a no-op sink.

    Runtimes hold exactly one probe (:data:`NULL_PROBE` by default) and
    call :meth:`record` unconditionally — attaching a collecting probe is
    a caller decision, never a runtime code path.
    """

    def record(
        self, kernel: int, name: str, kind: str, start: float, end: float
    ) -> None:
        """Emit one span.  *start*/*end* are truncated to int by sinks."""

    @property
    def spans(self) -> list[Span]:
        """Collected spans (always empty for non-collecting probes)."""
        return []


#: The default sink: spans are emitted and discarded.
NULL_PROBE = Probe()


class Tracer(Probe):
    """A collecting probe: records every span and answers timeline queries."""

    def __init__(self, spans: Optional[list[Span]] = None) -> None:
        self._spans: list[Span] = list(spans) if spans else []

    def record(
        self, kernel: int, name: str, kind: str, start: float, end: float
    ) -> None:
        self._spans.append(Span(kernel, name, kind, int(start), int(end)))

    @property
    def spans(self) -> list[Span]:
        return self._spans

    # -- queries ------------------------------------------------------------
    def spans_of(self, kernel: int) -> list[Span]:
        return [s for s in self._spans if s.kernel == kernel]

    def busy_cycles(self, kernel: int) -> int:
        return sum(s.duration for s in self.spans_of(kernel))

    def makespan(self) -> int:
        if not self._spans:
            return 0
        return max(s.end for s in self._spans) - min(s.start for s in self._spans)

    def critical_kernel(self) -> Optional[int]:
        kernels = {s.kernel for s in self._spans}
        if not kernels:
            return None
        return max(kernels, key=self.busy_cycles)

    def check_no_overlap(self) -> None:
        """A kernel executes one DThread at a time — spans must not
        overlap within a kernel (a key runtime invariant)."""
        check_no_overlap(self._spans)


def check_no_overlap(spans: Iterable[Span]) -> None:
    """Assert per-kernel span disjointness for any span collection."""
    spans = list(spans)
    for kernel in {s.kernel for s in spans}:
        own = sorted((s for s in spans if s.kernel == kernel), key=lambda s: s.start)
        for a, b in zip(own, own[1:]):
            assert a.end <= b.start, (
                f"kernel {kernel}: {a.name} [{a.start},{a.end}) overlaps "
                f"{b.name} [{b.start},{b.end})"
            )


SpanSource = Union[Probe, Iterable[Span]]


def _spans_of(source: SpanSource) -> list[Span]:
    return list(source.spans if isinstance(source, Probe) else source)


# -- Chrome trace export -------------------------------------------------------
def to_chrome_trace(source: SpanSource) -> dict:
    """Export spans in the Chrome ``chrome://tracing`` / Perfetto JSON
    format: one track per kernel, complete ('X') events, microsecond
    timestamps mapped 1:1 from the backend's time unit."""
    spans = _spans_of(source)
    events = [
        {
            "name": s.name,
            "cat": s.kind,
            "ph": "X",
            "ts": s.start,
            "dur": s.duration,
            "pid": 0,
            "tid": s.kernel,
        }
        for s in sorted(spans, key=lambda s: (s.kernel, s.start))
    ]
    events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": k,
            "args": {"name": f"kernel{k}"},
        }
        for k in sorted({s.kernel for s in spans})
    )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(path, source: SpanSource) -> None:
    """Write the Chrome-trace JSON for *source* to *path*."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(source), fh)


# -- JSONL round trip ---------------------------------------------------------
def spans_to_jsonl(source: SpanSource) -> str:
    """One JSON object per line, one line per span (order preserved)."""
    return "\n".join(json.dumps(asdict(s), sort_keys=True) for s in _spans_of(source))


def spans_from_jsonl(text: str) -> list[Span]:
    """Inverse of :func:`spans_to_jsonl`."""
    return [Span(**json.loads(line)) for line in text.splitlines() if line.strip()]


# -- ASCII rendering ----------------------------------------------------------
def render_gantt(source: SpanSource, width: int = 72) -> str:
    """ASCII Gantt chart: one row per kernel, time left to right.

    Thread spans print as ``#``, inlets as ``I``, outlets as ``O``; idle
    gaps as ``.``.
    """
    spans = _spans_of(source)
    if not spans:
        return "(no spans recorded)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    span_range = max(t1 - t0, 1)
    scale = width / span_range
    kernels = sorted({s.kernel for s in spans})
    lines = [f"time: {t0:,} .. {t1:,} cycles ({span_range:,} total)"]
    glyph = {"thread": "#", "inlet": "I", "outlet": "O"}
    for k in kernels:
        own = [s for s in spans if s.kernel == k]
        row = ["."] * width
        for s in own:
            lo = int((s.start - t0) * scale)
            hi = max(int((s.end - t0) * scale), lo + 1)
            for x in range(lo, min(hi, width)):
                row[x] = glyph.get(s.kind, "#")
        busy = sum(s.duration for s in own) / span_range
        lines.append(f"k{k:<3}|{''.join(row)}| {busy:5.1%}")
    return "\n".join(lines)
