"""Program instrumentation: swap DThread bodies for recording wrappers.

:func:`instrument` rewrites every template body of a program in place so
that, on any backend, the body executes against a
:class:`~repro.check.recording.CheckedEnvironment` while the rest of the
machinery (cost models, access summaries, schedulers) sees the program
unchanged.  The wrapper:

* attributes recorded ops to the current instance via **thread-local**
  state — the native backend runs bodies concurrently on OS threads, so
  a global "current instance" would misattribute;
* evaluates the declared ``accesses(env, ctx)`` summary against the
  *raw* environment right after the body returns — the same values, in
  the same order, the simulated driver evaluates them, so instrumented
  runs stay cycle-identical (the functional/timing split is preserved
  by construction: nothing on the timing path is wrapped);
* intercepts :class:`~repro.core.dynamic.Subflow` outcomes, recursively
  instrumenting the spawned templates and remembering which instance
  spawned which epoch (the spawn edges of the happens-before order).

Sequential prologue/epilogue sections run unrecorded: they execute
before/after the dataflow region and cannot race with anything.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

from repro.check.checker import CheckReport, InstanceRecord, analyze
from repro.check.recording import AccessSink, CheckedEnvironment
from repro.core.dynamic import Subflow
from repro.core.dthread import DThreadTemplate
from repro.core.graph import SynchronizationGraph
from repro.core.program import DDMProgram

__all__ = ["CheckSession", "instrument", "run_checked"]


class CheckSession(AccessSink):
    """Recording state for one instrumented program execution.

    Create via :func:`instrument`, execute the program once on any
    backend, then call :meth:`report`.
    """

    def __init__(self, program: DDMProgram) -> None:
        self.program = program
        self._records: List[InstanceRecord] = []
        self._spawns: List[Tuple[Subflow, InstanceRecord]] = []
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._checked_env = CheckedEnvironment(program.env, self)
        self._instrument_graph(program.graph)

    # -- AccessSink -----------------------------------------------------------
    def record(self, region: str, intervals: np.ndarray, is_write: bool) -> None:
        rec = getattr(self._tls, "rec", None)
        if rec is not None:
            rec.add(region, intervals, is_write)

    # -- instrumentation ------------------------------------------------------
    def _instrument_graph(self, graph: SynchronizationGraph) -> None:
        for tmpl in graph.templates:
            self._wrap_template(tmpl)

    def _wrap_template(self, tmpl: DThreadTemplate) -> None:
        orig = tmpl.body
        if orig is None or getattr(orig, "_check_wrapped", False):
            return
        session = self

        def body(env, ctx, _orig=orig, _tmpl=tmpl):
            rec = InstanceRecord(_tmpl, ctx)
            with session._lock:
                session._records.append(rec)
            prev = getattr(session._tls, "rec", None)
            session._tls.rec = rec
            try:
                out = _orig(session._checked_env, ctx)
            finally:
                session._tls.rec = prev
            # Declared summary, evaluated on the raw env right after the
            # body — the order the simulated driver uses.
            if _tmpl.accesses is not None:
                rec.declared = _tmpl.accesses(env, ctx)
            if isinstance(out, Subflow):
                with session._lock:
                    session._spawns.append((out, rec))
                session._instrument_graph(out.graph)
            return out

        body._check_wrapped = True
        tmpl.body = body

    # -- analysis -------------------------------------------------------------
    def report(self) -> CheckReport:
        """Analyse everything recorded so far."""
        epochs: List[Tuple[object, Optional[InstanceRecord]]] = [
            (self.program.expanded(), None)
        ]
        with self._lock:
            spawns = list(self._spawns)
            records = list(self._records)
        for sf, rec in spawns:
            epochs.append((sf.expand(), rec))
        return analyze(self.program.env, epochs, records)


def instrument(program: DDMProgram) -> CheckSession:
    """Instrument *program* in place for access recording.

    Returns the session; run the program once (any backend — its cycle
    counts are unchanged), then call :meth:`CheckSession.report`.
    """
    return CheckSession(program)


def run_checked(program: DDMProgram) -> CheckReport:
    """Instrument, run the functional oracle, and analyse.

    The standard frontend path (``tflux-run --check-races``): one
    sequential functional execution, no timing simulation.
    """
    session = instrument(program)
    program.run_sequential()
    return session.report()
