"""Access recording: instrumented Environment and array views.

The functional side of every backend runs DThread bodies against the
shared :class:`~repro.core.environment.Environment`.  For dynamic race
checking the body must instead see a :class:`CheckedEnvironment`, which
hands out :class:`RecordingArray` wrappers: every read and write through
them is logged as canonical byte intervals (the PR 8 region algebra,
:mod:`repro.core.regions`) attributed to the DThread instance currently
executing on the calling OS thread.

Two properties matter:

* **Exactness** — footprints are computed from the actual NumPy view
  geometry (pointer delta + shape/strides, with a fancy-index fallback
  through an index grid), never over-approximated, so the checker can
  hold observed footprints to the *declared* ``AccessSummary`` without
  false positives on the shipped apps.
* **Functional transparency** — wrappers delegate every operation to the
  raw backing array and return raw NumPy objects, so bodies compute
  bit-identical results; nothing here touches the timing layer at all.

Operations whose element selection the wrapper cannot see (reductions,
``copy``/``astype``, coercion via ``__array__``, opaque methods) are
conservatively recorded as whole-array reads; mutating methods
(``fill``, ``sort`` …) as whole-array read+write.  Scalars record at the
per-name offsets of :meth:`Environment.scalar_offset` inside the shared
``__scalars__`` region.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

import numpy as np

from repro.core.environment import _SCALAR_SLOT_BYTES, Environment
from repro.core.regions import EMPTY_INTERVALS, merge_intervals

__all__ = ["AccessSink", "RecordingArray", "CheckedEnvironment"]

#: Scalars region name (shared with Environment).
SCALARS_REGION = "__scalars__"

#: ndarray attributes that reveal no element values — forwarded without
#: recording anything.
_METADATA_ATTRS = frozenset(
    {
        "shape",
        "dtype",
        "ndim",
        "size",
        "nbytes",
        "itemsize",
        "strides",
        "flags",
        "base",
        "__len__",
    }
)

#: ndarray methods that mutate in place — recorded as a whole-array
#: read+write (their element selection is not visible to the wrapper).
_MUTATING_ATTRS = frozenset(
    {"fill", "sort", "partition", "put", "itemset", "setfield", "resize"}
)


class AccessSink:
    """Receiver for recorded operations.

    The instrumentation session provides one; it resolves the current
    DThread instance from thread-local state and appends the op.  A sink
    with no current instance swallows ops (accesses from outside any
    instrumented body: prologue/epilogue, verification code).
    """

    def record(self, region: str, intervals: np.ndarray, is_write: bool) -> None:
        raise NotImplementedError


def _strided_intervals(
    offset: int, shape: tuple, strides: tuple, itemsize: int
) -> np.ndarray:
    """Canonical byte intervals of a strided view at *offset* bytes.

    Contiguous (and overlapping) dimensions are absorbed into a single
    run; the remaining outer dimensions are enumerated and merged.
    """
    start = int(offset)
    dims: list[tuple[int, int]] = []
    for n, st in zip(shape, strides):
        n, st = int(n), int(st)
        if n == 0:
            return EMPTY_INTERVALS
        if n == 1 or st == 0:
            continue  # length-1 and broadcast dims revisit the same bytes
        if st < 0:
            start += st * (n - 1)
            st = -st
        dims.append((n, st))
    dims.sort(key=lambda d: d[1])
    run = itemsize
    outer: list[tuple[int, int]] = []
    for n, st in dims:
        if st <= run:
            run = st * (n - 1) + run
        else:
            outer.append((n, st))
    starts = np.zeros(1, dtype=np.int64)
    for n, st in outer:
        starts = (
            starts[:, None] + np.arange(n, dtype=np.int64)[None, :] * st
        ).ravel()
    iv = np.stack([start + starts, start + starts + run], axis=1)
    return merge_intervals(iv)


def _whole_intervals(arr: np.ndarray) -> np.ndarray:
    nbytes = max(int(arr.nbytes), 1)
    return np.array([[0, nbytes]], dtype=np.int64)


class RecordingArray:
    """Exact-footprint recording wrapper around one shared array.

    Indexing returns *raw* NumPy objects (views or copies) — recording
    covers the first touch through the Environment; subsequent local
    manipulation of the returned view is the body's private business
    until it writes back through the wrapper.
    """

    def __init__(self, base: np.ndarray, region: str, sink: AccessSink) -> None:
        self._base = base
        self._region = region
        self._sink = sink
        self._addr = base.__array_interface__["data"][0]
        # Lazily built map from C-order element position to byte offset,
        # for fancy/boolean indexing on non-trivial layouts.
        self._posgrid: Optional[np.ndarray] = None

    # -- footprint computation ------------------------------------------------
    def _index_intervals(self, index: Any) -> np.ndarray:
        """Byte intervals selected by *index*, exact for any index kind."""
        base = self._base
        try:
            out = base[index]
        except Exception:
            # Let the failing access re-raise from the real operation.
            return EMPTY_INTERVALS
        if isinstance(out, np.ndarray) and out.base is base:
            # Basic indexing: a strided view straight into the backing
            # array — the footprint is its exact geometry.
            off = out.__array_interface__["data"][0] - self._addr
            return _strided_intervals(off, out.shape, out.strides, out.itemsize)
        # Scalar result or fancy-index copy: recover element positions
        # through an index grid, then map positions to byte offsets.
        if self._posgrid is None:
            self._posgrid = np.arange(base.size, dtype=np.int64).reshape(base.shape)
        pos = np.asarray(self._posgrid[index]).ravel()
        if pos.size == 0:
            return EMPTY_INTERVALS
        idx = np.unravel_index(pos, base.shape)
        byte = np.zeros(pos.size, dtype=np.int64)
        for comp, st in zip(idx, base.strides):
            byte += comp.astype(np.int64) * int(st)
        return merge_intervals(
            np.stack([byte, byte + base.itemsize], axis=1)
        )

    def _record(self, intervals: np.ndarray, is_write: bool) -> None:
        if len(intervals):
            self._sink.record(self._region, intervals, is_write)

    def _record_whole(self, is_write: bool) -> None:
        self._record(_whole_intervals(self._base), is_write)

    # -- element access -------------------------------------------------------
    def __getitem__(self, index: Any) -> Any:
        self._record(self._index_intervals(index), is_write=False)
        return self._base[index]

    def __setitem__(self, index: Any, value: Any) -> None:
        self._record(self._index_intervals(index), is_write=True)
        self._base[index] = _unwrap(value)

    def __len__(self) -> int:
        return len(self._base)

    def __iter__(self) -> Iterator[Any]:
        self._record_whole(is_write=False)
        return iter(self._base)

    def __contains__(self, item: Any) -> bool:
        self._record_whole(is_write=False)
        return _unwrap(item) in self._base

    # -- NumPy interop --------------------------------------------------------
    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        # np.asarray / operator coercion: the whole array may be read.
        self._record_whole(is_write=False)
        out = self._base
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        if copy:
            out = out.copy()
        return out

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        """Route ufunc calls to the raw arrays, recording participation.

        Wrapped inputs count as whole-array reads; a wrapped ``out=``
        target as a whole-array write.
        """
        raw_inputs = []
        for x in inputs:
            if isinstance(x, RecordingArray):
                x._record_whole(is_write=False)
                raw_inputs.append(x._base)
            else:
                raw_inputs.append(x)
        out = kwargs.get("out")
        if out is not None:
            raw_out = []
            for x in out if isinstance(out, tuple) else (out,):
                if isinstance(x, RecordingArray):
                    x._record_whole(is_write=True)
                    raw_out.append(x._base)
                else:
                    raw_out.append(x)
            kwargs["out"] = tuple(raw_out)
        return getattr(ufunc, method)(*raw_inputs, **kwargs)

    # In-place operators mutate the backing array (never rebind to a raw
    # result, which would silently detach the shared variable).
    def __iadd__(self, other):
        return self._inplace(np.add, other)

    def __isub__(self, other):
        return self._inplace(np.subtract, other)

    def __imul__(self, other):
        return self._inplace(np.multiply, other)

    def __itruediv__(self, other):
        return self._inplace(np.true_divide, other)

    def _inplace(self, ufunc, other) -> "RecordingArray":
        self._record_whole(is_write=False)
        self._record_whole(is_write=True)
        ufunc(self._base, _unwrap(other), out=self._base)
        return self

    def __getattr__(self, name: str) -> Any:
        base = object.__getattribute__(self, "_base")
        if name in _METADATA_ATTRS:
            return getattr(base, name)
        if name in _MUTATING_ATTRS:
            self._record_whole(is_write=False)
            self._record_whole(is_write=True)
            return getattr(base, name)
        if name.startswith("__") and name.endswith("__"):
            # Unknown dunder probes (copy protocol, pickling, …) must not
            # silently resolve to the base array's implementation.
            raise AttributeError(name)
        # Reductions, copies, astype, tolist, … — element values escape,
        # element selection is invisible: a conservative whole read.
        self._record_whole(is_write=False)
        return getattr(base, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordingArray {self._region!r} {self._base.shape}>"


def _unwrap(value: Any) -> Any:
    return value._base if isinstance(value, RecordingArray) else value


class CheckedEnvironment:
    """Environment facade handing bodies recording array views.

    Mirrors the full :class:`Environment` surface DThread bodies use
    (``array``/``get``/``set``/item access/``region``/``names``); array
    results come back wrapped, scalar traffic is recorded at per-name
    byte offsets inside ``__scalars__``.  Allocation (``alloc``/
    ``adopt``) forwards unrecorded — creating a variable is graph
    construction, not shared-data traffic.
    """

    def __init__(self, env: Environment, sink: AccessSink) -> None:
        self._env = env
        self._sink = sink
        self._wrapped: dict[str, RecordingArray] = {}

    # -- plumbing -------------------------------------------------------------
    @property
    def raw(self) -> Environment:
        return self._env

    def _wrap(self, name: str) -> RecordingArray:
        arr = self._env._arrays[name]
        wrapped = self._wrapped.get(name)
        if wrapped is None or wrapped._base is not arr:
            wrapped = RecordingArray(arr, name, self._sink)
            self._wrapped[name] = wrapped
        return wrapped

    def _scalar_intervals(self, name: str) -> np.ndarray:
        off = self._env.scalar_offset(name)
        return np.array([[off, off + _SCALAR_SLOT_BYTES]], dtype=np.int64)

    def _record_scalar(self, name: str, is_write: bool) -> None:
        self._sink.record(SCALARS_REGION, self._scalar_intervals(name), is_write)

    # -- arrays ---------------------------------------------------------------
    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        return self._env.alloc(name, shape, dtype)

    def adopt(self, name: str, arr: np.ndarray) -> np.ndarray:
        return self._env.adopt(name, _unwrap(arr))

    def array(self, name: str) -> RecordingArray:
        return self._wrap(name)

    def region(self, name: str):
        return self._env.region(name)

    @property
    def regions(self):
        return self._env.regions

    # -- scalars --------------------------------------------------------------
    def set(self, name: str, value: Any) -> None:
        self._env.set(name, _unwrap(value))
        self._record_scalar(name, is_write=True)

    def get(self, name: str, default: Any = None) -> Any:
        if name in self._env._arrays:
            return self._wrap(name)
        self._record_scalar(name, is_write=False)
        return self._env.get(name, default)

    # -- mapping conveniences -------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        if name in self._env._arrays:
            return self._wrap(name)
        value = self._env[name]
        self._record_scalar(name, is_write=False)
        return value

    def __setitem__(self, name: str, value: Any) -> None:
        value = _unwrap(value)
        if isinstance(value, np.ndarray) and name in self._env._arrays:
            # Whole-array assignment into an existing shared array.
            self._sink.record(
                name, _whole_intervals(self._env._arrays[name]), is_write=True
            )
            self._env[name] = value
            return
        self._env[name] = value
        if name in self._env._arrays:
            return  # adopted a brand-new array: allocation, not traffic
        self._record_scalar(name, is_write=True)

    def __contains__(self, name: str) -> bool:
        return name in self._env

    def names(self):
        return self._env.names()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CheckedEnvironment {self._env!r}>"
