"""Race and footprint analysis over recorded accesses.

The dynamic half of DDM dependence checking (the static half is
:mod:`repro.core.deps`).  Input: one :class:`InstanceRecord` per DThread
instance that ran — its observed byte-interval footprint per region —
plus the expanded graph epochs the run actually executed (the root
graph and every spawned Subflow).  Output: a :class:`CheckReport` of

* **undeclared accesses** — observed footprint not covered by the
  instance's declared :class:`~repro.sim.accesses.AccessSummary` (only
  judged for templates that declare one; the shared scalars region is
  exempt, as scalars are priced as whole-region traffic); and
* **races** — conflicting observed intervals on two instances with no
  happens-before path.

Happens-before is the arc-induced order the TSU itself executes: every
decrement edge of every expanded epoch, plus a spawn edge from each
spawning instance to the entry fringe of its spawned epoch.  Squash
needs no special handling — an instance is only squashed once *all* its
live inputs die, and phantom decrements fire during the producing
instance's resolution, so every edge (through squashed nodes included)
is causally ordered.  Reachability over this DAG is the per-instance
vector clock, kept as packed uint64 bitsets exactly like the static
deriver's path check.

Candidate conflict pairs come from a last-writer/reader-set sweep over
coordinate-compressed segments (:class:`~repro.core.regions.SegmentSpace`)
in a topological linearisation of the happens-before DAG; coalescing is
sound by chain transitivity (if W1 → W2 → W3 on one segment and both
adjacent pairs are ordered, so is (W1, W3)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.context import Context
from repro.core.deps import _topo_order
from repro.core.dthread import DThreadTemplate
from repro.core.environment import Environment
from repro.core.graph import ExpandedGraph
from repro.core.regions import (
    EMPTY_INTERVALS,
    SegmentSpace,
    intervals_difference,
    merge_intervals,
    op_intervals,
)

__all__ = [
    "InstanceRecord",
    "Finding",
    "CheckReport",
    "RaceCheckError",
    "analyze",
]

SCALARS_REGION = "__scalars__"


class RaceCheckError(RuntimeError):
    """Raised when a gated run (``JobSpec.check``) has findings."""

    def __init__(self, report: "CheckReport") -> None:
        super().__init__(report.format())
        self.report = report


@dataclass
class InstanceRecord:
    """Observed footprint of one DThread instance."""

    template: DThreadTemplate
    ctx: Context
    reads: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    writes: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    #: Declared summary, evaluated right after the body (None = opaque).
    declared: Optional[object] = None
    ops: int = 0

    @property
    def name(self) -> str:
        return f"{self.template.name}[{self.ctx}]"

    def add(self, region: str, intervals: np.ndarray, is_write: bool) -> None:
        side = self.writes if is_write else self.reads
        side.setdefault(region, []).append(intervals)
        self.ops += 1

    def merged(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Per-region canonical (read, write) interval sets."""
        out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for region in set(self.reads) | set(self.writes):
            r = self.reads.get(region)
            w = self.writes.get(region)
            out[region] = (
                merge_intervals(np.concatenate(r)) if r else EMPTY_INTERVALS,
                merge_intervals(np.concatenate(w)) if w else EMPTY_INTERVALS,
            )
        return out


@dataclass(frozen=True)
class Finding:
    """One checker diagnosis (an undeclared access or a race)."""

    #: "undeclared" | "race"
    kind: str
    region: str
    #: Canonical byte intervals of the offending footprint.
    intervals: Tuple[Tuple[int, int], ...]
    #: Instance names involved: one for undeclared, two for races.
    instances: Tuple[str, ...]
    #: "read" / "write" for undeclared; "write/write" etc. for races.
    access: str
    #: Suggested reads(...)/writes(...) clause (DDMCPP syntax).
    suggestion: str

    def describe(self) -> str:
        spans = ", ".join(f"[{lo}:{hi})" for lo, hi in self.intervals)
        if self.kind == "undeclared":
            return (
                f"undeclared {self.access}: {self.instances[0]} touched "
                f"{self.region} bytes {spans} outside its declared access "
                f"summary — suggest {self.suggestion}"
            )
        hint = (
            f"add an arc between them or declare the footprint "
            f"(e.g. {self.suggestion}) and derive arcs"
            if self.suggestion
            else "add an arc ordering them"
        )
        return (
            f"race: {self.access} on {self.region} bytes {spans} between "
            f"{self.instances[0]} and {self.instances[1]} (no happens-before "
            f"path) — {hint}"
        )


@dataclass
class CheckReport:
    """Outcome of one checked run."""

    findings: List[Finding] = field(default_factory=list)
    instances_recorded: int = 0
    ops_recorded: int = 0
    #: Names of templates whose footprint was not judged against a
    #: declaration (they declare no accesses; races are still checked).
    opaque_templates: List[str] = field(default_factory=list)

    @property
    def undeclared(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "undeclared"]

    @property
    def races(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "race"]

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        lines: List[str] = []
        for f in self.findings:
            lines.append(f"error: {f.describe()}")
        if self.opaque_templates:
            lines.append(
                "note: no access declarations for "
                + ", ".join(self.opaque_templates)
                + " (footprints not judged; races still checked)"
            )
        if not self.findings:
            lines.append(
                f"check: clean ({self.instances_recorded} instances "
                f"recorded, {self.ops_recorded} ops; no undeclared "
                "accesses, no races)"
            )
        else:
            lines.append(
                f"check: {len(self.undeclared)} undeclared access(es), "
                f"{len(self.races)} race(s) across "
                f"{self.instances_recorded} recorded instance(s)"
            )
        return "\n".join(lines)

    def publish(self, counters) -> None:
        """Merge ``check.*`` metrics into a :class:`repro.obs` Counters."""
        counters.inc("check.runs")
        counters.inc("check.instances_recorded", self.instances_recorded)
        counters.inc("check.ops_recorded", self.ops_recorded)
        counters.inc("check.findings_undeclared", len(self.undeclared))
        counters.inc("check.findings_race", len(self.races))


# -- helpers --------------------------------------------------------------------
def _intervals_intersection(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return intervals_difference(a, intervals_difference(a, b))


def _as_tuples(iv: np.ndarray) -> Tuple[Tuple[int, int], ...]:
    return tuple((int(lo), int(hi)) for lo, hi in iv)


def _clause(
    verb: str, region: str, iv: np.ndarray, env: Environment
) -> str:
    """DDMCPP-syntax access clause covering *iv* on *region*."""
    arrays = env._arrays
    if region not in arrays:
        return f"{verb}({region})"
    arr = arrays[region]
    itemsize = int(arr.itemsize)
    lo = int(iv[0, 0]) // itemsize
    hi = -(-int(iv[-1, 1]) // itemsize)
    if lo == 0 and hi * itemsize >= int(arr.nbytes):
        return f"{verb}({region})"
    return f"{verb}({region}[{lo} .. {hi}])"


def _declared_intervals(declared) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Per-region (reads, writes) canonical intervals of one summary."""
    by_region: Dict[str, Tuple[List[np.ndarray], List[np.ndarray]]] = {}
    for op in declared:
        slot = by_region.setdefault(op.region.name, ([], []))
        slot[1 if op.is_write else 0].append(op_intervals(op))
    out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for region, (r, w) in by_region.items():
        out[region] = (
            merge_intervals(np.concatenate(r)) if r else EMPTY_INTERVALS,
            merge_intervals(np.concatenate(w)) if w else EMPTY_INTERVALS,
        )
    return out


def _scalar_names_by_offset(env: Environment) -> Dict[int, str]:
    return {off: name for name, off in env._scalar_offsets.items()}


def _region_label(region: str, iv: np.ndarray, env: Environment) -> str:
    """Human-readable region name (scalar slots resolve to their name)."""
    if region != SCALARS_REGION or len(iv) == 0:
        return region
    names = _scalar_names_by_offset(env)
    name = names.get(int(iv[0, 0]))
    return f"scalar {name!r}" if name else region


# -- the analysis ---------------------------------------------------------------
def analyze(
    env: Environment,
    epochs: Sequence[Tuple[ExpandedGraph, Optional[InstanceRecord]]],
    records: Sequence[InstanceRecord],
) -> CheckReport:
    """Judge recorded footprints against declarations and happens-before.

    *epochs* lists every expanded graph the run executed, each paired
    with the record of the instance that spawned it (``None`` for the
    root).  *records* is every instance that actually ran.
    """
    report = CheckReport(
        instances_recorded=len(records),
        ops_recorded=sum(rec.ops for rec in records),
    )

    # -- global instance ids + happens-before edges --------------------------
    gids: Dict[Tuple[int, Context], int] = {}
    consumers: List[List[int]] = []
    names: List[str] = []
    spawn_edges: List[Tuple[InstanceRecord, int]] = []  # resolved below
    for expanded, spawner in epochs:
        offset = len(consumers)
        for inst in expanded.instances:
            gids[(id(inst.template), inst.ctx)] = offset + inst.iid
            names.append(inst.name)
        for outs in expanded.consumers:
            consumers.append([offset + v for v in outs])
        if spawner is not None:
            for iid in expanded.entry:
                spawn_edges.append((spawner, offset + iid))

    n = len(consumers)
    for spawner, dst in spawn_edges:
        src = gids.get((id(spawner.template), spawner.ctx))
        if src is None:  # pragma: no cover - internal invariant
            raise RuntimeError(f"spawner {spawner.name} not in any epoch")
        consumers[src].append(dst)

    rec_gid: Dict[int, InstanceRecord] = {}
    for rec in records:
        gid = gids.get((id(rec.template), rec.ctx))
        if gid is None:  # pragma: no cover - internal invariant
            raise RuntimeError(
                f"recorded instance {rec.name} not in any expanded epoch"
            )
        rec_gid[gid] = rec

    # -- reachability: packed-bitset vector clocks ---------------------------
    order = _topo_order(consumers, n)
    words = (n + 63) // 64
    reach = np.zeros((n, words), dtype=np.uint64)
    bit_word = np.arange(n) >> 6
    bit_mask = np.uint64(1) << (np.arange(n, dtype=np.uint64) & np.uint64(63))
    for u in reversed(order):
        row = reach[u]
        for v in consumers[u]:
            row |= reach[v]
            row[bit_word[v]] |= bit_mask[v]

    def ordered(a: int, b: int) -> bool:
        return bool(reach[a, bit_word[b]] & bit_mask[b])

    # -- undeclared/out-of-bounds accesses -----------------------------------
    opaque: set = set()
    footprints: Dict[int, Dict[str, Tuple[np.ndarray, np.ndarray]]] = {}
    for gid, rec in rec_gid.items():
        fp = rec.merged()
        footprints[gid] = fp
        if rec.declared is None:
            if rec.template.accesses is None:
                opaque.add(rec.template.name)
            continue
        decl = _declared_intervals(rec.declared)
        for region, (obs_r, obs_w) in fp.items():
            if region == SCALARS_REGION:
                continue  # scalars are priced whole-region; not judged
            decl_r, decl_w = decl.get(region, (EMPTY_INTERVALS, EMPTY_INTERVALS))
            decl_all = merge_intervals(np.concatenate([decl_r, decl_w]))
            extra_w = intervals_difference(obs_w, decl_w)
            if len(extra_w):
                report.findings.append(
                    Finding(
                        kind="undeclared",
                        region=region,
                        intervals=_as_tuples(extra_w),
                        instances=(rec.name,),
                        access="write",
                        suggestion=_clause("writes", region, extra_w, env),
                    )
                )
            extra_r = intervals_difference(obs_r, decl_all)
            if len(extra_r):
                report.findings.append(
                    Finding(
                        kind="undeclared",
                        region=region,
                        intervals=_as_tuples(extra_r),
                        instances=(rec.name,),
                        access="read",
                        suggestion=_clause("reads", region, extra_r, env),
                    )
                )
    report.opaque_templates = sorted(opaque)

    # -- races ----------------------------------------------------------------
    position = {gid: i for i, gid in enumerate(order)}
    by_region: Dict[str, List[int]] = {}
    for gid, fp in footprints.items():
        for region in fp:
            by_region.setdefault(region, []).append(gid)

    candidates: set = set()
    for region, touching in by_region.items():
        if len(touching) < 2:
            continue
        touching.sort(key=position.__getitem__)
        space = SegmentSpace.from_intervals(
            iv
            for gid in touching
            for iv in footprints[gid][region]
        )
        nseg = space.nsegments
        if nseg == 0:
            continue
        last_writer = np.full(nseg, -1, dtype=np.int64)
        reader_id = np.zeros(nseg, dtype=np.int64)
        reader_sets: List[frozenset] = [frozenset()]
        union_memo: Dict[Tuple[int, int], int] = {}
        for gid in touching:
            obs_r, obs_w = footprints[gid][region]
            rmask = space.mask(obs_r)
            wmask = space.mask(obs_w)
            for prior in np.unique(last_writer[rmask | wmask]):
                if prior >= 0 and prior != gid:
                    candidates.add((int(prior), gid, region))
            if wmask.any():
                for rid in np.unique(reader_id[wmask]):
                    for reader in reader_sets[rid]:
                        if reader != gid:
                            candidates.add((reader, gid, region))
                last_writer[wmask] = gid
                reader_id[wmask] = 0
            radd = rmask & ~wmask
            if radd.any():
                for rid in np.unique(reader_id[radd]):
                    key = (int(rid), gid)
                    new_rid = union_memo.get(key)
                    if new_rid is None:
                        new_rid = len(reader_sets)
                        reader_sets.append(reader_sets[rid] | {gid})
                        union_memo[key] = new_rid
                    reader_id[radd & (reader_id == rid)] = new_rid

    for a, b, region in sorted(
        candidates, key=lambda c: (position[c[0]], position[c[1]], c[2])
    ):
        if ordered(a, b):
            continue
        ar, aw = footprints[a][region]
        br, bw = footprints[b][region]
        a_all = merge_intervals(np.concatenate([ar, aw]))
        b_all = merge_intervals(np.concatenate([br, bw]))
        conflict = merge_intervals(
            np.concatenate(
                [
                    _intervals_intersection(aw, b_all),
                    _intervals_intersection(a_all, bw),
                ]
            )
        )
        if not len(conflict):  # pragma: no cover - sweep only yields conflicts
            continue
        ww = len(_intervals_intersection(aw, bw)) > 0
        wr = len(_intervals_intersection(aw, br)) > 0
        rw = len(_intervals_intersection(ar, bw)) > 0
        kinds = [k for k, hit in (("write/write", ww), ("write/read", wr), ("read/write", rw)) if hit]
        report.findings.append(
            Finding(
                kind="race",
                region=_region_label(region, conflict, env),
                intervals=_as_tuples(conflict),
                instances=(rec_gid[a].name, rec_gid[b].name),
                access=", ".join(kinds),
                suggestion=(
                    ""
                    if region == SCALARS_REGION
                    else _clause(
                        "writes" if ww or wr else "reads", region, conflict, env
                    )
                ),
            )
        )

    return report
