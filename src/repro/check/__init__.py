"""Dynamic DDM race detection (the dynamic half of dependence checking).

PR 8's :func:`repro.core.deps.check_deps` judges *declared* access
summaries statically; this package verifies the declarations themselves
and the ordering of what bodies *actually* touch:

* :mod:`repro.check.recording` — instrumented Environment/array views
  logging exact byte-interval footprints per DThread instance;
* :mod:`repro.check.checker` — happens-before (vector-clock) analysis
  over the executed graph epochs: undeclared accesses and true races;
* :mod:`repro.check.instrument` — in-place program instrumentation that
  works on every backend without perturbing cycle counts.

Frontends: ``tflux-run --check-races``, ``ddmcpp --check-races``, and
``JobSpec(check="races")`` for gated :func:`repro.exec.run_job` /
``tflux-serve`` admission.
"""

from repro.check.checker import (
    CheckReport,
    Finding,
    InstanceRecord,
    RaceCheckError,
    analyze,
)
from repro.check.instrument import CheckSession, instrument, run_checked
from repro.check.recording import CheckedEnvironment, RecordingArray

__all__ = [
    "CheckReport",
    "Finding",
    "InstanceRecord",
    "RaceCheckError",
    "analyze",
    "CheckSession",
    "instrument",
    "run_checked",
    "CheckedEnvironment",
    "RecordingArray",
]
