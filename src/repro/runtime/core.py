"""The Kernel step machine: one DDM Kernel loop for every backend.

The paper's central claim is portability — *one* runtime semantics
re-hosted on TFluxHard, TFluxSoft and TFluxCell (§3.1, Figure 2).  This
module is that claim at the runtime layer: :func:`kernel_loop` is the
single implementation of the Kernel protocol — dispatch on
:class:`~repro.tsu.group.FetchKind`, body execution, completion
notification, span and counter emission — and every backend (the DES
driver in :mod:`repro.runtime.simdriver`, the OS-thread backend in
:mod:`repro.runtime.native`, the sequential baseline) supplies only the
three things that genuinely differ, through the :class:`KernelBackend`
protocol:

* a **time source** (`now`) — simulated cycles, ``perf_counter``
  microseconds, or a manual cycle accumulator;
* a **blocking/wake strategy** (`wait`) — a DES event with the
  lost-wakeup guard, a condition-variable wait, or nothing at all;
* **cost charging** (`charge_runtime`, plus whatever `run_thread`
  charges) — adapter/memory-system cycles, wall-clock deltas, or
  section cost models.

The loop is a generator so the DES engine can drive it directly: every
`yield` a backend step performs propagates to the engine (`yield from`).
Blocking backends implement their steps as plain methods wrapped with
:func:`blocking_step` — zero-yield generators — and drive the loop to
completion with :func:`run_kernel_blocking` on an OS thread.

The wake discipline (the one place it is documented)
----------------------------------------------------

A kernel that receives ``WAIT`` must not sleep past a wakeup that fired
between *reading* the TSU state and *parking*.  The discipline, shared
by every backend:

1. the fetch that returned ``WAIT`` is already accounted
   (``account.waits``) — waiting is observed at fetch time, not at
   park time;
2. before parking, `wait` re-checks ``TSUGroup.has_work(kernel)``
   *atomically with respect to wakeups*: the DES backend re-checks on
   the engine's cooperative timeline (no wakeup can interleave between
   the check and the event registration), the native backend re-checks
   under the same mutex that every ``notify_all`` holds;
3. if work appeared, `wait` returns immediately and the loop re-fetches;
   otherwise it parks on the backend's wake primitive (DES ``Event``,
   ``threading.Condition``) and charges the parked time as idle;
4. *every* TSU transition that can create work (inlet/outlet completion,
   post-processing that readies consumers) notifies under the same
   atomicity domain — ``ProtocolAdapter.wake_kernels`` on the DES,
   ``Condition.notify_all`` on the native backend.

Spurious wakeups are benign by construction: the loop always re-fetches
after `wait` returns, and the TSU answers ``WAIT`` again if nothing is
actually ready.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Callable, Generator, Protocol

from repro.tsu.group import Fetch, FetchKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import KernelAccount

__all__ = [
    "KernelBackend",
    "StepGenerator",
    "blocking_step",
    "kernel_loop",
    "run_kernel_blocking",
]

#: A backend step: a generator whose yields (if any) belong to the
#: backend's scheduler (the DES engine); its ``return`` value is the
#: step's result.  Blocking backends produce zero-yield generators via
#: :func:`blocking_step`.
StepGenerator = Generator[Any, Any, Any]


class KernelBackend(Protocol):
    """What a runtime backend supplies to :func:`kernel_loop`.

    Every step method is a generator (see :data:`StepGenerator`); the
    step machine delegates with ``yield from`` so DES backends can
    suspend inside any step.  Blocking backends wrap plain methods with
    :func:`blocking_step`.
    """

    #: Checked at the top of every loop iteration; ``True`` makes the
    #: kernel leave its loop (cooperative shutdown after a peer failed).
    stop_requested: bool

    def now(self, kernel: int) -> float:
        """Current time on this backend's axis (cycles or µs)."""
        ...

    def fetch(self, kernel: int) -> StepGenerator:
        """Ask the TSU for the next unit of work; returns a Fetch."""
        ...

    def wait(self, kernel: int) -> StepGenerator:
        """Park until work may be available (see the wake discipline
        in the module docstring); charges parked time as idle."""
        ...

    def run_inlet(self, kernel: int, fetch: Fetch) -> StepGenerator:
        """Execute the block's Inlet (TSU metadata load)."""
        ...

    def run_outlet(self, kernel: int, fetch: Fetch) -> StepGenerator:
        """Execute the block's Outlet (SM clear / block sequencing)."""
        ...

    def run_thread(self, kernel: int, fetch: Fetch) -> StepGenerator:
        """Run the DThread body against the Environment and charge its
        compute/memory cost on this backend's axis."""
        ...

    def resolve_dynamic(self, kernel: int, fetch: Fetch) -> StepGenerator:
        """Hand the completed DThread's outcome (branch key or spawned
        Subflow) to the TSU ahead of the completion notification, and
        charge whatever shipping it costs on this platform (TUB push,
        posted command stores).  Static threads return ``None`` and this
        step must cost nothing — static programs execute bit-identically
        to a build without the hook."""
        ...

    def notify_completion(self, kernel: int, fetch: Fetch) -> StepGenerator:
        """Tell the TSU the DThread finished (Post-Processing Phase
        entry point: posted command, TUB push, or direct call)."""
        ...

    def charge_runtime(self, kernel: int, since: float) -> None:
        """Charge ``now - since`` as runtime (Kernel loop / TSU
        protocol) time to *kernel*."""
        ...

    def emit_span(
        self, kernel: int, name: str, kind: str, start: float, end: float
    ) -> None:
        """Emit one probe span for a scheduled unit."""
        ...


def blocking_step(fn: Callable) -> Callable:
    """Adapt a plain (possibly blocking) method into a zero-yield step.

    The wrapped callable runs synchronously when the step machine
    delegates to it with ``yield from`` — it never yields, so
    :func:`run_kernel_blocking` can drive the loop on an OS thread.
    Blocking primitives (mutexes, condition waits) are fine inside;
    they block the hosting thread, which is exactly the point.
    """

    @functools.wraps(fn)
    def step(*args: Any, **kwargs: Any) -> StepGenerator:
        return fn(*args, **kwargs)
        yield  # pragma: no cover — unreachable; marks this as a generator

    return step


def kernel_loop(
    backend: KernelBackend, kernel: int, account: "KernelAccount"
) -> StepGenerator:
    """The DDM Kernel loop of Figure 2, over one :class:`KernelBackend`.

    One iteration = one TSU round trip: fetch, dispatch on the reply's
    :class:`~repro.tsu.group.FetchKind`, and loop.  Accounting rules
    (identical on every backend, asserted by the cross-backend
    differential suite):

    * ``account.fetches`` — exactly one per TSU fetch, WAIT replies
      included;
    * ``account.waits`` — exactly one per WAIT reply (whether or not
      the backend actually parks);
    * ``account.dthreads`` — one per application DThread, counted after
      its completion notification;
    * runtime time covers fetches and completions, idle time covers
      parked waits, compute/memory time covers DThread bodies —
    * spans: one per Inlet/Outlet/DThread; a DThread's span runs from
      body start through its completion notification.
    """
    while True:
        if backend.stop_requested:
            return
        t0 = backend.now(kernel)
        fetch = yield from backend.fetch(kernel)
        backend.charge_runtime(kernel, t0)
        account.fetches += 1
        kind = fetch.kind

        if kind is FetchKind.EXIT:
            return

        if kind is FetchKind.WAIT:
            account.waits += 1
            yield from backend.wait(kernel)
            continue

        if kind is FetchKind.INLET:
            t0 = backend.now(kernel)
            yield from backend.run_inlet(kernel, fetch)
            backend.charge_runtime(kernel, t0)
            backend.emit_span(
                kernel, fetch.instance.name, "inlet", t0, backend.now(kernel)
            )
            continue

        if kind is FetchKind.OUTLET:
            t0 = backend.now(kernel)
            yield from backend.run_outlet(kernel, fetch)
            backend.charge_runtime(kernel, t0)
            backend.emit_span(
                kernel, fetch.instance.name, "outlet", t0, backend.now(kernel)
            )
            continue

        # FetchKind.THREAD — the application DThread path.  Dynamic
        # outcomes (branch keys, spawned subflows) ship in the
        # resolve_dynamic step, sharing the completion's runtime
        # bracket; for static threads it is a zero-cost no-op and the
        # bracket is exactly the pre-dynamic one.
        inst = fetch.instance
        assert inst is not None, "THREAD fetch carries no instance"
        t_thread = backend.now(kernel)
        yield from backend.run_thread(kernel, fetch)
        t0 = backend.now(kernel)
        yield from backend.resolve_dynamic(kernel, fetch)
        yield from backend.notify_completion(kernel, fetch)
        backend.charge_runtime(kernel, t0)
        account.dthreads += 1
        backend.emit_span(
            kernel, inst.name, "thread", t_thread, backend.now(kernel)
        )


def run_kernel_blocking(
    backend: KernelBackend, kernel: int, account: "KernelAccount"
) -> None:
    """Drive :func:`kernel_loop` to completion on the calling thread.

    For backends whose steps never yield (everything made with
    :func:`blocking_step`); a step that does yield is a contract
    violation and raises immediately rather than silently dropping the
    yielded value.
    """
    for leaked in kernel_loop(backend, kernel, account):
        raise RuntimeError(
            f"blocking backend {type(backend).__name__} yielded {leaked!r}; "
            "blocking backends must wrap steps with @blocking_step"
        )
