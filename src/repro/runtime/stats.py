"""Run statistics and results shared by all runtime backends.

:class:`RunResult` is the *live* outcome of one execution: it still holds
the program's mutated :class:`~repro.core.environment.Environment` so the
caller can verify functional output.  All accounting rides in two typed
containers from :mod:`repro.obs` — the :class:`~repro.obs.Counters`
registry every component publishes into and the span list an attached
probe collected.  :meth:`RunResult.to_record` converts to the picklable,
env-free :class:`~repro.obs.RunRecord` that crosses process and cache
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.environment import Environment
from repro.obs import Counters, KernelStats, RunRecord, Span
from repro.sim.cache import CacheStats

__all__ = ["KernelStats", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one program execution on one platform."""

    program: str
    platform: str
    nkernels: int
    cycles: int
    env: Environment
    #: Cycles of the parallelised region only (prologue/epilogue excluded)
    #: — what the paper measures with gettimeofday (§5).  Equal to
    #: ``cycles`` when the program has no sequential sections.
    region_cycles: int = 0
    kernels: list[KernelStats] = field(default_factory=list)
    memory: Optional[CacheStats] = None
    #: The unified counter registry (``tsu.*``, ``tub.*``, ``mmi.*``, ...)
    #: published by the TSU Group, the protocol adapter and the runtime.
    counters: Counters = field(default_factory=Counters)
    #: Spans collected by the attached probe (empty without a tracer).
    spans: list[Span] = field(default_factory=list)
    #: Wall-clock seconds for native runs (cycles is 0 there unless set).
    wall_seconds: float = 0.0
    #: Message-passing nodes of a TFluxDist run (1 everywhere else).
    nnodes: int = 1
    #: Fabric wiring of a TFluxDist run ("" everywhere else).
    topology: str = ""

    def to_record(self) -> RunRecord:
        """The env-free, schema-versioned telemetry payload of this run."""
        return RunRecord(
            program=self.program,
            platform=self.platform,
            nkernels=self.nkernels,
            cycles=self.cycles,
            region_cycles=self.region_cycles,
            wall_seconds=self.wall_seconds,
            kernels=self.kernels,
            memory=self.memory,
            counters=self.counters,
            spans=self.spans,
            nnodes=self.nnodes,
            topology=self.topology,
        )

    def speedup_over(self, sequential_cycles: int) -> float:
        """Paper-style speedup: sequential time / parallel time, over the
        parallelised region."""
        cyc = self.region_cycles or self.cycles
        if cyc <= 0:
            raise ValueError("run has no cycle measurement")
        return sequential_cycles / cyc

    @property
    def total_dthreads(self) -> int:
        return sum(k.dthreads for k in self.kernels)

    def utilisation(self) -> float:
        """Mean fraction of kernel time spent busy (not waiting on TSU)."""
        if not self.kernels:
            return 0.0
        return sum(k.core.utilisation() for k in self.kernels) / len(self.kernels)

    def summary_line(self) -> str:
        return (
            f"{self.program:>8s} on {self.platform:<10s} "
            f"kernels={self.nkernels:<3d} cycles={self.cycles:>14,d} "
            f"util={self.utilisation():.2f}"
        )
