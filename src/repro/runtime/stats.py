"""Run statistics and results shared by all runtime backends."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.environment import Environment
from repro.sim.cache import CacheStats
from repro.sim.cpu import CoreStats

__all__ = ["KernelStats", "RunResult"]


@dataclass
class KernelStats:
    """Per-kernel execution summary."""

    kernel_id: int
    dthreads: int = 0
    fetches: int = 0
    waits: int = 0
    core: CoreStats = field(default_factory=CoreStats)


@dataclass
class RunResult:
    """Outcome of one program execution on one platform."""

    program: str
    platform: str
    nkernels: int
    cycles: int
    env: Environment
    #: Cycles of the parallelised region only (prologue/epilogue excluded)
    #: — what the paper measures with gettimeofday (§5).  Equal to
    #: ``cycles`` when the program has no sequential sections.
    region_cycles: int = 0
    kernels: list[KernelStats] = field(default_factory=list)
    memory: Optional[CacheStats] = None
    tsu_stats: dict[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds for native runs (cycles is 0 there unless set).
    wall_seconds: float = 0.0

    def speedup_over(self, sequential_cycles: int) -> float:
        """Paper-style speedup: sequential time / parallel time, over the
        parallelised region."""
        cyc = self.region_cycles or self.cycles
        if cyc <= 0:
            raise ValueError("run has no cycle measurement")
        return sequential_cycles / cyc

    @property
    def total_dthreads(self) -> int:
        return sum(k.dthreads for k in self.kernels)

    def utilisation(self) -> float:
        """Mean fraction of kernel time spent busy (not waiting on TSU)."""
        if not self.kernels:
            return 0.0
        return sum(k.core.utilisation() for k in self.kernels) / len(self.kernels)

    def summary_line(self) -> str:
        return (
            f"{self.program:>8s} on {self.platform:<10s} "
            f"kernels={self.nkernels:<3d} cycles={self.cycles:>14,d} "
            f"util={self.utilisation():.2f}"
        )
