"""The Kernel loop on the simulated machines.

Implements Figure 2 of the paper as DES processes: each Kernel repeatedly
asks the TSU (through the platform's protocol adapter) for work and either
runs the block's Inlet, an application DThread (charging its compute
cycles plus the memory system's verdict on its access summary), the
Outlet, or waits.  The first Kernel additionally executes the program's
sequential prologue before the dataflow region opens and the epilogue
after every Kernel exited.

:func:`run_sequential_timed` produces the baseline measurement: the whole
program on one core of the same machine with no TFlux overheads, exactly
the paper's §5 baseline definition.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional

from repro.core.dthread import ThreadKind
from repro.core.program import DDMProgram
from repro.obs import NULL_PROBE, Counters, Probe
from repro.runtime.stats import KernelStats, RunResult
from repro.sim.cpu import Core
from repro.sim.memory import MainMemory
from repro.sim.engine import Engine, Event
from repro.sim.machine import MachineConfig
from repro.tsu.base import ProtocolAdapter, ZeroOverheadAdapter
from repro.tsu.group import FetchKind, TSUGroup
from repro.tsu.policy import PlacementPolicy, contiguous_placement

__all__ = ["SimulatedRuntime", "run_sequential_timed"]

#: Builds the platform's adapter: (engine, tsu) -> ProtocolAdapter.
AdapterFactory = Callable[[Engine, TSUGroup], ProtocolAdapter]


class SimulatedRuntime:
    """Timed execution of a DDM program on a simulated machine."""

    def __init__(
        self,
        program: DDMProgram,
        machine: MachineConfig,
        nkernels: int,
        adapter_factory: Optional[AdapterFactory] = None,
        tsu_capacity: Optional[int] = None,
        placement: PlacementPolicy = contiguous_placement,
        exact_memory: bool = False,
        platform_name: str = "sim",
        tracer=None,
        allow_stealing: bool = False,
    ) -> None:
        if nkernels < 1:
            raise ValueError("need at least one kernel")
        if nkernels > machine.ncores:
            raise ValueError(
                f"{nkernels} kernels exceed the machine's {machine.ncores} cores"
            )
        self.program = program
        self.machine = machine
        self.nkernels = nkernels
        self.platform_name = platform_name

        self.engine = Engine()
        self.blocks = program.blocks(tsu_capacity)
        self.tsu = TSUGroup(
            nkernels, self.blocks, placement=placement,
            allow_stealing=allow_stealing,
        )
        factory = adapter_factory or (lambda eng, tsu: ZeroOverheadAdapter(eng, tsu))
        self.adapter = factory(self.engine, self.tsu)
        self.adapter.wake_kernels = self._wake
        self.memsys = machine.memory_system(program.env.regions, exact=exact_memory)
        # Physical-memory accounting: the PS3's 256 MB XDR is small enough
        # to matter (paper §6.3); every shared region must fit.
        self.main_memory = MainMemory(
            capacity=machine.dram_bytes, line_size=machine.l1.line_size
        )
        for region in program.env.regions:
            self.main_memory.allocate(region.size)
        self.cores = [Core(i) for i in range(nkernels)]
        #: The span sink (repro.obs probe protocol).  Every run emits
        #: spans through it; pass a collecting probe (e.g.
        #: :class:`repro.obs.Tracer`) to keep them.
        self.probe: Probe = tracer if tracer is not None else NULL_PROBE
        self._wait_events: dict[int, Event] = {}
        self._ran = False

    # -- wake management ------------------------------------------------------
    def _wake(self, kernels: Optional[Iterable[int]] = None) -> None:
        targets = list(self._wait_events) if kernels is None else [
            k for k in kernels if k in self._wait_events
        ]
        for k in targets:
            ev = self._wait_events.pop(k)
            if not ev.triggered:
                ev.succeed()

    # -- per-kernel process -------------------------------------------------------
    def _kernel_proc(self, k: int, stats: KernelStats) -> Generator:
        engine = self.engine
        core = self.cores[k]
        env = self.program.env
        adapter = self.adapter

        while True:
            t0 = engine.now
            fetch = yield from adapter.fetch(k)
            core.charge_runtime(int(engine.now - t0))
            stats.fetches += 1

            if fetch.kind == FetchKind.EXIT:
                return

            if fetch.kind == FetchKind.WAIT:
                stats.waits += 1
                # Close the lost-wakeup window: the adapter's fetch may
                # have taken simulated time after reading the TSU state,
                # during which a wake could have fired unobserved.
                if self.tsu.has_work(k):
                    continue
                ev = self._wait_events.get(k)
                if ev is None:
                    ev = Event(engine, name=f"wake:k{k}")
                    self._wait_events[k] = ev
                t0 = engine.now
                yield ev
                core.charge_idle(int(engine.now - t0))
                continue

            if fetch.kind == FetchKind.INLET:
                t0 = engine.now
                yield from adapter.complete_inlet(k, fetch.block)
                core.charge_runtime(int(engine.now - t0))
                self.probe.record(k, fetch.instance.name, "inlet", t0, engine.now)
                continue

            if fetch.kind == FetchKind.OUTLET:
                t0 = engine.now
                yield from adapter.complete_outlet(k, fetch.block)
                core.charge_runtime(int(engine.now - t0))
                self.probe.record(k, fetch.instance.name, "outlet", t0, engine.now)
                continue

            # Application DThread: run functionally, then charge its time.
            inst = fetch.instance
            assert inst is not None and fetch.local_iid is not None
            t_thread = engine.now
            inst.template.run(env, inst.ctx)
            compute = inst.template.compute_cost(env, inst.ctx)
            summary = inst.template.access_summary(env, inst.ctx)
            memory = adapter.thread_memory_cycles(k, inst, summary)
            if memory is None:
                memory = self.memsys.run_summary(k, summary)
            if compute + memory > 0:
                yield compute + memory
            core.charge_compute(compute)
            core.charge_memory(int(memory))

            t0 = engine.now
            yield from adapter.complete_thread(k, fetch.local_iid, inst)
            core.charge_runtime(int(engine.now - t0))
            core.finished_dthread()
            stats.dthreads += 1
            self.probe.record(k, inst.name, "thread", t_thread, engine.now)

    # -- sequential sections --------------------------------------------------------
    def _section_cycles(self, section) -> tuple[int, int]:
        """(compute, memory) cycles of a sequential section on core 0."""
        compute = int(section.compute_cost(self.program.env))
        memory = 0
        if section.accesses is not None:
            summary = section.accesses(self.program.env)
            memory = int(self.memsys.run_summary(0, summary))
        return compute, memory

    def _main_proc(self, stats_list: list[KernelStats]) -> Generator:
        env = self.program.env
        for section in self.program.prologue:
            section.run(env)
            compute, memory = self._section_cycles(section)
            if compute + memory:
                yield compute + memory
            self.cores[0].charge_compute(compute)
            self.cores[0].charge_memory(memory)

        self._region_start = self.engine.now
        start = getattr(self.adapter, "start", None)
        if start is not None:
            start()
        kernel_procs = [
            self.engine.process(self._kernel_proc(k, stats_list[k]), name=f"kernel{k}")
            for k in range(self.nkernels)
        ]
        yield self.engine.all_of([p.done for p in kernel_procs])
        self._region_end = self.engine.now

        shutdown = getattr(self.adapter, "shutdown", None)
        if shutdown is not None:
            shutdown()

        for section in self.program.epilogue:
            section.run(env)
            compute, memory = self._section_cycles(section)
            if compute + memory:
                yield compute + memory
            self.cores[0].charge_compute(compute)
            self.cores[0].charge_memory(memory)

    # -- entry point -------------------------------------------------------------------
    def run(self) -> RunResult:
        if self._ran:
            raise RuntimeError("SimulatedRuntime objects are single-use")
        self._ran = True
        stats_list = [KernelStats(k) for k in range(self.nkernels)]
        self._region_start = 0.0
        self._region_end = 0.0
        main = self.engine.process(self._main_proc(stats_list), name="main")
        self.engine.run()
        if main.is_alive:
            raise RuntimeError("simulation stalled (deadlocked kernels?)")
        for k, ks in enumerate(stats_list):
            ks.core = self.cores[k].stats
        # One registry for all accounting: the TSU Group's scheduling
        # counters plus whatever the platform adapter published (traffic,
        # emulator occupancy, DMA volume) — the single path every counter
        # takes into the RunRecord crossing the repro.exec boundary.
        counters = Counters()
        self.tsu.publish_counters(counters)
        self.adapter.publish_counters(counters)
        return RunResult(
            program=self.program.name,
            platform=self.platform_name,
            nkernels=self.nkernels,
            cycles=int(self.engine.now),
            region_cycles=int(self._region_end - self._region_start),
            env=self.program.env,
            kernels=stats_list,
            memory=self.memsys.total_stats(),
            counters=counters,
            spans=list(self.probe.spans),
        )


def run_sequential_timed(
    program: DDMProgram,
    machine: MachineConfig,
    exact_memory: bool = False,
    tracer: Optional[Probe] = None,
) -> RunResult:
    """The paper's baseline: the original sequential program on one core.

    Executes prologue, every DThread instance in topological order, and
    the epilogue on core 0 with no TSU interaction and no runtime cost.
    Spans are emitted through the shared :mod:`repro.obs` probe interface
    (all on kernel 0): pass a collecting probe to keep the timeline.
    """
    probe: Probe = tracer if tracer is not None else NULL_PROBE
    memsys = machine.memory_system(program.env.regions, exact=exact_memory)
    env = program.env
    cycles = 0
    core = Core(0)

    def section_cost(section) -> int:
        c = int(section.compute_cost(env))
        m = 0
        if section.accesses is not None:
            m = int(memsys.run_summary(0, section.accesses(env)))
        core.charge_compute(c)
        core.charge_memory(m)
        return c + m

    for section in program.prologue:
        section.run(env)
        t0 = cycles
        cycles += section_cost(section)
        probe.record(0, section.name, "section", t0, cycles)

    region_start = cycles
    for inst in program.fire_order():
        inst.template.run(env, inst.ctx)
        t0 = cycles
        compute = int(inst.template.compute_cost(env, inst.ctx))
        memory = int(memsys.run_summary(0, inst.template.access_summary(env, inst.ctx)))
        cycles += compute + memory
        core.charge_compute(compute)
        core.charge_memory(memory)
        core.finished_dthread()
        probe.record(0, inst.name, "thread", t0, cycles)
    region_cycles = cycles - region_start

    for section in program.epilogue:
        section.run(env)
        t0 = cycles
        cycles += section_cost(section)
        probe.record(0, section.name, "section", t0, cycles)

    stats = KernelStats(0, dthreads=core.stats.dthreads_executed, core=core.stats)
    return RunResult(
        program=program.name,
        platform=f"{machine.name}-sequential",
        nkernels=1,
        cycles=int(cycles),
        region_cycles=int(region_cycles),
        env=env,
        kernels=[stats],
        memory=memsys.total_stats(),
        spans=list(probe.spans),
    )
