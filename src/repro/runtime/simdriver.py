"""The Kernel loop on the simulated machines.

Hosts the shared Kernel step machine (:mod:`repro.runtime.core`) on the
DES: :class:`SimulatedRuntime` is the :class:`~repro.runtime.core.KernelBackend`
whose time source is the engine clock, whose wait strategy is a DES
:class:`~repro.sim.engine.Event` guarded against lost wakeups (the
discipline documented in :mod:`repro.runtime.core`), and whose cost
charging flows through the platform's protocol adapter and the machine's
memory system.  Each Kernel is one engine process running
:func:`~repro.runtime.core.kernel_loop`; the first Kernel's host process
additionally executes the program's sequential prologue before the
dataflow region opens and the epilogue after every Kernel exited.

:func:`run_sequential_timed` produces the baseline measurement: the whole
program on one core of the same machine with no TFlux overheads, exactly
the paper's §5 baseline definition.  It dispatches through the same step
machine — its backend feeds the Kernel the program's instances in fire
order with every protocol step free, so "no TFlux overheads" is a
backend property, not a separate loop.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional

from repro.core.program import DDMProgram
from repro.obs import NULL_PROBE, Counters, KernelAccount, Probe
from repro.runtime.core import Fetch, FetchKind, blocking_step, kernel_loop
from repro.runtime.stats import RunResult
from repro.sim.memory import MainMemory
from repro.sim.engine import Engine, Event
from repro.sim.machine import MachineConfig
from repro.tsu.base import ProtocolAdapter, ZeroOverheadAdapter
from repro.tsu.group import TSUGroup
from repro.tsu.policy import PlacementPolicy, contiguous_placement

__all__ = ["SimulatedRuntime", "run_sequential_timed"]

#: Builds the platform's adapter: (engine, tsu) -> ProtocolAdapter.
AdapterFactory = Callable[[Engine, TSUGroup], ProtocolAdapter]


class SimulatedRuntime:
    """Timed execution of a DDM program on a simulated machine.

    Implements the :class:`~repro.runtime.core.KernelBackend` protocol:
    every step is a DES process fragment, so protocol costs, queueing
    and contention come from the adapter and the engine, never from the
    step machine itself.
    """

    #: KernelBackend: the DES backend never aborts cooperatively — a
    #: failing process surfaces through the engine run loop instead.
    stop_requested = False

    def __init__(
        self,
        program: DDMProgram,
        machine: MachineConfig,
        nkernels: int,
        adapter_factory: Optional[AdapterFactory] = None,
        tsu_capacity: Optional[int] = None,
        placement: PlacementPolicy = contiguous_placement,
        exact_memory: bool = False,
        platform_name: str = "sim",
        tracer=None,
        allow_stealing: bool = False,
    ) -> None:
        if nkernels < 1:
            raise ValueError("need at least one kernel")
        if nkernels > machine.ncores:
            raise ValueError(
                f"{nkernels} kernels exceed the machine's {machine.ncores} cores"
            )
        self.program = program
        self.machine = machine
        self.nkernels = nkernels
        self.platform_name = platform_name

        self.engine = Engine()
        self.blocks = program.blocks(tsu_capacity)
        self.tsu = TSUGroup(
            nkernels, self.blocks, placement=placement,
            allow_stealing=allow_stealing,
            root_graph=program.expanded(), tsu_capacity=tsu_capacity,
        )
        factory = adapter_factory or (lambda eng, tsu: ZeroOverheadAdapter(eng, tsu))
        self.adapter = factory(self.engine, self.tsu)
        self.adapter.wake_kernels = self._wake
        self.memsys = machine.memory_system(program.env.regions, exact=exact_memory)
        # Physical-memory accounting: the PS3's 256 MB XDR is small enough
        # to matter (paper §6.3); every shared region must fit.
        self.main_memory = MainMemory(
            capacity=machine.dram_bytes, line_size=machine.l1.line_size
        )
        for region in program.env.regions:
            self.main_memory.allocate(region.size)
        #: One unified per-kernel account (repro.obs) per Kernel: the
        #: step machine counts into it, this backend charges time into it.
        self.accounts = [KernelAccount(k) for k in range(nkernels)]
        #: The span sink (repro.obs probe protocol).  Every run emits
        #: spans through it; pass a collecting probe (e.g.
        #: :class:`repro.obs.Tracer`) to keep them.
        self.probe: Probe = tracer if tracer is not None else NULL_PROBE
        self._wait_events: dict[int, Event] = {}
        #: Per-kernel body outcome, stashed by run_thread and consumed by
        #: resolve_dynamic/notify_completion later in the same loop
        #: iteration (at most one in-flight DThread per kernel).
        self._outcomes: dict[int, object] = {}
        self._ran = False

    # -- wake management ------------------------------------------------------
    def _wake(self, kernels: Optional[Iterable[int]] = None) -> None:
        targets = list(self._wait_events) if kernels is None else [
            k for k in kernels if k in self._wait_events
        ]
        for k in targets:
            ev = self._wait_events.pop(k)
            if not ev.triggered:
                ev.succeed()

    # -- KernelBackend: time, charging, spans ---------------------------------
    def now(self, kernel: int) -> float:
        return self.engine.now

    def charge_runtime(self, kernel: int, since: float) -> None:
        self.accounts[kernel].charge_runtime(int(self.engine.now - since))

    def emit_span(
        self, kernel: int, name: str, kind: str, start: float, end: float
    ) -> None:
        self.probe.record(kernel, name, kind, start, end)

    # -- KernelBackend: protocol steps (DES process fragments) ----------------
    def fetch(self, kernel: int) -> Generator:
        fetch = yield from self.adapter.fetch(kernel)
        return fetch

    def wait(self, kernel: int) -> Generator:
        # Close the lost-wakeup window: the adapter's fetch may have
        # taken simulated time after reading the TSU state, during which
        # a wake could have fired unobserved.  The re-check runs on the
        # engine's cooperative timeline, so nothing can interleave
        # between it and the event registration below.
        if self.tsu.has_work(kernel):
            return
        ev = self._wait_events.get(kernel)
        if ev is None:
            ev = Event(self.engine, name=f"wake:k{kernel}")
            self._wait_events[kernel] = ev
        t0 = self.engine.now
        yield ev
        self.accounts[kernel].charge_idle(int(self.engine.now - t0))

    def run_inlet(self, kernel: int, fetch: Fetch) -> Generator:
        yield from self.adapter.complete_inlet(kernel, fetch.block)

    def run_outlet(self, kernel: int, fetch: Fetch) -> Generator:
        yield from self.adapter.complete_outlet(kernel, fetch.block)

    def run_thread(self, kernel: int, fetch: Fetch) -> Generator:
        # Run functionally, then charge the cost models' verdict.
        inst = fetch.instance
        env = self.program.env
        outcome = inst.template.run(env, inst.ctx)
        if outcome is not None:
            self._outcomes[kernel] = outcome
        compute = inst.template.compute_cost(env, inst.ctx)
        summary = inst.template.access_summary(env, inst.ctx)
        memory = self.adapter.thread_memory_cycles(kernel, inst, summary)
        if memory is None:
            memory = self.memsys.run_summary(kernel, summary)
        if compute + memory > 0:
            yield compute + memory
        account = self.accounts[kernel]
        account.charge_compute(compute)
        account.charge_memory(int(memory))

    def resolve_dynamic(self, kernel: int, fetch: Fetch) -> Generator:
        outcome = self._outcomes.get(kernel)
        if outcome is None:
            return  # static thread: zero DES events, bit-identical timing
        assert fetch.local_iid is not None
        yield from self.adapter.resolve_dynamic(kernel, fetch.local_iid, outcome)

    def notify_completion(self, kernel: int, fetch: Fetch) -> Generator:
        assert fetch.local_iid is not None
        yield from self.adapter.complete_thread(
            kernel, fetch.local_iid, fetch.instance,
            self._outcomes.pop(kernel, None),
        )

    # -- sequential sections --------------------------------------------------------
    def _section_cycles(self, section) -> tuple[int, int]:
        """(compute, memory) cycles of a sequential section on core 0."""
        compute = int(section.compute_cost(self.program.env))
        memory = 0
        if section.accesses is not None:
            summary = section.accesses(self.program.env)
            memory = int(self.memsys.run_summary(0, summary))
        return compute, memory

    def _run_sections(self, sections) -> Generator:
        env = self.program.env
        for section in sections:
            section.run(env)
            compute, memory = self._section_cycles(section)
            if compute + memory:
                yield compute + memory
            self.accounts[0].charge_compute(compute)
            self.accounts[0].charge_memory(memory)

    def _main_proc(self) -> Generator:
        yield from self._run_sections(self.program.prologue)

        self._region_start = self.engine.now
        start = getattr(self.adapter, "start", None)
        if start is not None:
            start()
        kernel_procs = [
            self.engine.process(
                kernel_loop(self, k, self.accounts[k]), name=f"kernel{k}"
            )
            for k in range(self.nkernels)
        ]
        yield self.engine.all_of([p.done for p in kernel_procs])
        self._region_end = self.engine.now

        shutdown = getattr(self.adapter, "shutdown", None)
        if shutdown is not None:
            shutdown()

        yield from self._run_sections(self.program.epilogue)

    # -- entry point -------------------------------------------------------------------
    def run(self) -> RunResult:
        if self._ran:
            raise RuntimeError("SimulatedRuntime objects are single-use")
        self._ran = True
        self.program.mark_executed()
        self._region_start = 0.0
        self._region_end = 0.0
        main = self.engine.process(self._main_proc(), name="main")
        self.engine.run()
        if main.is_alive:
            raise RuntimeError("simulation stalled (deadlocked kernels?)")
        # One registry for all accounting: the TSU Group's scheduling
        # counters plus whatever the platform adapter published (traffic,
        # emulator occupancy, DMA volume) — the single path every counter
        # takes into the RunRecord crossing the repro.exec boundary.
        counters = Counters()
        self.tsu.publish_counters(counters)
        self.adapter.publish_counters(counters)
        # DES engine telemetry: heap churn of this run.  These are the
        # only counters allowed to differ between TFLUX_FASTPATH on/off
        # (the differential suite compares everything else exactly);
        # events/instance is the fast path's figure of merit.
        engine = counters.scope("engine")
        engine.inc("events", self.engine.events_executed)
        engine.inc("scheduled", self.engine.events_scheduled)
        return RunResult(
            program=self.program.name,
            platform=self.platform_name,
            nkernels=self.nkernels,
            cycles=int(self.engine.now),
            region_cycles=int(self._region_end - self._region_start),
            env=self.program.env,
            kernels=[a.snapshot() for a in self.accounts],
            memory=self.memsys.total_stats(),
            counters=counters,
            spans=list(self.probe.spans),
            nnodes=getattr(self.adapter, "nnodes", 1),
            topology=(
                net.topology.describe()
                if (net := getattr(self.adapter, "net", None)) is not None
                else ""
            ),
        )


class _SequentialBackend:
    """Backend for the §5 baseline: fire order in, zero overheads out.

    The step machine still does the dispatching, but the "TSU" is the
    program's topological fire order, every protocol step is free, and
    the clock is a manual cycle accumulator advanced only by DThread
    compute/memory costs — the definition of "the original sequential
    one, i.e. without any TFlux overheads".
    """

    stop_requested = False

    def __init__(self, program: DDMProgram, memsys, probe: Probe) -> None:
        self.program = program
        self.memsys = memsys
        self.probe = probe
        self.cycles = 0
        self.account = KernelAccount(0)
        self._fire_order = program.fire_order()
        #: Outcome of the last body run, sent back into the fire-order
        #: coroutine at the next fetch (spawns/branches in the oracle).
        self._last_outcome: object = None

    # -- KernelBackend ---------------------------------------------------------
    def now(self, kernel: int) -> float:
        return self.cycles

    def charge_runtime(self, kernel: int, since: float) -> None:
        pass  # protocol steps are free: the clock never moved

    def emit_span(
        self, kernel: int, name: str, kind: str, start: float, end: float
    ) -> None:
        self.probe.record(kernel, name, kind, start, end)

    @blocking_step
    def fetch(self, kernel: int) -> Fetch:
        try:
            inst = self._fire_order.send(self._last_outcome)
        except StopIteration:
            return Fetch(FetchKind.EXIT)
        self._last_outcome = None
        return Fetch(FetchKind.THREAD, instance=inst)

    @blocking_step
    def wait(self, kernel: int) -> None:  # pragma: no cover - unreachable
        raise AssertionError("the sequential baseline never waits")

    run_inlet = run_outlet = wait  # fire order has no Inlet/Outlet fetches

    @blocking_step
    def run_thread(self, kernel: int, fetch: Fetch) -> None:
        inst = fetch.instance
        env = self.program.env
        self._last_outcome = inst.template.run(env, inst.ctx)
        compute = int(inst.template.compute_cost(env, inst.ctx))
        memory = int(
            self.memsys.run_summary(0, inst.template.access_summary(env, inst.ctx))
        )
        self.cycles += compute + memory
        self.account.charge_compute(compute)
        self.account.charge_memory(memory)

    @blocking_step
    def resolve_dynamic(self, kernel: int, fetch: Fetch) -> None:
        pass  # outcomes flow back through the fire-order coroutine

    @blocking_step
    def notify_completion(self, kernel: int, fetch: Fetch) -> None:
        pass  # no TSU: dependencies are satisfied by the fire order

    # -- sequential sections ---------------------------------------------------
    def run_section(self, section) -> None:
        env = self.program.env
        section.run(env)
        t0 = self.cycles
        compute = int(section.compute_cost(env))
        memory = 0
        if section.accesses is not None:
            memory = int(self.memsys.run_summary(0, section.accesses(env)))
        self.cycles += compute + memory
        self.account.charge_compute(compute)
        self.account.charge_memory(memory)
        self.probe.record(0, section.name, "section", t0, self.cycles)


def run_sequential_timed(
    program: DDMProgram,
    machine: MachineConfig,
    exact_memory: bool = False,
    tracer: Optional[Probe] = None,
) -> RunResult:
    """The paper's baseline: the original sequential program on one core.

    Executes prologue, every DThread instance in topological order, and
    the epilogue on core 0 with no TSU interaction and no runtime cost —
    dispatched through the shared Kernel step machine with the
    zero-overhead :class:`_SequentialBackend`.  Spans are emitted through
    the shared :mod:`repro.obs` probe interface (all on kernel 0): pass a
    collecting probe to keep the timeline.
    """
    from repro.runtime.core import run_kernel_blocking

    program.mark_executed()
    probe: Probe = tracer if tracer is not None else NULL_PROBE
    memsys = machine.memory_system(
        program.env.regions, exact=exact_memory, single_issuer=True
    )
    backend = _SequentialBackend(program, memsys, probe)

    for section in program.prologue:
        backend.run_section(section)

    region_start = backend.cycles
    run_kernel_blocking(backend, 0, backend.account)
    region_cycles = backend.cycles - region_start

    for section in program.epilogue:
        backend.run_section(section)

    return RunResult(
        program=program.name,
        platform=f"{machine.name}-sequential",
        nkernels=1,
        cycles=int(backend.cycles),
        region_cycles=int(region_cycles),
        env=program.env,
        kernels=[backend.account.snapshot()],
        memory=memsys.total_stats(),
        spans=list(probe.spans),
    )
