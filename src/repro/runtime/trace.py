"""Execution tracing: per-kernel DThread timelines.

A :class:`Tracer` attached to a :class:`~repro.runtime.simdriver.
SimulatedRuntime` records one :class:`Span` per executed DThread (and per
Inlet/Outlet), yielding the data for utilisation analysis and the ASCII
Gantt rendering used by the examples — the visibility a real TFlux
deployment would get from hardware performance counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Span", "Tracer", "render_gantt"]


@dataclass(frozen=True)
class Span:
    """One scheduled unit on one kernel."""

    kernel: int
    name: str
    kind: str  # "thread" | "inlet" | "outlet"
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects spans during a simulated run."""

    spans: list[Span] = field(default_factory=list)

    def record(self, kernel: int, name: str, kind: str, start: float, end: float) -> None:
        self.spans.append(Span(kernel, name, kind, int(start), int(end)))

    # -- queries ------------------------------------------------------------
    def spans_of(self, kernel: int) -> list[Span]:
        return [s for s in self.spans if s.kernel == kernel]

    def busy_cycles(self, kernel: int) -> int:
        return sum(s.duration for s in self.spans_of(kernel))

    def makespan(self) -> int:
        if not self.spans:
            return 0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def critical_kernel(self) -> Optional[int]:
        kernels = {s.kernel for s in self.spans}
        if not kernels:
            return None
        return max(kernels, key=self.busy_cycles)

    def check_no_overlap(self) -> None:
        """A kernel executes one DThread at a time — spans must not
        overlap within a kernel (a key runtime invariant)."""
        for kernel in {s.kernel for s in self.spans}:
            spans = sorted(self.spans_of(kernel), key=lambda s: s.start)
            for a, b in zip(spans, spans[1:]):
                assert a.end <= b.start, (
                    f"kernel {kernel}: {a.name} [{a.start},{a.end}) overlaps "
                    f"{b.name} [{b.start},{b.end})"
                )


def to_chrome_trace(tracer: Tracer) -> dict:
    """Export spans in the Chrome ``chrome://tracing`` / Perfetto JSON
    format: one track per kernel, complete ('X') events, microsecond
    timestamps mapped 1:1 from simulated cycles."""
    events = [
        {
            "name": s.name,
            "cat": s.kind,
            "ph": "X",
            "ts": s.start,
            "dur": s.duration,
            "pid": 0,
            "tid": s.kernel,
        }
        for s in sorted(tracer.spans, key=lambda s: (s.kernel, s.start))
    ]
    events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": k,
            "args": {"name": f"kernel{k}"},
        }
        for k in sorted({s.kernel for s in tracer.spans})
    )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def render_gantt(tracer: Tracer, width: int = 72) -> str:
    """ASCII Gantt chart: one row per kernel, time left to right.

    Thread spans print as ``#``, inlets as ``I``, outlets as ``O``; idle
    gaps as ``.``.
    """
    if not tracer.spans:
        return "(no spans recorded)"
    t0 = min(s.start for s in tracer.spans)
    t1 = max(s.end for s in tracer.spans)
    span_range = max(t1 - t0, 1)
    scale = width / span_range
    kernels = sorted({s.kernel for s in tracer.spans})
    lines = [f"time: {t0:,} .. {t1:,} cycles ({span_range:,} total)"]
    glyph = {"thread": "#", "inlet": "I", "outlet": "O"}
    for k in kernels:
        row = ["."] * width
        for s in tracer.spans_of(k):
            lo = int((s.start - t0) * scale)
            hi = max(int((s.end - t0) * scale), lo + 1)
            for x in range(lo, min(hi, width)):
                row[x] = glyph.get(s.kind, "#")
        busy = tracer.busy_cycles(k) / span_range
        lines.append(f"k{k:<3}|{''.join(row)}| {busy:5.1%}")
    return "\n".join(lines)
