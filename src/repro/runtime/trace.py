"""Backwards-compatible aliases for the instrumentation layer.

The tracer grew into the :mod:`repro.obs` probe/span protocol (shared by
the simulated driver, the native backend, and the sequential baselines);
this module re-exports the old names so existing imports keep working.
New code should import from :mod:`repro.obs` directly.
"""

from repro.obs.probe import (
    NULL_PROBE,
    Probe,
    Span,
    Tracer,
    check_no_overlap,
    render_gantt,
    spans_from_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "NULL_PROBE",
    "Probe",
    "Span",
    "Tracer",
    "check_no_overlap",
    "render_gantt",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]
