"""TFlux Runtime Support.

"The virtualization TFlux provides is mainly due to its Runtime Support.
The Runtime Support executes on top of an unmodified Operating System"
(paper §3.1).  The Kernel protocol itself — the loop of Figure 2 — is
implemented exactly once:

* :mod:`repro.runtime.core` — the backend-agnostic Kernel step machine
  (:func:`~repro.runtime.core.kernel_loop` over the
  :class:`~repro.runtime.core.KernelBackend` protocol), plus the unified
  wake discipline documentation;
* :mod:`repro.runtime.simdriver` — the timed execution on the simulated
  machines (the step machine hosted as DES processes, with a
  platform-specific protocol adapter pricing every TSU interaction) and
  the sequential baseline;
* :mod:`repro.runtime.native` — a real ``threading``-based runtime that
  executes DThreads on host OS threads with the software-TSU structures
  (TUB, SM, TKT) and real locks, demonstrating the user-level runtime on
  a commodity OS exactly as TFluxSoft does.

:mod:`repro.runtime.stats` defines the result records shared by all
backends.
"""

from repro.runtime.core import (
    KernelBackend,
    blocking_step,
    kernel_loop,
    run_kernel_blocking,
)
from repro.runtime.stats import KernelStats, RunResult
from repro.runtime.simdriver import SimulatedRuntime, run_sequential_timed
from repro.runtime.native import NativeRuntime

__all__ = [
    "KernelBackend",
    "KernelStats",
    "NativeRuntime",
    "RunResult",
    "SimulatedRuntime",
    "blocking_step",
    "kernel_loop",
    "run_kernel_blocking",
    "run_sequential_timed",
]
