"""TFlux Runtime Support.

"The virtualization TFlux provides is mainly due to its Runtime Support.
The Runtime Support executes on top of an unmodified Operating System"
(paper §3.1).  Two executions of the same DDM program are provided:

* :mod:`repro.runtime.simdriver` — the timed execution on the simulated
  machines (the Kernel loop of Figure 2 as DES processes, with a
  platform-specific protocol adapter pricing every TSU interaction);
* :mod:`repro.runtime.native` — a real ``threading``-based runtime that
  executes DThreads on host OS threads with the software-TSU structures
  (TUB, SM, TKT) and real locks, demonstrating the user-level runtime on
  a commodity OS exactly as TFluxSoft does.

:mod:`repro.runtime.stats` defines the result records shared by both.
"""

from repro.runtime.stats import KernelStats, RunResult
from repro.runtime.simdriver import SimulatedRuntime, run_sequential_timed
from repro.runtime.native import NativeRuntime

__all__ = [
    "KernelStats",
    "RunResult",
    "SimulatedRuntime",
    "run_sequential_timed",
    "NativeRuntime",
]
