"""Native threaded runtime: TFluxSoft on the host OS.

This backend runs a DDM program on real OS threads, structured exactly
like TFluxSoft (paper §4.2): *n* Kernel threads execute DThreads; their
completion notifications flow through a real, lock-segmented
:class:`~repro.tsu.tub.ThreadUpdateBuffer`; a dedicated **TSU Emulator
thread** drains the TUB and performs the Post-Processing Phase against
the per-kernel Synchronization Memories via the Thread-to-Kernel Table.

It demonstrates the paper's user-level runtime claim — DDM execution on
an unmodified OS, interleaved with ordinary processes — and computes real
results.  A CPython caveat applies to *speedup*: the GIL serialises pure
Python DThread bodies, so wall-clock scaling is only visible for bodies
that release the GIL (NumPy kernels).  The cycle-accurate speedup
evaluation therefore lives on the simulated machines; this backend is the
functional/portability proof.

Telemetry follows the same :mod:`repro.obs` contract as the simulated
backends, with microseconds of wall time where they use cycles: each
kernel's :class:`~repro.sim.cpu.CoreStats` splits its lifetime into
compute (DThread bodies), runtime (TSU/TUB protocol under the lock) and
idle (condition waits), and an attached probe receives one span per
DThread body on a µs axis starting at 0.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.core.program import DDMProgram
from repro.obs import NULL_PROBE, Counters, Probe
from repro.runtime.stats import KernelStats, RunResult
from repro.sim.cpu import CoreStats
from repro.tsu.group import FetchKind, TSUGroup
from repro.tsu.policy import PlacementPolicy, contiguous_placement
from repro.tsu.tub import ThreadUpdateBuffer

__all__ = ["NativeRuntime"]

_WAIT_TIMEOUT = 0.02  # seconds; condition re-check period (lost-wakeup guard)


class _KernelClock:
    """Per-kernel wall-time accounting in microseconds."""

    __slots__ = ("compute_us", "runtime_us", "idle_us")

    def __init__(self) -> None:
        self.compute_us = 0.0
        self.runtime_us = 0.0
        self.idle_us = 0.0

    def core_stats(self, dthreads: int) -> CoreStats:
        return CoreStats(
            compute_cycles=int(self.compute_us),
            memory_cycles=0,
            runtime_cycles=int(self.runtime_us),
            idle_cycles=int(self.idle_us),
            dthreads_executed=dthreads,
        )


class NativeRuntime:
    """Execute a DDM program on host threads with a software TSU."""

    def __init__(
        self,
        program: DDMProgram,
        nkernels: int,
        tsu_capacity: Optional[int] = None,
        placement: PlacementPolicy = contiguous_placement,
        tub_segments: int = 8,
        tub_segment_capacity: int = 256,
        allow_stealing: bool = False,
        tracer: Optional[Probe] = None,
    ) -> None:
        if nkernels < 1:
            raise ValueError("need at least one kernel")
        self.program = program
        self.nkernels = nkernels
        self.blocks = program.blocks(tsu_capacity)
        self.tsu = TSUGroup(
            nkernels, self.blocks, placement=placement,
            allow_stealing=allow_stealing,
        )
        self.tub = ThreadUpdateBuffer(tub_segments, tub_segment_capacity)
        # One mutex guards TSU state transitions (fetch / inlet / outlet /
        # post-processing application); DThread bodies run outside it.
        self._cond = threading.Condition()
        self._errors: list[BaseException] = []
        self._stats = [KernelStats(k) for k in range(nkernels)]
        self._clocks = [_KernelClock() for _ in range(nkernels)]
        self.probe: Probe = tracer if tracer is not None else NULL_PROBE
        self._probe_lock = threading.Lock()
        self._t0 = 0.0
        # Emulator-side accounting (single writer: the emulator thread).
        self.emulator_batches = 0
        self.emulator_items = 0
        self.emulator_busy_us = 0.0
        self._ran = False

    def _now_us(self) -> float:
        """Microseconds since the run started (span/CoreStats axis)."""
        return (time.perf_counter() - self._t0) * 1e6

    # -- kernel thread ---------------------------------------------------------
    def _kernel_main(self, k: int) -> None:
        env = self.program.env
        stats = self._stats[k]
        clock = self._clocks[k]
        tsu = self.tsu
        try:
            while True:
                if self._errors:
                    return  # another thread failed; shut down cleanly
                t0 = self._now_us()
                with self._cond:
                    fetch = tsu.fetch(k)
                    stats.fetches += 1
                    while fetch.kind == FetchKind.WAIT:
                        if self._errors:
                            return
                        stats.waits += 1
                        t_wait = self._now_us()
                        clock.runtime_us += t_wait - t0
                        self._cond.wait(timeout=_WAIT_TIMEOUT)
                        t0 = self._now_us()
                        clock.idle_us += t0 - t_wait
                        fetch = tsu.fetch(k)
                        stats.fetches += 1
                clock.runtime_us += self._now_us() - t0

                if fetch.kind == FetchKind.EXIT:
                    return

                if fetch.kind == FetchKind.INLET:
                    t0 = self._now_us()
                    with self._cond:
                        tsu.complete_inlet(k)
                        self._cond.notify_all()
                    t1 = self._now_us()
                    clock.runtime_us += t1 - t0
                    self._record_span(k, fetch.instance.name, "inlet", t0, t1)
                    continue

                if fetch.kind == FetchKind.OUTLET:
                    t0 = self._now_us()
                    with self._cond:
                        tsu.complete_outlet(k)
                        self._cond.notify_all()
                    t1 = self._now_us()
                    clock.runtime_us += t1 - t0
                    self._record_span(k, fetch.instance.name, "outlet", t0, t1)
                    continue

                # Application DThread: body runs without any TSU lock held.
                inst = fetch.instance
                assert inst is not None and fetch.local_iid is not None
                t_body = self._now_us()
                inst.template.run(env, inst.ctx)
                t_done = self._now_us()
                clock.compute_us += t_done - t_body
                stats.dthreads += 1
                # Completion notification goes through the TUB.
                self.tub.push((k, fetch.local_iid), preferred_segment=k)
                clock.runtime_us += self._now_us() - t_done
                self._record_span(k, inst.name, "thread", t_body, t_done)
        except BaseException as exc:  # surface worker failures to run()
            self._errors.append(exc)
            with self._cond:
                self._cond.notify_all()

    def _record_span(
        self, kernel: int, name: str, kind: str, start: float, end: float
    ) -> None:
        # Probe implementations are not required to be thread-safe; the
        # native backend serialises its span stream.
        with self._probe_lock:
            self.probe.record(kernel, name, kind, start, end)

    # -- TSU emulator thread ----------------------------------------------------------
    def _emulator_main(self) -> None:
        tsu = self.tsu
        try:
            while True:
                items = self.tub.drain()
                if items:
                    t0 = self._now_us()
                    with self._cond:
                        for kernel, local_iid in items:
                            tsu.complete_thread(kernel, local_iid)
                        self._cond.notify_all()
                    self.emulator_busy_us += self._now_us() - t0
                    self.emulator_batches += 1
                    self.emulator_items += len(items)
                    continue
                if tsu.is_exited() or self._errors:
                    return
                time.sleep(0.0005)
        except BaseException as exc:
            self._errors.append(exc)
            with self._cond:
                self._cond.notify_all()

    # -- entry point --------------------------------------------------------------------
    def run(self) -> RunResult:
        if self._ran:
            raise RuntimeError("NativeRuntime objects are single-use")
        self._ran = True
        env = self.program.env

        t_start = time.perf_counter()
        self._t0 = t_start
        for section in self.program.prologue:
            section.run(env)

        emulator = threading.Thread(
            target=self._emulator_main, name="tsu-emulator", daemon=True
        )
        kernels = [
            threading.Thread(target=self._kernel_main, args=(k,), name=f"kernel{k}")
            for k in range(self.nkernels)
        ]
        emulator.start()
        for t in kernels:
            t.start()
        for t in kernels:
            t.join()
        emulator.join(timeout=5.0)

        if self._errors:
            raise RuntimeError("DDM execution failed") from self._errors[0]
        if not self.tsu.is_exited():
            raise RuntimeError("kernels exited before the TSU reached EXIT")

        for section in self.program.epilogue:
            section.run(env)
        wall = time.perf_counter() - t_start

        for stats, clock in zip(self._stats, self._clocks):
            stats.core = clock.core_stats(stats.dthreads)

        counters = Counters()
        self.tsu.publish_counters(counters)
        self.tub.publish_counters(counters)
        emu = counters.scope("emulator")
        emu.inc("items", self.emulator_items)
        emu.inc("batches", self.emulator_batches)
        emu.inc("busy_us", int(self.emulator_busy_us))

        return RunResult(
            program=self.program.name,
            platform="native",
            nkernels=self.nkernels,
            cycles=0,
            env=env,
            kernels=self._stats,
            counters=counters,
            spans=list(self.probe.spans),
            wall_seconds=wall,
        )
