"""Native threaded runtime: TFluxSoft on the host OS.

This backend runs a DDM program on real OS threads, structured exactly
like TFluxSoft (paper §4.2): *n* Kernel threads execute DThreads; their
completion notifications flow through a real, lock-segmented
:class:`~repro.tsu.tub.ThreadUpdateBuffer`; a dedicated **TSU Emulator
thread** drains the TUB and performs the Post-Processing Phase against
the per-kernel Synchronization Memories via the Thread-to-Kernel Table.

It demonstrates the paper's user-level runtime claim — DDM execution on
an unmodified OS, interleaved with ordinary processes — and computes real
results.  A CPython caveat applies to *speedup*: the GIL serialises pure
Python DThread bodies, so wall-clock scaling is only visible for bodies
that release the GIL (NumPy kernels).  The cycle-accurate speedup
evaluation therefore lives on the simulated machines; this backend is the
functional/portability proof.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.core.program import DDMProgram
from repro.runtime.stats import KernelStats, RunResult
from repro.tsu.group import FetchKind, TSUGroup
from repro.tsu.policy import PlacementPolicy, contiguous_placement
from repro.tsu.tub import ThreadUpdateBuffer

__all__ = ["NativeRuntime"]

_WAIT_TIMEOUT = 0.02  # seconds; condition re-check period (lost-wakeup guard)


class NativeRuntime:
    """Execute a DDM program on host threads with a software TSU."""

    def __init__(
        self,
        program: DDMProgram,
        nkernels: int,
        tsu_capacity: Optional[int] = None,
        placement: PlacementPolicy = contiguous_placement,
        tub_segments: int = 8,
        tub_segment_capacity: int = 256,
        allow_stealing: bool = False,
    ) -> None:
        if nkernels < 1:
            raise ValueError("need at least one kernel")
        self.program = program
        self.nkernels = nkernels
        self.blocks = program.blocks(tsu_capacity)
        self.tsu = TSUGroup(
            nkernels, self.blocks, placement=placement,
            allow_stealing=allow_stealing,
        )
        self.tub = ThreadUpdateBuffer(tub_segments, tub_segment_capacity)
        # One mutex guards TSU state transitions (fetch / inlet / outlet /
        # post-processing application); DThread bodies run outside it.
        self._cond = threading.Condition()
        self._errors: list[BaseException] = []
        self._stats = [KernelStats(k) for k in range(nkernels)]
        self._ran = False

    # -- kernel thread ---------------------------------------------------------
    def _kernel_main(self, k: int) -> None:
        env = self.program.env
        stats = self._stats[k]
        tsu = self.tsu
        try:
            while True:
                if self._errors:
                    return  # another thread failed; shut down cleanly
                with self._cond:
                    fetch = tsu.fetch(k)
                    stats.fetches += 1
                    while fetch.kind == FetchKind.WAIT:
                        if self._errors:
                            return
                        stats.waits += 1
                        self._cond.wait(timeout=_WAIT_TIMEOUT)
                        fetch = tsu.fetch(k)
                        stats.fetches += 1

                if fetch.kind == FetchKind.EXIT:
                    return

                if fetch.kind == FetchKind.INLET:
                    with self._cond:
                        tsu.complete_inlet(k)
                        self._cond.notify_all()
                    continue

                if fetch.kind == FetchKind.OUTLET:
                    with self._cond:
                        tsu.complete_outlet(k)
                        self._cond.notify_all()
                    continue

                # Application DThread: body runs without any TSU lock held.
                inst = fetch.instance
                assert inst is not None and fetch.local_iid is not None
                inst.template.run(env, inst.ctx)
                stats.dthreads += 1
                # Completion notification goes through the TUB.
                self.tub.push((k, fetch.local_iid), preferred_segment=k)
        except BaseException as exc:  # surface worker failures to run()
            self._errors.append(exc)
            with self._cond:
                self._cond.notify_all()

    # -- TSU emulator thread ----------------------------------------------------------
    def _emulator_main(self) -> None:
        tsu = self.tsu
        try:
            while True:
                items = self.tub.drain()
                if items:
                    with self._cond:
                        for kernel, local_iid in items:
                            tsu.complete_thread(kernel, local_iid)
                        self._cond.notify_all()
                    continue
                if tsu.is_exited() or self._errors:
                    return
                time.sleep(0.0005)
        except BaseException as exc:
            self._errors.append(exc)
            with self._cond:
                self._cond.notify_all()

    # -- entry point --------------------------------------------------------------------
    def run(self) -> RunResult:
        if self._ran:
            raise RuntimeError("NativeRuntime objects are single-use")
        self._ran = True
        env = self.program.env

        t_start = time.perf_counter()
        for section in self.program.prologue:
            section.run(env)

        emulator = threading.Thread(
            target=self._emulator_main, name="tsu-emulator", daemon=True
        )
        kernels = [
            threading.Thread(target=self._kernel_main, args=(k,), name=f"kernel{k}")
            for k in range(self.nkernels)
        ]
        emulator.start()
        for t in kernels:
            t.start()
        for t in kernels:
            t.join()
        emulator.join(timeout=5.0)

        if self._errors:
            raise RuntimeError("DDM execution failed") from self._errors[0]
        if not self.tsu.is_exited():
            raise RuntimeError("kernels exited before the TSU reached EXIT")

        for section in self.program.epilogue:
            section.run(env)
        wall = time.perf_counter() - t_start

        return RunResult(
            program=self.program.name,
            platform="native",
            nkernels=self.nkernels,
            cycles=0,
            env=env,
            kernels=self._stats,
            tsu_stats={
                "fetches": self.tsu.fetches,
                "waits": self.tsu.waits,
                "post_updates": self.tsu.post_updates,
                "tub_pushes": self.tub.pushes,
                "tub_retries": self.tub.push_retries,
            },
            wall_seconds=wall,
        )
