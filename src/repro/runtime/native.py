"""Native threaded runtime: TFluxSoft on the host OS.

This backend runs a DDM program on real OS threads, structured exactly
like TFluxSoft (paper §4.2): *n* Kernel threads execute DThreads; their
completion notifications flow through a real, lock-segmented
:class:`~repro.tsu.tub.ThreadUpdateBuffer`; a dedicated **TSU Emulator
thread** drains the TUB and performs the Post-Processing Phase against
the per-kernel Synchronization Memories via the Thread-to-Kernel Table.

Each Kernel thread drives the shared step machine
(:func:`repro.runtime.core.kernel_loop`) with
:func:`~repro.runtime.core.run_kernel_blocking`: :class:`NativeRuntime`
is the :class:`~repro.runtime.core.KernelBackend` whose time source is
``perf_counter`` microseconds and whose wait strategy is a
``threading.Condition`` — parking only after re-checking
``TSUGroup.has_work`` under the same mutex every ``notify_all`` holds,
the wake discipline documented in :mod:`repro.runtime.core`.  There is
no poll timeout: kernels sleep until a TSU transition (inlet/outlet
completion, emulator post-processing, error shutdown) notifies them.

It demonstrates the paper's user-level runtime claim — DDM execution on
an unmodified OS, interleaved with ordinary processes — and computes real
results.  A CPython caveat applies to *speedup*: the GIL serialises pure
Python DThread bodies, so wall-clock scaling is only visible for bodies
that release the GIL (NumPy kernels).  The cycle-accurate speedup
evaluation therefore lives on the simulated machines; this backend is the
functional/portability proof.

Telemetry follows the same :mod:`repro.obs` contract as the simulated
backends, with microseconds of wall time where they use cycles: each
kernel's :class:`~repro.obs.KernelAccount` splits its lifetime into
compute (DThread bodies), runtime (TSU/TUB protocol under the lock) and
idle (condition waits), and an attached probe receives one span per
DThread on a µs axis starting at 0.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.core.program import DDMProgram
from repro.obs import NULL_PROBE, Counters, KernelAccount, Probe
from repro.runtime.core import Fetch, blocking_step, run_kernel_blocking
from repro.runtime.stats import RunResult
from repro.tsu.group import TSUGroup
from repro.tsu.policy import PlacementPolicy, contiguous_placement
from repro.tsu.tub import ThreadUpdateBuffer

__all__ = ["NativeRuntime"]


class NativeRuntime:
    """Execute a DDM program on host threads with a software TSU.

    Implements the :class:`~repro.runtime.core.KernelBackend` protocol
    with blocking steps: every TSU transition happens under one mutex
    (``self._cond``); DThread bodies run outside it.
    """

    def __init__(
        self,
        program: DDMProgram,
        nkernels: int,
        tsu_capacity: Optional[int] = None,
        placement: PlacementPolicy = contiguous_placement,
        tub_segments: int = 8,
        tub_segment_capacity: int = 256,
        allow_stealing: bool = False,
        tracer: Optional[Probe] = None,
    ) -> None:
        if nkernels < 1:
            raise ValueError("need at least one kernel")
        self.program = program
        self.nkernels = nkernels
        self.blocks = program.blocks(tsu_capacity)
        self.tsu = TSUGroup(
            nkernels, self.blocks, placement=placement,
            allow_stealing=allow_stealing,
            root_graph=program.expanded(), tsu_capacity=tsu_capacity,
        )
        #: Per-kernel outcome of the body just run (each kernel thread
        #: writes/reads only its own slot; shipped through the TUB).
        self._outcomes: list[object] = [None] * nkernels
        self.tub = ThreadUpdateBuffer(tub_segments, tub_segment_capacity)
        # One mutex guards TSU state transitions (fetch / inlet / outlet /
        # post-processing application); DThread bodies run outside it.
        self._cond = threading.Condition()
        self._errors: list[BaseException] = []
        self._accounts = [KernelAccount(k) for k in range(nkernels)]
        self.probe: Probe = tracer if tracer is not None else NULL_PROBE
        self._probe_lock = threading.Lock()
        self._t0 = 0.0
        # Emulator-side accounting (single writer: the emulator thread).
        self.emulator_batches = 0
        self.emulator_items = 0
        self.emulator_busy_us = 0.0
        self._ran = False

    def _now_us(self) -> float:
        """Microseconds since the run started (span/CoreStats axis)."""
        return (time.perf_counter() - self._t0) * 1e6

    # -- KernelBackend: time, charging, spans ---------------------------------
    @property
    def stop_requested(self) -> bool:
        # Cooperative shutdown: once any thread failed, every kernel
        # leaves its loop at the next iteration.
        return bool(self._errors)

    def now(self, kernel: int) -> float:
        return self._now_us()

    def charge_runtime(self, kernel: int, since: float) -> None:
        self._accounts[kernel].charge_runtime(self._now_us() - since)

    def emit_span(
        self, kernel: int, name: str, kind: str, start: float, end: float
    ) -> None:
        # Probe implementations are not required to be thread-safe; the
        # native backend serialises its span stream.
        with self._probe_lock:
            self.probe.record(kernel, name, kind, start, end)

    # -- KernelBackend: protocol steps (blocking, under the TSU mutex) --------
    @blocking_step
    def fetch(self, kernel: int) -> Fetch:
        with self._cond:
            return self.tsu.fetch(kernel)

    @blocking_step
    def wait(self, kernel: int) -> None:
        with self._cond:
            # Close the lost-wakeup window: a notify may have fired
            # between the WAIT fetch releasing the mutex and this
            # re-acquisition.  Every notify_all holds this mutex, so the
            # re-check and the park are atomic with respect to wakeups.
            if self._errors or self.tsu.has_work(kernel):
                return
            t0 = self._now_us()
            self._cond.wait()
            self._accounts[kernel].charge_idle(self._now_us() - t0)

    @blocking_step
    def run_inlet(self, kernel: int, fetch: Fetch) -> None:
        with self._cond:
            self.tsu.complete_inlet(kernel)
            self._cond.notify_all()

    @blocking_step
    def run_outlet(self, kernel: int, fetch: Fetch) -> None:
        with self._cond:
            self.tsu.complete_outlet(kernel)
            self._cond.notify_all()

    @blocking_step
    def run_thread(self, kernel: int, fetch: Fetch) -> None:
        # The body runs without any TSU lock held.
        inst = fetch.instance
        t0 = self._now_us()
        self._outcomes[kernel] = inst.template.run(self.program.env, inst.ctx)
        self._accounts[kernel].charge_compute(self._now_us() - t0)

    @blocking_step
    def resolve_dynamic(self, kernel: int, fetch: Fetch) -> None:
        # The outcome rides the TUB entry pushed by notify_completion;
        # the emulator applies it during the Post-Processing Phase.
        pass

    @blocking_step
    def notify_completion(self, kernel: int, fetch: Fetch) -> None:
        # Completion notification goes through the TUB; the emulator
        # thread performs the Post-Processing Phase and notifies.
        assert fetch.local_iid is not None
        outcome = self._outcomes[kernel]
        self._outcomes[kernel] = None
        self.tub.push(
            (kernel, fetch.local_iid, outcome), preferred_segment=kernel
        )

    # -- kernel thread ---------------------------------------------------------
    def _kernel_main(self, k: int) -> None:
        try:
            run_kernel_blocking(self, k, self._accounts[k])
        except BaseException as exc:  # surface worker failures to run()
            self._errors.append(exc)
            with self._cond:
                self._cond.notify_all()

    # -- TSU emulator thread ----------------------------------------------------------
    def _emulator_main(self) -> None:
        tsu = self.tsu
        try:
            while True:
                items = self.tub.drain()
                if items:
                    t0 = self._now_us()
                    with self._cond:
                        for kernel, local_iid, outcome in items:
                            tsu.complete_thread(kernel, local_iid, outcome)
                        self._cond.notify_all()
                    self.emulator_busy_us += self._now_us() - t0
                    self.emulator_batches += 1
                    self.emulator_items += len(items)
                    continue
                if tsu.is_exited() or self._errors:
                    return
                time.sleep(0.0005)
        except BaseException as exc:
            self._errors.append(exc)
            with self._cond:
                self._cond.notify_all()

    # -- entry point --------------------------------------------------------------------
    def run(self) -> RunResult:
        if self._ran:
            raise RuntimeError("NativeRuntime objects are single-use")
        self._ran = True
        self.program.mark_executed()
        env = self.program.env

        t_start = time.perf_counter()
        self._t0 = t_start
        for section in self.program.prologue:
            section.run(env)

        emulator = threading.Thread(
            target=self._emulator_main, name="tsu-emulator", daemon=True
        )
        kernels = [
            threading.Thread(target=self._kernel_main, args=(k,), name=f"kernel{k}")
            for k in range(self.nkernels)
        ]
        emulator.start()
        for t in kernels:
            t.start()
        for t in kernels:
            t.join()
        emulator.join(timeout=5.0)

        if self._errors:
            raise RuntimeError("DDM execution failed") from self._errors[0]
        if not self.tsu.is_exited():
            raise RuntimeError("kernels exited before the TSU reached EXIT")

        for section in self.program.epilogue:
            section.run(env)
        wall = time.perf_counter() - t_start

        counters = Counters()
        self.tsu.publish_counters(counters)
        self.tub.publish_counters(counters)
        emu = counters.scope("emulator")
        emu.inc("items", self.emulator_items)
        emu.inc("batches", self.emulator_batches)
        emu.inc("busy_us", int(self.emulator_busy_us))

        return RunResult(
            program=self.program.name,
            platform="native",
            nkernels=self.nkernels,
            cycles=0,
            env=env,
            kernels=[a.snapshot() for a in self._accounts],
            counters=counters,
            spans=list(self.probe.spans),
            wall_seconds=wall,
        )
