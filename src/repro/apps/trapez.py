"""TRAPEZ — trapezoidal-rule integration (custom kernel, Table 1).

Integrates f(x) = 4/(1+x^2) over [0,1] (the quadrature whose exact value
is pi) with 2^k intervals.  The DDM decomposition mirrors the paper's
description (§6.1.2): the interval loop is cut into per-DThread chunks
(the unroll factor makes each chunk coarser); each chunk DThread writes
its partial sum into ``parts``; a single reduction DThread, fed by an
"all" arc, adds the partials — "no DThread dependencies other than a
reduction operation that is required at the end", which is why TRAPEZ
approaches ideal speedup.
"""

from __future__ import annotations

import numpy as np

from repro.apps import common
from repro.apps.common import COSTS, ProblemSize, chunk_bounds
from repro.core.builder import ProgramBuilder
from repro.core.program import DDMProgram
from repro.sim.accesses import AccessSummary

__all__ = ["Trapez", "f", "reference"]

#: Base granularity: intervals per DThread at unroll factor 1.
BASE_INTERVALS = 64

A, B = 0.0, 1.0


def f(x: np.ndarray) -> np.ndarray:
    """The integrand; integral over [0,1] is pi."""
    return 4.0 / (1.0 + x * x)


def reference(k: int) -> float:
    """Sequential trapezoidal rule with 2^k intervals."""
    n = 1 << k
    x = np.linspace(A, B, n + 1)
    y = f(x)
    h = (B - A) / n
    return float(h * (y.sum() - 0.5 * (y[0] + y[-1])))


class Trapez:
    name = "trapez"

    def build(
        self,
        size: ProblemSize,
        unroll: int = 1,
        max_threads: int = 4096,
        deps: str = "declared",
    ) -> DDMProgram:
        k = size.params["k"]
        n = 1 << k
        base_chunks = max(1, n // BASE_INTERVALS)
        nthreads = min(common.nthreads_for(base_chunks, unroll), max_threads, n)
        h = (B - A) / n

        b = ProgramBuilder(f"trapez[{size.label}]")
        parts = b.env.alloc("parts", nthreads)
        parts_region = b.env.region("parts")
        b.env.set("n_intervals", n)

        def chunk_body(env, i):
            lo, hi = chunk_bounds(n, nthreads, i)
            x = A + h * np.arange(lo, hi + 1)
            y = f(x)
            env.array("parts")[i] = h * (y.sum() - 0.5 * (y[0] + y[-1]))

        def chunk_cost(env, i):
            lo, hi = chunk_bounds(n, nthreads, i)
            return (hi - lo) * COSTS.trapez_interval

        def chunk_accesses(env, i):
            # The integrand is computed in registers; only the partial-sum
            # slot touches memory.
            return AccessSummary().write(parts_region, offset=i * 8, count=1)

        t_chunk = b.thread(
            "chunk",
            body=chunk_body,
            contexts=nthreads,
            cost=chunk_cost,
            accesses=chunk_accesses,
        )

        def reduce_body(env, _):
            env.set("integral", float(env.array("parts").sum()))

        def reduce_cost(env, _):
            return nthreads * 4  # one load+add per partial

        def reduce_accesses(env, _):
            return AccessSummary().read(parts_region, count=nthreads)

        t_reduce = b.thread(
            "reduce", body=reduce_body, cost=reduce_cost, accesses=reduce_accesses
        )
        common.finish_graph(b, deps, lambda: b.depends(t_chunk, t_reduce, "all"))
        return b.build()

    def verify(self, env, size: ProblemSize) -> None:
        n = env.get("n_intervals")
        got = env.get("integral")
        assert got is not None, "integral was never produced"
        # The trapezoid error for this integrand is O(h^2).
        assert abs(got - np.pi) < 10.0 / (n * n) + 1e-9, (
            f"integral {got} too far from pi"
        )


common.register(Trapez())
