"""Shared workload infrastructure: size grid, cost constants, registry.

Problem sizes follow Table 1 of the paper, including the per-target
variants ("To avoid too short times for the native execution, for one of
the benchmarks, MMULT, we needed to use larger problem sizes" — and QSORT
uses smaller inputs on the Cell because of the 256 KB Local Store).

Cost constants translate element-level work into CPU cycles.  They are
single-issue-2008-core magnitudes; only their ratios to the runtime
overhead constants matter for the reproduced shapes, and the unrolling
ablation sweeps that ratio explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Protocol

from repro.core.program import DDMProgram

__all__ = [
    "CostConstants",
    "ProblemSize",
    "Benchmark",
    "BENCHMARKS",
    "register",
    "get_benchmark",
    "problem_sizes",
    "chunk_bounds",
    "nthreads_for",
]

SIZE_LABELS = ("small", "medium", "large")
#: Targets as in Table 1: S = simulated (TFluxHard), N = native (TFluxSoft),
#: C = Cell (TFluxCell).
TARGETS = ("S", "N", "C")


@dataclass(frozen=True)
class CostConstants:
    """Cycles per element-level operation (see module docstring)."""

    trapez_interval: int = 12  # f(x) evaluation + accumulate (incl. fdiv)
    mmult_mac: int = 5  # one inner-loop multiply-accumulate step
    # (two loads + fmul + fadd + index bookkeeping on an in-order core)
    sort_cmp: int = 60  # one libc qsort() step: indirect cmp call on
    # string keys (MiBench qsort sorts strings), swap, partition bookkeeping
    merge_elem: int = 3  # one element through one k-way merge level (streaming)
    susan_init_pix: int = 8  # synthetic image generation per pixel
    susan_proc_pix: int = 60  # USAN window / smoothing per pixel
    susan_out_pix: int = 6  # result write-out per pixel
    fft_butterfly: int = 16  # one complex butterfly


COSTS = CostConstants()


@dataclass(frozen=True)
class ProblemSize:
    """One cell of Table 1: benchmark x target x size label."""

    bench: str
    target: str
    label: str
    params: dict

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.bench}/{self.target}/{self.label}({inner})"


class Benchmark(Protocol):
    """What every app module registers."""

    name: str

    def build(self, size: ProblemSize, unroll: int = 1) -> DDMProgram: ...

    def verify(self, env, size: ProblemSize) -> None: ...


BENCHMARKS: Dict[str, "Benchmark"] = {}

#: Table 1, encoded.  params are app-specific.
_SIZES: Dict[str, Dict[str, Dict[str, dict]]] = {
    "trapez": {
        t: {"small": {"k": 19}, "medium": {"k": 21}, "large": {"k": 23}}
        for t in TARGETS
    },
    "mmult": {
        "S": {"small": {"n": 64}, "medium": {"n": 128}, "large": {"n": 256}},
        "N": {"small": {"n": 256}, "medium": {"n": 512}, "large": {"n": 1024}},
        "C": {"small": {"n": 256}, "medium": {"n": 512}, "large": {"n": 1024}},
    },
    "qsort": {
        "S": {"small": {"n": 10_000}, "medium": {"n": 20_000}, "large": {"n": 50_000}},
        "N": {"small": {"n": 10_000}, "medium": {"n": 20_000}, "large": {"n": 50_000}},
        "C": {"small": {"n": 3_000}, "medium": {"n": 6_000}, "large": {"n": 12_000}},
    },
    # Dynamic-graph workloads (no Table-1 row; sizes mirror qsort's, and
    # quad's tolerance grid deepens the adaptive tree one decade per step).
    "qsort_rec": {
        "S": {"small": {"n": 10_000}, "medium": {"n": 20_000}, "large": {"n": 50_000}},
        "N": {"small": {"n": 10_000}, "medium": {"n": 20_000}, "large": {"n": 50_000}},
        "C": {"small": {"n": 3_000}, "medium": {"n": 6_000}, "large": {"n": 12_000}},
    },
    "quad": {
        t: {
            "small": {"eps": 1e-4},
            "medium": {"eps": 1e-6},
            "large": {"eps": 1e-8},
        }
        for t in TARGETS
    },
    "susan": {
        t: {
            "small": {"w": 256, "h": 288},
            "medium": {"w": 512, "h": 576},
            "large": {"w": 1024, "h": 576},
        }
        for t in TARGETS
    },
    "fft": {
        t: {"small": {"n": 32}, "medium": {"n": 64}, "large": {"n": 128}}
        for t in TARGETS
    },
}


def register(bench: "Benchmark") -> "Benchmark":
    BENCHMARKS[bench.name] = bench
    return bench


def get_benchmark(name: str) -> "Benchmark":
    return BENCHMARKS[name]


def problem_sizes(bench: str, target: str = "S") -> Dict[str, ProblemSize]:
    """The S/M/L grid of one benchmark for one target platform."""
    table = _SIZES[bench][target]
    return {
        label: ProblemSize(bench, target, label, dict(params))
        for label, params in table.items()
    }


# -- decomposition helpers -----------------------------------------------------
#: Graph-construction modes every app's ``build`` accepts: arcs declared
#: by hand (the paper's DDMCPP style) or derived from the DThreads'
#: access summaries (:meth:`~repro.core.builder.ProgramBuilder.auto_depends`).
DEPS_MODES = ("declared", "derived")


def finish_graph(builder, deps: str, declare) -> None:
    """Close a builder's graph in the requested *deps* mode.

    ``"declared"`` runs *declare()* (the hand-written ``depends`` calls);
    ``"derived"`` computes the arcs from the access summaries instead.
    Control arcs that carry no data (conditional arcs, arcs into threads
    without accesses) must be declared outside *declare* — the deriver
    cannot see them in either mode.
    """
    if deps not in DEPS_MODES:
        raise ValueError(f"deps must be one of {DEPS_MODES}, got {deps!r}")
    if deps == "declared":
        declare()
    else:
        builder.auto_depends()


def nthreads_for(base_iterations: int, unroll: int) -> int:
    """DThread count for a parallel loop of *base_iterations* units.

    The paper's unroll factor makes each DThread *unroll* times coarser;
    we never go below one thread.
    """
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    return max(1, math.ceil(base_iterations / unroll))


def chunk_bounds(total: int, nchunks: int, i: int) -> tuple[int, int]:
    """Balanced [lo, hi) bounds of chunk *i* of *total* items."""
    base, rem = divmod(total, nchunks)
    lo = i * base + min(i, rem)
    hi = lo + base + (1 if i < rem else 0)
    return lo, hi
