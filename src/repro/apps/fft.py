"""FFT — 2-D FFT over an NxN complex matrix (NAS-derived, Table 1).

"FFT ... operates on the data in phases, which can only be parallelized
independently.  The limitation in the speedup comes from the fact that
there is an implicit synchronization overhead between the phases"
(§6.1.2).

Structure (a 2-D decimation of the NAS FT kernel):

* ``fft_rows[c]`` — 1-D FFTs along every row of the chunk;
* ``fft_cols[c]`` — 1-D FFTs along the columns (strided access!);
* ``checksum[c]`` + ``reduce`` — NAS-style checksum of the spectrum, the
  small serial tail that (together with the two barriers) keeps FFT's
  speedup below the embarrassingly-parallel kernels.

After both FFT phases, ``X == numpy.fft.fft2(X0)`` exactly, which the
verifier checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps import common
from repro.apps.common import COSTS, ProblemSize, chunk_bounds
from repro.core.builder import ProgramBuilder
from repro.core.program import DDMProgram
from repro.sim.accesses import AccessSummary

__all__ = ["FFT", "initial_matrix"]

COMPLEX_BYTES = 16


def initial_matrix(n: int) -> np.ndarray:
    """Deterministic pseudo-random complex input (NAS FT-style)."""
    rng = np.random.default_rng(seed=1234 + n)
    return (rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))).astype(
        np.complex128
    )


class FFT:
    name = "fft"

    def build(
        self,
        size: ProblemSize,
        unroll: int = 1,
        max_threads: int = 4096,
        deps: str = "declared",
    ) -> DDMProgram:
        n = size.params["n"]
        nthreads = min(common.nthreads_for(n, unroll), max_threads, n)
        butterflies_per_line = (n // 2) * max(1, int(math.log2(n)))

        b = ProgramBuilder(f"fft[{size.label}]")
        b.env.alloc("X", (n, n), dtype=np.complex128)
        b.env.alloc("parts", nthreads, dtype=np.complex128)
        regX = b.env.region("X")
        reg_parts = b.env.region("parts")
        b.env.set("n", n)

        def init_body(env):
            env.array("X")[...] = initial_matrix(n)

        b.prologue(
            "init",
            body=init_body,
            cost=lambda env: 6 * n * n,
            accesses=lambda env: AccessSummary().write(regX, elem_size=COMPLEX_BYTES),
        )

        def bounds(i):
            return chunk_bounds(n, nthreads, i)

        # -- phase 1: row FFTs -------------------------------------------------
        def rows_body(env, i):
            lo, hi = bounds(i)
            x = env.array("X")
            x[lo:hi] = np.fft.fft(x[lo:hi], axis=1)

        def rows_cost(env, i):
            lo, hi = bounds(i)
            return (hi - lo) * butterflies_per_line * COSTS.fft_butterfly

        def rows_accesses(env, i):
            lo, hi = bounds(i)
            count = (hi - lo) * n
            reps = max(1, int(math.log2(n)))
            s = AccessSummary()
            s.read(regX, offset=lo * n * COMPLEX_BYTES, count=count,
                   elem_size=COMPLEX_BYTES, reps=reps)
            s.write(regX, offset=lo * n * COMPLEX_BYTES, count=count,
                    elem_size=COMPLEX_BYTES)
            return s

        t_rows = b.thread(
            "fft_rows", body=rows_body, contexts=nthreads,
            cost=rows_cost, accesses=rows_accesses,
        )

        # -- phase 2: column FFTs (strided) ------------------------------------------
        def cols_body(env, i):
            lo, hi = bounds(i)
            x = env.array("X")
            x[:, lo:hi] = np.fft.fft(x[:, lo:hi], axis=0)

        def cols_cost(env, i):
            lo, hi = bounds(i)
            return (hi - lo) * butterflies_per_line * COSTS.fft_butterfly

        def cols_accesses(env, i):
            lo, hi = bounds(i)
            width = hi - lo
            reps = max(1, int(math.log2(n)))
            s = AccessSummary()
            # One strided sweep: a (width*16)-byte slab out of every row.
            s.read(regX, offset=lo * COMPLEX_BYTES, count=n,
                   elem_size=width * COMPLEX_BYTES, stride=n * COMPLEX_BYTES,
                   reps=reps)
            s.write(regX, offset=lo * COMPLEX_BYTES, count=n,
                    elem_size=width * COMPLEX_BYTES, stride=n * COMPLEX_BYTES)
            return s

        t_cols = b.thread(
            "fft_cols", body=cols_body, contexts=nthreads,
            cost=cols_cost, accesses=cols_accesses,
        )

        # -- phase 3: NAS-style checksum -------------------------------------------
        def cksum_body(env, i):
            lo, hi = bounds(i)
            env.array("parts")[i] = env.array("X")[lo:hi].sum()

        def cksum_cost(env, i):
            lo, hi = bounds(i)
            return (hi - lo) * n * 4

        def cksum_accesses(env, i):
            lo, hi = bounds(i)
            s = AccessSummary()
            s.read(regX, offset=lo * n * COMPLEX_BYTES, count=(hi - lo) * n,
                   elem_size=COMPLEX_BYTES)
            s.write(reg_parts, offset=i * COMPLEX_BYTES, count=1,
                    elem_size=COMPLEX_BYTES)
            return s

        t_cksum = b.thread(
            "checksum", body=cksum_body, contexts=nthreads,
            cost=cksum_cost, accesses=cksum_accesses,
        )

        def reduce_body(env, _):
            env.set("checksum", complex(env.array("parts").sum()))

        t_reduce = b.thread(
            "reduce",
            body=reduce_body,
            cost=lambda env, _: nthreads * 6,
            accesses=lambda env, _: AccessSummary().read(
                reg_parts, count=nthreads, elem_size=COMPLEX_BYTES
            ),
        )
        def declare():
            b.depends(t_rows, t_cols, "all")
            b.depends(t_cols, t_cksum, "all")
            b.depends(t_cksum, t_reduce, "all")

        common.finish_graph(b, deps, declare)
        return b.build()

    def verify(self, env, size: ProblemSize) -> None:
        n = env.get("n")
        expected = np.fft.fft2(initial_matrix(n))
        np.testing.assert_allclose(env.array("X"), expected, rtol=1e-9, atol=1e-6)
        assert env.get("checksum") is not None
        np.testing.assert_allclose(env.get("checksum"), expected.sum(), rtol=1e-9)


common.register(FFT())
