"""QUAD — adaptive quadrature over dynamic subflows and conditional arcs.

Adaptive Simpson integration of a sharply peaked integrand,
``f(x) = 1 / (x^2 + a^2)`` on [0, 1] (analytic value ``atan(1/a)/a``):
each ``quad`` DThread compares the Simpson estimate of its interval with
the two-half refinement and either

* **accepts** — appends its contribution to the shared list and returns
  ``None`` (a leaf), or
* **refines** — spawns a :class:`~repro.core.dynamic.Subflow` with two
  child intervals.

The refinement pattern is purely data-driven: the peak near 0 subdivides
many levels deeper than the flat tail, a graph no static unrolling can
anticipate.  A final ``check`` DThread demonstrates *conditional arcs*:
it inspects the accumulated error estimate and steers, by its return
value, either the ``accept`` or the ``flag`` successor — the unchosen
branch is squashed.

Contributions are summed **sorted by interval start** in the epilogue,
so the floating-point total is independent of the schedule that produced
it (the functional/timing invariant extends to dynamic graphs).
"""

from __future__ import annotations

import math

from repro.apps import common
from repro.apps.common import ProblemSize
from repro.core.builder import ProgramBuilder
from repro.core.dynamic import Subflow
from repro.core.program import DDMProgram

__all__ = ["Quad"]

#: Peak sharpness of the integrand (smaller = deeper adaptive tree).
PEAK_A = 0.05
#: Cycles per integrand evaluation (Simpson needs ~6 per decision).
EVAL_CYCLES = 40
#: Refinement depth cap — termination guard, never reached at the
#: Table-style tolerances.
MAX_DEPTH = 30


def _f(x: float) -> float:
    return 1.0 / (x * x + PEAK_A * PEAK_A)


def _simpson(a: float, b: float) -> float:
    return (b - a) / 6.0 * (_f(a) + 4.0 * _f(0.5 * (a + b)) + _f(b))


class Quad:
    name = "quad"

    def build(
        self,
        size: ProblemSize,
        unroll: int = 1,
        max_threads: int = 4096,
        deps: str = "declared",
    ) -> DDMProgram:
        # The unroll factor keeps its coarsening meaning: it relaxes the
        # tolerance, producing fewer, coarser leaf intervals.
        eps = size.params["eps"] * unroll

        b = ProgramBuilder(f"quad[{size.label}]")
        b.env.set("contribs", [])
        b.env.set("eps", eps)

        def make_quad(a: float, fb: float, depth: int):
            def body(env, ctx):
                whole = _simpson(a, fb)
                m = 0.5 * (a + fb)
                halves = _simpson(a, m) + _simpson(m, fb)
                err = abs(halves - whole) / 15.0
                if err <= eps * (fb - a) or depth >= MAX_DEPTH:
                    env.get("contribs").append((a, halves))
                    if depth == 0:
                        env.set("root_mode", "direct")
                    return None
                if depth == 0:
                    env.set("root_mode", "refined")
                sf = Subflow(f"refine[{a:.6g}:{fb:.6g}]")
                sf.thread(
                    f"quad[{a:.6g}:{m:.6g}]",
                    body=make_quad(a, m, depth + 1),
                    cost=lambda env, _c: 6 * EVAL_CYCLES,
                )
                sf.thread(
                    f"quad[{m:.6g}:{fb:.6g}]",
                    body=make_quad(m, fb, depth + 1),
                    cost=lambda env, _c: 6 * EVAL_CYCLES,
                )
                return sf

            return body

        t_root = b.thread(
            "quad[0:1]",
            body=make_quad(0.0, 1.0, 0),
            cost=lambda env, _c: 6 * EVAL_CYCLES,
        )

        # Conditional tail: check steers exactly one of its successors by
        # its return value — the road the root did NOT take is squashed.
        # (check runs in the root's block, before the spawned refinement
        # drains, so it may only branch on data the root already wrote.)
        def check_body(env, _c):
            return env.get("root_mode")

        t_check = b.thread("check", body=check_body, cost=lambda env, _c: 20)
        t_direct = b.thread(
            "direct", body=lambda env, _c: env.set("verdict", "direct")
        )
        t_refined = b.thread(
            "refined", body=lambda env, _c: env.set("verdict", "refined")
        )
        # Control/conditional arcs: every thread here is opaque (no access
        # summaries), so these stay declared in both deps modes and the
        # deriver has nothing to add.
        b.depends(t_root, t_check)
        b.cond(t_check, t_direct, "direct")
        b.cond(t_check, t_refined, "refined")
        common.finish_graph(b, deps, lambda: None)

        def total_body(env):
            env.set("total", sum(v for _a, v in sorted(env.get("contribs"))))

        b.epilogue("sum", body=total_body, cost=lambda env: len(env.get("contribs")))
        return b.build()

    def verify(self, env, size: ProblemSize) -> None:
        analytic = math.atan(1.0 / PEAK_A) / PEAK_A
        total = env.get("total")
        eps = env.get("eps")
        assert abs(total - analytic) <= max(100 * eps, 1e-6 * analytic), (
            f"integral {total} vs analytic {analytic} (eps={eps})"
        )
        assert env.get("verdict") == env.get("root_mode")


common.register(Quad())
