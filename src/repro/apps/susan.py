"""SUSAN — image recognition / smoothing (MiBench, Table 1).

"SUSAN has three distinct phases which have been parallelized
independently, the initialization phase, the processing phase and the one
during which the results are written to a large output array" (§6.1.2).

We reproduce exactly that structure over a synthetic grayscale image:

* ``init[r]`` — generate the image rows (a deterministic pattern standing
  in for the MiBench input frame, which we do not ship);
* ``smooth[r]`` — brightness-weighted 3x3 smoothing (the USAN-style
  kernel: neighbours similar in brightness to the centre get full weight,
  dissimilar ones are attenuated — SUSAN's core idea);
* ``output[r]`` — quantise the smoothed rows into the 8-bit output array.

Phases are separated by "all" arcs (the paper's independently-parallelised
phases imply barriers); rows are chunked by the unroll factor.
"""

from __future__ import annotations

import numpy as np

from repro.apps import common
from repro.apps.common import COSTS, ProblemSize, chunk_bounds
from repro.core.builder import ProgramBuilder
from repro.core.program import DDMProgram
from repro.sim.accesses import AccessSummary

__all__ = ["Susan", "synthetic_image", "smooth_oracle"]

#: Brightness-similarity threshold of the USAN weighting.
BRIGHTNESS_T = 20.0


def synthetic_image(w: int, h: int) -> np.ndarray:
    """Deterministic test frame: smooth gradients plus sharp structures."""
    y, x = np.mgrid[0:h, 0:w]
    img = (
        96.0
        + 64.0 * np.sin(2 * np.pi * x / 64.0)
        + 48.0 * np.cos(2 * np.pi * y / 48.0)
    )
    img += np.where((x // 32 + y // 32) % 2 == 0, 40.0, -40.0)  # checkers (edges)
    return np.clip(img, 0.0, 255.0)


def _smooth_rows(img: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """USAN-weighted 3x3 mean of rows [lo, hi) with edge clamping."""
    h, w = img.shape
    # Build a (hi-lo+2, w+2) window around the rows, clamped at the edges.
    top = max(lo - 1, 0)
    bot = min(hi + 1, h)
    win = np.pad(img[top:bot], ((0, 0), (1, 1)), mode="edge")
    if lo == 0:
        win = np.vstack([win[:1], win])
    if hi == h:
        win = np.vstack([win, win[-1:]])
    centre = win[1:-1, 1:-1]
    num = np.zeros_like(centre)
    den = np.zeros_like(centre)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            nb = win[1 + dy:win.shape[0] - 1 + dy, 1 + dx:win.shape[1] - 1 + dx]
            wgt = np.exp(-((nb - centre) / BRIGHTNESS_T) ** 2)
            num += wgt * nb
            den += wgt
    return num / den


def smooth_oracle(img: np.ndarray) -> np.ndarray:
    """Whole-image smoothing (test oracle)."""
    return _smooth_rows(img, 0, img.shape[0])


class Susan:
    name = "susan"

    def build(
        self,
        size: ProblemSize,
        unroll: int = 1,
        max_threads: int = 4096,
        deps: str = "declared",
    ) -> DDMProgram:
        w, h = size.params["w"], size.params["h"]
        nthreads = min(common.nthreads_for(h, unroll), max_threads, h)

        b = ProgramBuilder(f"susan[{size.label}]")
        b.env.alloc("img", (h, w))
        b.env.alloc("sm", (h, w))
        b.env.alloc("out", (h, w), dtype=np.uint8)
        reg_img, reg_sm, reg_out = (b.env.region(x) for x in ("img", "sm", "out"))
        b.env.set("w", w)
        b.env.set("h", h)

        def rows(i):
            return chunk_bounds(h, nthreads, i)

        # -- phase 1: init -------------------------------------------------------
        full = synthetic_image(w, h)  # closed over; rows copied per thread

        def init_body(env, i):
            lo, hi = rows(i)
            env.array("img")[lo:hi] = full[lo:hi]

        def init_cost(env, i):
            lo, hi = rows(i)
            return (hi - lo) * w * COSTS.susan_init_pix

        def init_accesses(env, i):
            lo, hi = rows(i)
            return AccessSummary().write(
                reg_img, offset=lo * w * 8, count=(hi - lo) * w, resident=False
            )

        t_init = b.thread(
            "init", body=init_body, contexts=nthreads, cost=init_cost,
            accesses=init_accesses,
        )

        # -- phase 2: smoothing -----------------------------------------------------
        def smooth_body(env, i):
            lo, hi = rows(i)
            env.array("sm")[lo:hi] = _smooth_rows(env.array("img"), lo, hi)

        def smooth_cost(env, i):
            lo, hi = rows(i)
            return (hi - lo) * w * COSTS.susan_proc_pix

        def smooth_accesses(env, i):
            lo, hi = rows(i)
            rlo, rhi = max(lo - 1, 0), min(hi + 1, h)
            s = AccessSummary()
            # Row-sequential with a one-row halo: streamable on scratchpads.
            s.read(reg_img, offset=rlo * w * 8, count=(rhi - rlo) * w, resident=False)
            s.write(reg_sm, offset=lo * w * 8, count=(hi - lo) * w, resident=False)
            return s

        t_smooth = b.thread(
            "smooth", body=smooth_body, contexts=nthreads, cost=smooth_cost,
            accesses=smooth_accesses,
        )

        # -- phase 3: write-out --------------------------------------------------------
        def out_body(env, i):
            lo, hi = rows(i)
            env.array("out")[lo:hi] = np.clip(
                np.rint(env.array("sm")[lo:hi]), 0, 255
            ).astype(np.uint8)

        def out_cost(env, i):
            lo, hi = rows(i)
            return (hi - lo) * w * COSTS.susan_out_pix

        def out_accesses(env, i):
            lo, hi = rows(i)
            s = AccessSummary()
            s.read(reg_sm, offset=lo * w * 8, count=(hi - lo) * w, resident=False)
            s.write(
                reg_out, offset=lo * w, count=(hi - lo) * w, elem_size=1,
                stride=1, resident=False,
            )
            return s

        t_out = b.thread(
            "output", body=out_body, contexts=nthreads, cost=out_cost,
            accesses=out_accesses,
        )
        def declare():
            # The paper's barriers; the deriver instead finds the exact
            # halo-shaped init->smooth map and a "same" smooth->output arc
            # (check_deps flags the "all" arcs below as over-wide).
            b.depends(t_init, t_smooth, "all")
            b.depends(t_smooth, t_out, "all")

        common.finish_graph(b, deps, declare)
        return b.build()

    def verify(self, env, size: ProblemSize) -> None:
        w, h = size.params["w"], size.params["h"]
        img = synthetic_image(w, h)
        np.testing.assert_allclose(env.array("img"), img, atol=1e-12)
        expected = smooth_oracle(img)
        np.testing.assert_allclose(env.array("sm"), expected, rtol=1e-9, atol=1e-9)
        np.testing.assert_array_equal(
            env.array("out"),
            np.clip(np.rint(expected), 0, 255).astype(np.uint8),
        )


common.register(Susan())
