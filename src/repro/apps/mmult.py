"""MMULT — dense matrix multiply (custom kernel, Table 1).

C = A @ B over NxN doubles.  The row loop is the parallel loop: a DThread
computes ``unroll`` consecutive rows of C.  MMULT is embarrassingly
parallel "but suffers from a large number of coherency misses, limiting
it from achieving the idealized speedup" (§6.1.2): the prologue
initialises A and B on one core, so every other kernel's first sweep over
B pays coherence transfers, and B's footprint (512 KB at N=256) streams
through the L2 on every row pass.
"""

from __future__ import annotations

import numpy as np

from repro.apps import common
from repro.apps.common import COSTS, ProblemSize, chunk_bounds
from repro.core.builder import ProgramBuilder
from repro.core.program import DDMProgram
from repro.sim.accesses import AccessSummary

__all__ = ["MMult"]


def _make_inputs(n: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed=n)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


class MMult:
    name = "mmult"

    def build(
        self,
        size: ProblemSize,
        unroll: int = 1,
        max_threads: int = 4096,
        deps: str = "declared",
    ) -> DDMProgram:
        n = size.params["n"]
        nthreads = min(common.nthreads_for(n, unroll), max_threads, n)

        b = ProgramBuilder(f"mmult[{size.label}]")
        b.env.alloc("A", (n, n))
        b.env.alloc("B", (n, n))
        b.env.alloc("C", (n, n))
        regA, regB, regC = (b.env.region(x) for x in "ABC")
        b.env.set("n", n)

        def init_body(env):
            a, bm = _make_inputs(n)
            env.array("A")[...] = a
            env.array("B")[...] = bm

        def init_cost(env):
            return 2 * n * n  # generator + store per element

        def init_accesses(env):
            return AccessSummary().write(regA).write(regB)

        b.prologue("init", body=init_body, cost=init_cost, accesses=init_accesses)

        def rows_body(env, i):
            lo, hi = chunk_bounds(n, nthreads, i)
            env.array("C")[lo:hi] = env.array("A")[lo:hi] @ env.array("B")

        def rows_cost(env, i):
            lo, hi = chunk_bounds(n, nthreads, i)
            return (hi - lo) * n * n * COSTS.mmult_mac

        def rows_accesses(env, i):
            lo, hi = chunk_bounds(n, nthreads, i)
            rows = hi - lo
            s = AccessSummary()
            # All three matrices are consumed/produced row-sequentially, so
            # a scratchpad (SPE Local Store) only ever needs a tile of each
            # — the SPE kernel processes one row of A/C at a time and
            # streams B through (paper §6.3 requires unroll 64 on Cell to
            # amortise exactly these DMA transfers).
            s.read(regA, offset=lo * n * 8, count=rows * n, resident=False)
            s.read(regB, resident=False)
            s.write(regC, offset=lo * n * 8, count=rows * n, resident=False)
            return s

        b.thread(
            "rows",
            body=rows_body,
            contexts=nthreads,
            cost=rows_cost,
            accesses=rows_accesses,
        )
        # Row chunks are independent (the deriver confirms: no arcs in
        # either mode — C chunks are disjoint, A/B only ever read).
        common.finish_graph(b, deps, lambda: None)
        return b.build()

    def verify(self, env, size: ProblemSize) -> None:
        n = env.get("n")
        a, bm = _make_inputs(n)
        expected = a @ bm
        np.testing.assert_allclose(env.array("C"), expected, rtol=1e-9, atol=1e-9)


common.register(MMult())
