"""The paper's experimental workload (Table 1).

Five benchmarks, each provided as (a) a plain sequential reference
implementation, (b) a DDM decomposition built with
:class:`~repro.core.builder.ProgramBuilder` — real NumPy bodies plus the
compute-cost and access-summary declarations the timing layer prices —
and (c) the paper's problem-size grid:

=========  ========  =======================================================
TRAPEZ     kernel    trapezoidal integration, 2^k intervals (k=19/21/23)
MMULT      kernel    dense matrix multiply (64..256 simulated, 256..1024 native)
QSORT      MiBench   chunk sort + two-level merge tree (10K..50K, 3K..12K Cell)
SUSAN      MiBench   image smoothing in three phases (256x288..1024x576)
FFT        NAS       2-D FFT over an NxN complex matrix in two barrier phases
=========  ========  =======================================================

Two beyond-paper workloads exercise the dynamic-graph surface (Subflow
spawning + conditional arcs), registered alongside the paper's five:

=========  ========  =======================================================
QSORT_REC  dynamic   recursive quicksort, partitions spawned as Subflows
QUAD       dynamic   adaptive quadrature, refinement chosen by cond arcs
=========  ========  =======================================================

Every app exposes ``build(size, unroll) -> DDMProgram``, ``reference`` /
``verify`` helpers, and registers itself in :data:`BENCHMARKS`.
"""

from repro.apps.common import (
    BENCHMARKS,
    CostConstants,
    ProblemSize,
    get_benchmark,
    problem_sizes,
)
from repro.apps import trapez, mmult, qsort, susan, fft  # noqa: F401 (registration)
from repro.apps import qsort_rec, quad  # noqa: F401 (dynamic-graph workloads)

__all__ = [
    "BENCHMARKS",
    "CostConstants",
    "ProblemSize",
    "get_benchmark",
    "problem_sizes",
]
