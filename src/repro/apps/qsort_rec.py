"""QSORT-REC — recursive quicksort over dynamically spawned subflows.

The static QSORT decomposition (:mod:`repro.apps.qsort`) fixes its
chunk/merge tree before execution.  This variant is the same MiBench
workload expressed the way quicksort actually recurses: one ``sort``
DThread partitions its range in place and *spawns* a
:class:`~repro.core.dynamic.Subflow` with two child sorters for the
sub-ranges — the graph unrolls at run time, driven by the pivot values,
until ranges fall under the leaf cutoff and are sorted directly.

Because partitioning is in place and children work on disjoint ranges,
no merge phase exists: the spawning Outlet→Inlet barrier is the only
synchronisation, and the result is sorted when the last leaf retires.

The *unroll* factor keeps its Table-1 meaning (coarser DThreads): it
scales the leaf cutoff, so higher unroll means fewer, larger leaves and
a shallower dynamic tree.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps import common
from repro.apps.common import COSTS, ProblemSize
from repro.core.builder import ProgramBuilder
from repro.core.dynamic import Subflow
from repro.core.program import DDMProgram
from repro.sim.accesses import AccessSummary

__all__ = ["QSortRec"]

#: Leaves at unroll 1 (the cutoff is sized so a balanced recursion
#: produces about this many); the unroll factor divides it.
BASE_LEAVES = 64


class QSortRec:
    name = "qsort_rec"

    def build(
        self,
        size: ProblemSize,
        unroll: int = 1,
        max_threads: int = 4096,
        deps: str = "declared",
    ) -> DDMProgram:
        n = size.params["n"]
        nleaves = max(1, min(common.nthreads_for(BASE_LEAVES, unroll), max_threads, n))
        cutoff = max(32, -(-n // nleaves))

        b = ProgramBuilder(f"qsort_rec[{size.label}]")
        b.env.alloc("data", n)
        reg_data = b.env.region("data")
        b.env.set("n", n)

        def init_body(env):
            rng = np.random.default_rng(seed=n)
            env.array("data")[...] = rng.permutation(n).astype(np.float64)

        b.prologue(
            "init",
            body=init_body,
            cost=lambda env: 4 * n,
            accesses=lambda env: AccessSummary().write(reg_data),
        )

        def leaf_cost(m: int) -> int:
            m = max(m, 2)
            return int(m * math.log2(m) * COSTS.sort_cmp)

        def range_accesses(lo: int, hi: int) -> AccessSummary:
            m = max(hi - lo, 1)
            reps = max(1, int(math.log2(max(m, 2))))
            s = AccessSummary()
            s.read(reg_data, offset=lo * 8, count=m, reps=reps)
            s.write(reg_data, offset=lo * 8, count=m, reps=reps)
            return s

        def make_sorter(lo: int, hi: int):
            """Body of the sort DThread for [lo, hi): partition or leaf."""

            def body(env, ctx):
                d = env.array("data")
                m = hi - lo
                if m <= cutoff:
                    d[lo:hi] = np.sort(d[lo:hi], kind="quicksort")
                    return None
                seg = d[lo:hi]
                # Deterministic median-of-three pivot: recursion shape
                # depends only on the data, never on the schedule.
                pivot = float(np.median([seg[0], seg[m // 2], seg[m - 1]]))
                left = seg[seg < pivot]
                mid = seg[seg == pivot]
                right = seg[seg > pivot]
                d[lo:hi] = np.concatenate([left, mid, right])
                p0 = lo + len(left)
                p1 = p0 + len(mid)
                sf = Subflow(f"split[{lo}:{hi}]")
                if p0 > lo:
                    sf.thread(
                        f"sort[{lo}:{p0}]",
                        body=make_sorter(lo, p0),
                        cost=lambda env, _c, m=p0 - lo: partition_cost(m),
                        accesses=lambda env, _c, a=lo, z=p0: range_accesses(a, z),
                    )
                if hi > p1:
                    sf.thread(
                        f"sort[{p1}:{hi}]",
                        body=make_sorter(p1, hi),
                        cost=lambda env, _c, m=hi - p1: partition_cost(m),
                        accesses=lambda env, _c, a=p1, z=hi: range_accesses(a, z),
                    )
                return sf if sf.ninstances else None

            return body

        def partition_cost(m: int) -> int:
            # One partition pass for an internal node, n log n for a leaf;
            # the cost model cannot see the pivot, so it prices the
            # pessimistic (leaf) case — cycle-dominant either way.
            return leaf_cost(min(m, cutoff)) if m <= cutoff else m * COSTS.sort_cmp

        b.thread(
            "sort[root]",
            body=make_sorter(0, n),
            cost=lambda env, _c: partition_cost(n),
            accesses=lambda env, _c: range_accesses(0, n),
        )
        b.thread("done", body=lambda env, _c: env.set("sorted", True))
        # Control arc: "done" is opaque (no access summary), so the
        # deriver cannot see this ordering — it stays declared in both
        # deps modes and auto_depends adds nothing on top.
        b.depends(1, 2)
        common.finish_graph(b, deps, lambda: None)
        return b.build()

    def verify(self, env, size: ProblemSize) -> None:
        n = env.get("n")
        data = env.array("data")
        assert env.get("sorted") is True
        np.testing.assert_array_equal(data, np.arange(n, dtype=np.float64))


common.register(QSortRec())
