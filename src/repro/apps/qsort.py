"""QSORT — array sorting (MiBench, Table 1).

"In QSORT each DThread sorts one part of the array.  At the end, these
sorted sub-arrays are merged to produce the final one.  This last phase
is the bottleneck for this application as its execution time is
comparable to that of the sorting operation.  The current application is
written with a two-level tree to do the merging" (§6.1.2).

Decomposition:

* ``sort[i]`` — quicksort of part *i* in place (parts get coarser with the
  unroll factor);
* ``merge1[g]`` — four level-1 DThreads, each k-way-merging its quarter of
  the sorted parts into ``tmp``;
* ``merge2`` — the final (serial-bottleneck) merge of the four runs back
  into ``data``.

The prologue initialises the array on one core — the cache hand-off the
paper uses to explain the non-monotonic native results (§6.2.2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps import common
from repro.apps.common import COSTS, ProblemSize, chunk_bounds
from repro.core.builder import ProgramBuilder
from repro.core.program import DDMProgram
from repro.sim.accesses import AccessSummary

__all__ = ["QSort"]

#: Parts at unroll 1; the unroll factor divides this (two-level tree needs
#: at least one part per level-1 merge group).
BASE_PARTS = 256
MERGE_GROUPS = 4


def _merge_runs(runs: list[np.ndarray]) -> np.ndarray:
    """Iterative pairwise merge of sorted runs (real k-way merge work)."""
    if not runs:
        return np.empty(0)
    work = list(runs)
    while len(work) > 1:
        merged = []
        for j in range(0, len(work) - 1, 2):
            a, b = work[j], work[j + 1]
            out = np.empty(len(a) + len(b), dtype=a.dtype)
            ia = ib = io = 0
            # NumPy-vectorised two-way merge via searchsorted placement.
            pos = np.searchsorted(a, b, side="right")
            out[pos + np.arange(len(b))] = b
            mask = np.ones(len(out), dtype=bool)
            mask[pos + np.arange(len(b))] = False
            out[mask] = a
            del ia, ib, io
            merged.append(out)
        if len(work) % 2:
            merged.append(work[-1])
        work = merged
    return work[0]


class QSort:
    name = "qsort"

    def build(
        self,
        size: ProblemSize,
        unroll: int = 1,
        max_threads: int = 4096,
        deps: str = "declared",
    ) -> DDMProgram:
        n = size.params["n"]
        nparts = max(MERGE_GROUPS, min(common.nthreads_for(BASE_PARTS, unroll), max_threads, n))
        # Keep parts a multiple of the merge groups for a regular tree.
        nparts -= nparts % MERGE_GROUPS

        b = ProgramBuilder(f"qsort[{size.label}]")
        b.env.alloc("data", n)
        b.env.alloc("tmp", n)
        reg_data = b.env.region("data")
        reg_tmp = b.env.region("tmp")
        b.env.set("n", n)

        def init_body(env):
            rng = np.random.default_rng(seed=n)
            env.array("data")[...] = rng.permutation(n).astype(np.float64)

        b.prologue(
            "init",
            body=init_body,
            cost=lambda env: 4 * n,
            accesses=lambda env: AccessSummary().write(reg_data),
        )

        # -- phase 1: sort each part in place --------------------------------
        def part_bounds(i):
            return chunk_bounds(n, nparts, i)

        def sort_body(env, i):
            lo, hi = part_bounds(i)
            d = env.array("data")
            d[lo:hi] = np.sort(d[lo:hi], kind="quicksort")

        def sort_cost(env, i):
            lo, hi = part_bounds(i)
            m = max(hi - lo, 2)
            return int(m * math.log2(m) * COSTS.sort_cmp)

        def sort_accesses(env, i):
            lo, hi = part_bounds(i)
            m = hi - lo
            reps = max(1, int(math.log2(max(m, 2))))
            s = AccessSummary()
            s.read(reg_data, offset=lo * 8, count=m, reps=reps)
            s.write(reg_data, offset=lo * 8, count=m, reps=reps)
            return s

        t_sort = b.thread(
            "sort",
            body=sort_body,
            contexts=nparts,
            cost=sort_cost,
            accesses=sort_accesses,
        )

        # -- phase 2: four level-1 merges into tmp ------------------------------
        parts_per_group = nparts // MERGE_GROUPS

        def group_bounds(g):
            # A group's span is the union of its parts' spans (parts are
            # not all equal-sized, so this must follow part boundaries).
            glo = part_bounds(g * parts_per_group)[0]
            ghi = part_bounds((g + 1) * parts_per_group - 1)[1]
            return glo, ghi

        def merge1_body(env, g):
            d = env.array("data")
            runs = []
            for i in range(g * parts_per_group, (g + 1) * parts_per_group):
                lo, hi = part_bounds(i)
                runs.append(d[lo:hi].copy())
            glo, ghi = group_bounds(g)
            env.array("tmp")[glo:ghi] = _merge_runs(runs)

        def merge1_cost(env, g):
            glo, ghi = group_bounds(g)
            passes = max(1, int(math.ceil(math.log2(max(parts_per_group, 2)))))
            return (ghi - glo) * passes * COSTS.merge_elem

        def merge1_accesses(env, g):
            glo, ghi = group_bounds(g)
            m = ghi - glo
            s = AccessSummary()
            s.read(reg_data, offset=glo * 8, count=m)
            s.write(reg_tmp, offset=glo * 8, count=m)
            return s

        t_merge1 = b.thread(
            "merge1",
            body=merge1_body,
            contexts=MERGE_GROUPS,
            cost=merge1_cost,
            accesses=merge1_accesses,
        )

        # -- phase 3: final merge (the bottleneck) ---------------------------------
        def merge2_body(env, _):
            t = env.array("tmp")
            runs = []
            for g in range(MERGE_GROUPS):
                glo, ghi = group_bounds(g)
                runs.append(t[glo:ghi].copy())
            env.array("data")[...] = _merge_runs(runs)

        def merge2_cost(env, _):
            passes = int(math.ceil(math.log2(MERGE_GROUPS)))
            return n * passes * COSTS.merge_elem

        def merge2_accesses(env, _):
            return AccessSummary().read(reg_tmp).write(reg_data)

        t_merge2 = b.thread(
            "merge2", body=merge2_body, cost=merge2_cost, accesses=merge2_accesses
        )
        def declare():
            # sort part i feeds the level-1 merge of its group.
            b.depends(t_sort, t_merge1, mapping=lambda i: [i * MERGE_GROUPS // nparts])
            b.depends(t_merge1, t_merge2, "all")

        common.finish_graph(b, deps, declare)
        return b.build()

    def verify(self, env, size: ProblemSize) -> None:
        n = env.get("n")
        data = env.array("data")
        assert np.all(np.diff(data) >= 0), "output not sorted"
        # The input was a permutation of 0..n-1.
        np.testing.assert_array_equal(data, np.arange(n, dtype=np.float64))


common.register(QSort())
