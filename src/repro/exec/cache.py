"""Content-addressed on-disk cache for simulation job results.

Every harness job (one ``(platform config, benchmark, size, kernel
count, unroll)`` cell, see :mod:`repro.exec.pool`) is a *pure function*
of its spec and of the simulator sources: programs are rebuilt fresh per
run and the DES models are deterministic.  That makes results safely
content-addressable — the cache key is a SHA-256 digest over

* the full job spec, including every cost-model parameter reachable from
  the platform object (machine config, cache/DRAM latencies, TSU cost
  tables, Cell parameters, ...), and
* a *source fingerprint*: the hash of every ``.py`` file of the
  installed :mod:`repro` package, so editing any model invalidates all
  previously cached cycles.

The cache directory is taken from the ``TFLUX_CACHE_DIR`` environment
variable; when it is unset or empty, caching is disabled.  Entries are
pickled :class:`~repro.exec.pool.JobOutcome` objects whose ``result`` is
the env-free :class:`~repro.obs.RunRecord` (the cache stores *timing*
results — cycle counts, counters, spans — never program state,
preserving the functional/timing split).  Reads additionally refuse
records carrying a stale ``schema_version``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "ResultCache",
    "cache_from_env",
    "describe",
    "source_fingerprint",
    "spec_digest",
]

#: Bump to invalidate every existing cache entry (format changes).
CACHE_FORMAT = 1

ENV_CACHE_DIR = "TFLUX_CACHE_DIR"


def describe(obj: Any) -> Any:
    """A JSON-able canonical description of *obj* for digesting.

    Recurses through dataclasses (machine configs, cost tables, problem
    sizes) and plain containers; arbitrary objects (platform instances)
    contribute their class identity plus their instance ``__dict__``, so
    any constructor parameter — e.g. ``TFluxHard(tsu_processing_cycles=8)``
    — lands in the digest.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: describe(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": _qualname(obj), **body}
    if isinstance(obj, dict):
        return {str(k): describe(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [describe(x) for x in items]
    if hasattr(obj, "__dict__"):
        body = {k: describe(v) for k, v in sorted(vars(obj).items())}
        return {"__class__": _qualname(obj), **body}
    return repr(obj)


def _qualname(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


_FINGERPRINT: Optional[str] = None


def source_fingerprint() -> str:
    """Digest of every ``.py`` source file of the :mod:`repro` package.

    Computed once per process.  Any edit to the simulator, the TSU
    models, the workloads — anything under ``repro/`` — changes the
    fingerprint and therefore invalidates all cached results.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


def spec_digest(spec: Any) -> str:
    """The content address of one job spec (hex SHA-256)."""
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "sources": source_fingerprint(),
            "spec": describe(spec),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Pickle-per-entry cache in ``<root>/<digest[:2]>/<digest>.pkl``.

    Reads tolerate missing or corrupt entries (treated as misses);
    writes are atomic (temp file + rename) so concurrent workers and
    concurrent harness runs can share one directory.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[Any]:
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            self.misses += 1
            return None
        if not self._schema_ok(value):
            self.misses += 1
            return None
        self.hits += 1
        return value

    @staticmethod
    def _schema_ok(value: Any) -> bool:
        """Refuse entries whose RunRecord predates the current schema.

        The source fingerprint already invalidates on any ``repro`` code
        edit, but a cache directory can outlive an install (or be shared
        across checkouts); a stale record deserialising silently into a
        newer field set is the failure mode this guards against.
        """
        record = getattr(value, "result", None)
        if record is None:
            return True
        from repro.obs import SCHEMA_VERSION

        return getattr(record, "schema_version", None) == SCHEMA_VERSION

    def put(self, digest: str, value: Any) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))


def cache_from_env() -> Optional[ResultCache]:
    """The cache named by ``TFLUX_CACHE_DIR``, or ``None`` when unset."""
    root = os.environ.get(ENV_CACHE_DIR, "").strip()
    if not root:
        return None
    return ResultCache(root)
