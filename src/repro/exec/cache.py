"""Content-addressed on-disk cache for simulation job results.

Every harness job (one ``(platform config, benchmark, size, kernel
count, unroll)`` cell, see :mod:`repro.exec.pool`) is a *pure function*
of its spec and of the simulator sources: programs are rebuilt fresh per
run and the DES models are deterministic.  That makes results safely
content-addressable — the cache key is a SHA-256 digest over

* the full job spec, including every cost-model parameter reachable from
  the platform object (machine config, cache/DRAM latencies, TSU cost
  tables, Cell parameters, ...), and
* a *source fingerprint*: the hash of every ``.py`` file of the
  installed :mod:`repro` package, so editing any model invalidates all
  previously cached cycles.

The cache directory is taken from the ``TFLUX_CACHE_DIR`` environment
variable; when it is unset or empty, caching is disabled.  Entries are
pickled :class:`~repro.exec.pool.JobOutcome` objects whose ``result`` is
the env-free :class:`~repro.obs.RunRecord` (the cache stores *timing*
results — cycle counts, counters, spans — never program state,
preserving the functional/timing split).  Reads additionally refuse
records carrying a stale ``schema_version``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "ResultCache",
    "cache_from_env",
    "describe",
    "source_fingerprint",
    "spec_digest",
]

#: Bump to invalidate every existing cache entry (format changes).
CACHE_FORMAT = 1

ENV_CACHE_DIR = "TFLUX_CACHE_DIR"


def describe(obj: Any) -> Any:
    """A JSON-able canonical description of *obj* for digesting.

    Recurses through dataclasses (machine configs, cost tables, problem
    sizes) and plain containers; arbitrary objects (platform instances)
    contribute their class identity plus their instance ``__dict__``, so
    any constructor parameter — e.g. ``TFluxHard(tsu_processing_cycles=8)``
    — lands in the digest.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: describe(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": _qualname(obj), **body}
    if isinstance(obj, dict):
        return {str(k): describe(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [describe(x) for x in items]
    if hasattr(obj, "__dict__"):
        body = {k: describe(v) for k, v in sorted(vars(obj).items())}
        return {"__class__": _qualname(obj), **body}
    return repr(obj)


def _qualname(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


_FINGERPRINT: Optional[str] = None


def source_fingerprint() -> str:
    """Digest of every ``.py`` source file of the :mod:`repro` package.

    Computed once per process.  Any edit to the simulator, the TSU
    models, the workloads — anything under ``repro/`` — changes the
    fingerprint and therefore invalidates all cached results.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


def spec_digest(spec: Any) -> str:
    """The content address of one job spec (hex SHA-256)."""
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "sources": source_fingerprint(),
            "spec": describe(spec),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Pickle-per-entry cache in ``<root>/<digest[:2]>/<digest>.pkl``.

    Reads tolerate missing or corrupt entries (treated as misses);
    writes are atomic (temp file + rename) so concurrent workers and
    concurrent harness runs can share one directory.

    ``__len__``/:meth:`stats` read a lazily-built in-memory index that
    :meth:`put` keeps current, so polling them (the server's stats
    endpoint does, per reply) costs a dict lookup, not a directory walk.
    The index deliberately does *not* see entries written by other
    processes after it was built — call ``stats(refresh=True)`` or
    :meth:`refresh` when cross-process exactness matters (:meth:`prune`
    always rescans first).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: digest -> (size bytes, mtime); None until first scan.
        self._index: Optional[dict[str, tuple[int, float]]] = None

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[Any]:
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            self.misses += 1
            return None
        if not self._schema_ok(value):
            self.misses += 1
            return None
        self.hits += 1
        return value

    @staticmethod
    def _schema_ok(value: Any) -> bool:
        """Refuse entries whose RunRecord predates the current schema.

        The source fingerprint already invalidates on any ``repro`` code
        edit, but a cache directory can outlive an install (or be shared
        across checkouts); a stale record deserialising silently into a
        newer field set is the failure mode this guards against.
        """
        record = getattr(value, "result", None)
        if record is None:
            return True
        from repro.obs import SCHEMA_VERSION

        return getattr(record, "schema_version", None) == SCHEMA_VERSION

    def put(self, digest: str, value: Any) -> None:
        path = self._path(digest)
        while True:
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                break
            except FileNotFoundError:
                continue  # raced a concurrent prune's empty-shard sweep
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        if self._index is not None:
            try:
                st = path.stat()
                self._index[digest] = (st.st_size, st.st_mtime)
            except OSError:
                self._index.pop(digest, None)

    # -- maintenance ----------------------------------------------------------
    def _scan(self) -> dict[str, tuple[int, float]]:
        index: dict[str, tuple[int, float]] = {}
        if self.root.exists():
            for path in self.root.glob("*/*.pkl"):
                try:
                    st = path.stat()
                except OSError:
                    continue  # raced with a concurrent prune
                index[path.stem] = (st.st_size, st.st_mtime)
        return index

    def refresh(self) -> None:
        """Rebuild the index from disk (pick up other processes' writes)."""
        self._index = self._scan()

    def _entries(self) -> dict[str, tuple[int, float]]:
        if self._index is None:
            self._index = self._scan()
        return self._index

    def __len__(self) -> int:
        return len(self._entries())

    def stats(self, refresh: bool = False) -> dict[str, Any]:
        """Entry count / on-disk bytes plus this handle's hit counters."""
        if refresh:
            self.refresh()
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for size, _ in entries.values()),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
    ) -> dict[str, int]:
        """Evict entries until the tree fits *max_bytes* / *max_age*.

        Age is mtime-based, in seconds; the size bound evicts
        oldest-first until the total fits.  Always rescans the tree
        first so concurrent writers' entries are governed too, and
        tolerates entries vanishing mid-prune (two prunes may race the
        same directory).  Returns ``{"removed", "freed_bytes",
        "remaining", "remaining_bytes"}``.
        """
        self.refresh()
        entries = self._entries()
        doomed: list[str] = []
        if max_age is not None:
            cutoff = time.time() - max_age
            doomed.extend(d for d, (_, mtime) in entries.items() if mtime < cutoff)
        if max_bytes is not None:
            survivors = [
                (mtime, size, d)
                for d, (size, mtime) in entries.items()
                if d not in set(doomed)
            ]
            total = sum(size for _, size, _ in survivors)
            survivors.sort()  # oldest first
            for mtime, size, digest in survivors:
                if total <= max_bytes:
                    break
                doomed.append(digest)
                total -= size
        freed = 0
        removed = 0
        for digest in doomed:
            size, _ = entries.pop(digest)
            try:
                os.unlink(self._path(digest))
            except OSError:
                continue
            removed += 1
            freed += size
        if self.root.exists():
            for shard in self.root.iterdir():
                if shard.is_dir():
                    try:
                        shard.rmdir()  # only succeeds when empty
                    except OSError:
                        pass
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining": len(entries),
            "remaining_bytes": sum(size for size, _ in entries.values()),
        }

    def publish_counters(self, counters: Any, prefix: str = "exec.cache") -> None:
        """Add this handle's hits/misses/stores to a Counters registry."""
        scope = counters.scope(prefix)
        scope.inc("hits", self.hits)
        scope.inc("misses", self.misses)
        scope.inc("stores", self.stores)


def cache_from_env() -> Optional[ResultCache]:
    """The cache named by ``TFLUX_CACHE_DIR``, or ``None`` when unset."""
    root = os.environ.get(ENV_CACHE_DIR, "").strip()
    if not root:
        return None
    return ResultCache(root)
