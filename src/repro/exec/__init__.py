"""Harness execution subsystem: parallel sweeps + persistent result cache.

The paper's figures are grids of independent simulations; this package
makes the harness's own wall-clock scale with the host machine:

* :mod:`repro.exec.pool` — picklable job specs, a process-pool sweep
  executor (``TFLUX_JOBS``), and the batched §5 evaluation protocol;
* :mod:`repro.exec.cache` — a content-addressed on-disk result cache
  (``TFLUX_CACHE_DIR``) keyed on job spec + cost-model parameters +
  a fingerprint of the simulator sources.

See ``docs/simulation.md`` ("Running the harness fast") for usage.
"""

from repro.exec.cache import (
    ENV_CACHE_DIR,
    ResultCache,
    cache_from_env,
    describe,
    source_fingerprint,
    spec_digest,
)
from repro.exec.pool import (
    ENV_JOBS,
    UNROLL_LADDER,
    EvalRequest,
    JobOutcome,
    JobSpec,
    clear_baseline_memo,
    evaluate_many,
    job_count,
    pool_context,
    run_job,
    run_jobs,
)

__all__ = [
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "UNROLL_LADDER",
    "ResultCache",
    "cache_from_env",
    "describe",
    "source_fingerprint",
    "spec_digest",
    "EvalRequest",
    "JobOutcome",
    "JobSpec",
    "clear_baseline_memo",
    "evaluate_many",
    "job_count",
    "pool_context",
    "run_job",
    "run_jobs",
]
