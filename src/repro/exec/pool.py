"""Parallel sweep executor for the paper-figure harness.

Every figure of the paper is a grid of *independent* simulations
(benchmarks × sizes × kernel counts × unroll factors).  This module
turns each grid cell into a picklable :class:`JobSpec`, runs the specs
through a process pool (``TFLUX_JOBS`` workers), and reassembles the
results in deterministic submission order.  Workers rebuild their
program fresh from the benchmark registry — the single-run-program
invariant (a ``DDMProgram``'s ``Environment`` is mutated by execution)
is preserved by construction, because a program object never crosses a
process boundary.

Three job modes exist:

* ``"execute"`` — a single parallel run (the ablation grids that sweep
  runtime parameters, and the parallel side of every speedup cell).
* ``"sequential"`` — the §5 baseline alone: the *original* sequential
  program (unroll=1) timed on one core.  :func:`evaluate_many` issues at
  most one of these per distinct (platform configuration, bench, size)
  cell and additionally memoises the outcome in-process
  (:data:`_BASELINE_MEMO`), so a sweep only pays for its parallel side;
  the disk cache gives the baseline its own dedicated key because
  ``mode`` participates in :func:`repro.exec.cache.spec_digest`.
* ``"evaluate"`` — legacy combined mode (parallel run plus a baseline at
  the *same* unroll); kept for callers that want a self-contained job.

Results are transparently memoised through the content-addressed disk
cache (:mod:`repro.exec.cache`) when ``TFLUX_CACHE_DIR`` is set.

Knobs (both read at call time, so tests can monkeypatch):

* ``TFLUX_JOBS`` — worker processes: unset/``0``/``1`` = serial in
  process, ``N`` = that many workers, ``auto`` = ``os.cpu_count()``.
* ``TFLUX_CACHE_DIR`` — result cache directory; unset = no caching.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections import OrderedDict
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.exec.cache import ResultCache, cache_from_env, spec_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.apps.common import ProblemSize
    from repro.obs import RunRecord
    from repro.platforms.base import Evaluation, Platform

__all__ = [
    "JobSpec",
    "JobOutcome",
    "EvalRequest",
    "UNROLL_LADDER",
    "job_count",
    "pool_context",
    "run_jobs",
    "evaluate_many",
    "clear_baseline_memo",
]

ENV_JOBS = "TFLUX_JOBS"

#: Sentinel: "resolve the cache from the environment".
_ENV_CACHE = object()


def job_count(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit *jobs* or the ``TFLUX_JOBS`` knob."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(ENV_JOBS, "").strip().lower()
    if not raw or raw == "0":
        return 1
    if raw in ("auto", "max"):
        return os.cpu_count() or 1
    n = int(raw)
    if n < 0:
        raise ValueError(f"{ENV_JOBS} must be >= 0, got {n}")
    return max(1, n)


@dataclass(frozen=True)
class JobSpec:
    """One picklable simulation job (a single grid cell at one unroll).

    The platform object carries the complete cost-model configuration
    (machine latencies, TSU cost tables, Cell parameters), so the spec
    doubles as the cache key — see :func:`repro.exec.cache.spec_digest`.
    """

    platform: "Platform"
    bench: str
    size: "ProblemSize"
    nkernels: int
    unroll: int
    max_threads: int = 4096
    verify: bool = False
    #: "execute" is parallel-only, "sequential" is the §5 baseline alone,
    #: "evaluate" (legacy) runs both at the same unroll.
    mode: str = "evaluate"
    tsu_capacity: Optional[int] = None
    exact_memory: bool = False
    allow_stealing: bool = False
    #: Attach a collecting probe to the parallel run and carry its spans
    #: in the outcome's RunRecord (off by default: span lists can be
    #: large and most sweeps only need counters and cycles).
    collect_spans: bool = False
    #: Capture exceptions from the run as part of the outcome instead of
    #: raising (used by grids whose interesting result *is* the failure,
    #: e.g. the Cell Local-Store capacity wall).
    capture_errors: bool = False
    #: "" = no checking; "races" = gate the job on a clean dynamic race
    #: check (one extra functional run under :mod:`repro.check`; a
    #: finding raises :class:`repro.check.RaceCheckError`, captured like
    #: any job error when ``capture_errors`` is set).  Participates in
    #: the cache digest like every other field.
    check: str = ""


@dataclass
class JobOutcome:
    """What one job returns (and what the disk cache stores).

    ``result`` is the parallel run's telemetry as the env-free,
    schema-versioned :class:`~repro.obs.RunRecord` — functional output is
    verified inside the job, then only timing artefacts cross the
    process/cache boundary (never program state).
    """

    cycles: int
    region_cycles: int
    seq_cycles: Optional[int] = None
    result: Optional["RunRecord"] = None
    #: (fully-qualified exception class, message) when captured.
    error: Optional[tuple[str, str]] = None

    @property
    def measured_cycles(self) -> int:
        """The §5 measured quantity: region cycles, else total cycles."""
        return self.region_cycles or self.cycles


def run_job(spec: JobSpec) -> JobOutcome:
    """Execute one job in this process.

    Builds the program(s) fresh — never reuses a program object — runs
    the parallel simulation (and the sequential baseline in
    ``"evaluate"`` mode), verifies the functional results against the
    benchmark oracle while the live ``Environment`` is still at hand,
    and returns the outcome carrying only the run's RunRecord.
    """
    import repro.apps  # ensures the benchmark registry is populated

    bench = repro.apps.get_benchmark(spec.bench)
    platform = spec.platform
    try:
        check_report = None
        if spec.check:
            if spec.check != "races":
                raise ValueError(
                    f"unknown check {spec.check!r}; expected '' or 'races'"
                )
            from repro.check import RaceCheckError, run_checked

            check_prog = bench.build(
                spec.size, unroll=spec.unroll, max_threads=spec.max_threads
            )
            check_report = run_checked(check_prog)
            if not check_report.ok:
                raise RaceCheckError(check_report)
        if spec.mode == "sequential":
            prog = bench.build(
                spec.size, unroll=spec.unroll, max_threads=spec.max_threads
            )
            seq = platform.sequential_baseline(
                prog, exact_memory=spec.exact_memory
            )
            if spec.verify:
                bench.verify(prog.env, spec.size)
            return JobOutcome(
                cycles=seq.cycles,
                region_cycles=seq.region_cycles,
                seq_cycles=seq.region_cycles or seq.cycles,
            )
        tracer = None
        if spec.collect_spans:
            from repro.obs import Tracer

            tracer = Tracer()
        prog = bench.build(spec.size, unroll=spec.unroll, max_threads=spec.max_threads)
        par = platform.execute(
            prog,
            nkernels=spec.nkernels,
            tsu_capacity=spec.tsu_capacity,
            exact_memory=spec.exact_memory,
            allow_stealing=spec.allow_stealing,
            tracer=tracer,
        )
        if spec.verify:
            bench.verify(par.env, spec.size)
        if check_report is not None:
            check_report.publish(par.counters)
        seq_cycles: Optional[int] = None
        if spec.mode == "evaluate":
            seq_prog = bench.build(
                spec.size, unroll=spec.unroll, max_threads=spec.max_threads
            )
            seq = platform.sequential_baseline(
                seq_prog, exact_memory=spec.exact_memory
            )
            seq_cycles = seq.region_cycles or seq.cycles
        return JobOutcome(
            cycles=par.cycles,
            region_cycles=par.region_cycles,
            seq_cycles=seq_cycles,
            result=par.to_record(),
        )
    except Exception as exc:
        if not spec.capture_errors:
            raise
        qualname = f"{type(exc).__module__}.{type(exc).__qualname__}"
        return JobOutcome(0, 0, error=(qualname, str(exc)))


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every harness pool uses.

    fork inherits the imported simulator + benchmark registry, which
    keeps worker start-up cheap; fall back where fork is unavailable.
    The serving layer (:mod:`repro.serve`) builds its persistent pool
    from the same context so worker behaviour is identical.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_jobs(
    specs: Iterable[JobSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] | object = _ENV_CACHE,
    executor: Optional[Executor] = None,
) -> list[JobOutcome]:
    """Run *specs*, returning outcomes in the order the specs were given.

    Cache hits short-circuit; the remaining jobs run in a process pool
    of :func:`job_count` workers (serially in-process when that is 1).
    The returned list order never depends on completion order, so
    parallel and serial sweeps are interchangeable.

    Passing *executor* reuses a caller-owned persistent pool (built with
    :func:`pool_context`) instead of spinning one up per call — worker
    start-up is then amortised across many batches, which is how the
    long-running server (:mod:`repro.serve`) runs.  Results are
    bit-identical either way; *jobs* is ignored when *executor* is
    given (the executor's own worker count applies).
    """
    specs = list(specs)
    if cache is _ENV_CACHE:
        cache = cache_from_env()
    njobs = job_count(jobs)

    results: list[Optional[JobOutcome]] = [None] * len(specs)
    digests: list[Optional[str]] = [None] * len(specs)
    pending: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            digests[i] = spec_digest(spec)
            hit = cache.get(digests[i])
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)

    if pending:
        if executor is not None:
            for i, outcome in zip(
                pending, executor.map(run_job, [specs[i] for i in pending])
            ):
                results[i] = outcome
        elif njobs > 1 and len(pending) > 1:
            workers = min(njobs, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=pool_context()
            ) as pool:
                for i, outcome in zip(
                    pending, pool.map(run_job, [specs[i] for i in pending])
                ):
                    results[i] = outcome
        else:
            for i in pending:
                results[i] = run_job(specs[i])
        if cache is not None:
            for i in pending:
                cache.put(digests[i], results[i])
    return results  # type: ignore[return-value]


# -- the paper's measurement protocol, batched --------------------------------

#: The canonical A2 unroll grid (Table 2's ladder).
UNROLL_LADDER = (1, 2, 4, 8, 16, 32, 64)

#: Initial probes of the ``unrolls="auto"`` adaptive search: the two
#: extremes plus the ladder midpoint.
_AUTO_PROBES = (1, 8, 64)


@dataclass(frozen=True)
class EvalRequest:
    """One figure cell: best-over-unrolls speedup for (bench, size, nk).

    ``unrolls`` is either an explicit grid (every factor simulated) or
    the string ``"auto"``: an adaptive search over :data:`UNROLL_LADDER`
    that probes the extremes and midpoint, then hill-climbs by
    simulating the unevaluated ladder neighbours of the current best
    until the best is bracketed.  Ties keep the earliest unroll — the
    same rule as the full grid — so equal-speedup plateaus slide left.
    Typical cells finish in 4–6 simulations instead of 7; every
    simulation still routes through the same job specs, process pool and
    content-addressed disk cache as the full grid.
    """

    platform: "Platform"
    bench: str
    size: "ProblemSize"
    nkernels: int
    unrolls: "tuple[int, ...] | str" = UNROLL_LADDER
    verify: bool = True
    max_threads: int = 4096


#: Completed baselines the memo keeps (LRU-evicted beyond this, so a
#: long-running server sweeping many platform configurations cannot
#: grow the memo without bound; real sweeps hold a handful of cells).
_BASELINE_MEMO_CAPACITY = 256


class _BaselineMemo:
    """Thread-safe, bounded, single-flight memo of baseline outcomes.

    Keyed by the baseline JobSpec's cache digest.  The baseline depends
    only on (platform configuration, bench, size, exact memory model) —
    never on the sweep's kernel counts or unroll grid — so consecutive
    ``evaluate_many`` batches (e.g. a speedup curve over nkernels)
    reuse it without re-simulating.

    Entries are ``concurrent.futures.Future`` objects so *concurrent*
    ``evaluate_many`` calls (the server's request handlers) agree under
    one lock on a single owner per digest: the owner simulates and
    :meth:`fill`\\ s, everyone else blocks on the same future instead of
    racing a duplicate baseline simulation.  Failures :meth:`fail` the
    future (waiters re-raise) and are never retained, and completed
    entries are LRU-evicted beyond *capacity*.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._done: "OrderedDict[str, Future]" = OrderedDict()
        self._inflight: dict[str, Future] = {}

    def claim(self, digest: str) -> tuple[Future, bool]:
        """The shared future for *digest* and whether the caller owns it
        (an owner must later :meth:`fill` or :meth:`fail`)."""
        with self._lock:
            fut = self._done.get(digest)
            if fut is not None:
                self._done.move_to_end(digest)
                return fut, False
            fut = self._inflight.get(digest)
            if fut is not None:
                return fut, False
            fut = Future()
            self._inflight[digest] = fut
            return fut, True

    def fill(self, digest: str, outcome: JobOutcome) -> None:
        with self._lock:
            fut = self._inflight.pop(digest, Future())
            self._done[digest] = fut
            self._done.move_to_end(digest)
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
        fut.set_result(outcome)  # wake waiters outside the lock

    def fail(self, digest: str, exc: BaseException) -> None:
        with self._lock:
            fut = self._inflight.pop(digest, None)
        if fut is not None and not fut.done():
            fut.set_exception(exc)

    def clear(self) -> None:
        with self._lock:
            self._done.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._done


_BASELINE_MEMO = _BaselineMemo(_BASELINE_MEMO_CAPACITY)


def clear_baseline_memo() -> None:
    """Forget memoised sequential baselines (tests / cost-model sweeps)."""
    _BASELINE_MEMO.clear()


def _baseline_spec(req: EvalRequest) -> JobSpec:
    """The canonical §5 baseline job for a figure cell.

    "We compare the parallel execution against the *original* sequential
    program" — unroll=1, one core, no TFlux overheads.  The spec is
    independent of the request's kernel count and unroll grid, which is
    what makes it shareable across a whole sweep.
    """
    return JobSpec(
        platform=req.platform,
        bench=req.bench,
        size=req.size,
        nkernels=1,
        unroll=1,
        max_threads=req.max_threads,
        verify=False,
        mode="sequential",
    )


def _par_spec(req: EvalRequest, unroll: int) -> JobSpec:
    return JobSpec(
        platform=req.platform,
        bench=req.bench,
        size=req.size,
        nkernels=req.nkernels,
        unroll=unroll,
        max_threads=req.max_threads,
        verify=req.verify,
        mode="execute",
    )


def _auto_frontier(
    evaluated: dict[int, JobOutcome], seq_cycles: int
) -> list[int]:
    """Next unrolls the adaptive search wants: the unevaluated ladder
    neighbours of the current best (earliest-tie-break, same rule as
    :func:`_assemble`).  Empty means the best is bracketed — done."""
    best_u: Optional[int] = None
    best_s: Optional[float] = None
    for u in UNROLL_LADDER:
        if u not in evaluated:
            continue
        s = seq_cycles / evaluated[u].measured_cycles
        if best_s is None or s > best_s:
            best_u, best_s = u, s
    assert best_u is not None
    k = UNROLL_LADDER.index(best_u)
    return [
        UNROLL_LADDER[j]
        for j in (k - 1, k + 1)
        if 0 <= j < len(UNROLL_LADDER) and UNROLL_LADDER[j] not in evaluated
    ]


def evaluate_many(
    requests: Sequence[EvalRequest],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] | object = _ENV_CACHE,
) -> list["Evaluation"]:
    """Evaluate a batch of figure cells, fanning all unroll jobs at once.

    Flattening the whole batch before pooling maximises parallelism (a
    figure grid becomes cells × unrolls independent parallel jobs).  The
    sequential baseline is the canonical unroll=1 program, simulated at
    most once per distinct (platform configuration, bench, size) cell:
    duplicates within the batch collapse to one job, and outcomes are
    memoised in-process so later batches of the same sweep pay nothing.
    Each unroll's speedup is measured against that baseline; ties keep
    the earliest unroll.

    ``unrolls="auto"`` cells start with the :data:`_AUTO_PROBES` rungs in
    the same first batch, then refine in batched rounds: each round
    simulates, for every still-active auto cell, the unevaluated ladder
    neighbours of its current best — all cells' round jobs share one
    pool invocation and one cache pass.
    """
    requests = list(requests)
    if cache is _ENV_CACHE:
        cache = cache_from_env()
    grids: list[Optional[tuple[int, ...]]] = []
    for req in requests:
        if isinstance(req.unrolls, str):
            if req.unrolls != "auto":
                raise ValueError(
                    f"unrolls must be a tuple of factors or 'auto', "
                    f"got {req.unrolls!r}"
                )
            grids.append(None)
        else:
            grids.append(tuple(req.unrolls))

    par_specs: list[JobSpec] = []
    slices: list[tuple[int, int]] = []
    for req, grid in zip(requests, grids):
        start = len(par_specs)
        for unroll in (grid if grid is not None else _AUTO_PROBES):
            par_specs.append(_par_spec(req, unroll))
        slices.append((start, len(par_specs)))

    # One baseline job per distinct cell not already memoised; baselines
    # ride in the same run_jobs call as the parallel specs so the whole
    # batch shares one pool (and one cache pass).
    seq_digests: list[str] = []
    seq_futures: dict[str, Future] = {}
    seq_position: dict[str, int] = {}
    seq_specs: list[JobSpec] = []
    owned: list[str] = []
    for req in requests:
        spec = _baseline_spec(req)
        digest = spec_digest(spec)
        seq_digests.append(digest)
        if digest not in seq_futures:
            fut, owner = _BASELINE_MEMO.claim(digest)
            seq_futures[digest] = fut
            if owner:
                owned.append(digest)
                seq_position[digest] = len(seq_specs)
                seq_specs.append(spec)

    try:
        outcomes = run_jobs(par_specs + seq_specs, jobs=jobs, cache=cache)
    except BaseException as exc:
        for digest in owned:
            _BASELINE_MEMO.fail(digest, exc)
        raise
    seq_outcomes = outcomes[len(par_specs):]
    for digest, pos in seq_position.items():
        _BASELINE_MEMO.fill(digest, seq_outcomes[pos])

    evaluated: list[dict[int, JobOutcome]] = [
        dict(zip(grid if grid is not None else _AUTO_PROBES, outcomes[a:b]))
        for grid, (a, b) in zip(grids, slices)
    ]

    # Adaptive refinement rounds, batched across every auto cell.
    active = [i for i, grid in enumerate(grids) if grid is None]
    while active:
        round_specs: list[JobSpec] = []
        owners: list[tuple[int, int]] = []
        still: list[int] = []
        for i in active:
            seq_cycles = seq_futures[seq_digests[i]].result().seq_cycles
            assert seq_cycles is not None
            frontier = _auto_frontier(evaluated[i], seq_cycles)
            if frontier:
                still.append(i)
                for unroll in frontier:
                    round_specs.append(_par_spec(requests[i], unroll))
                    owners.append((i, unroll))
        if not round_specs:
            break
        for (i, unroll), outcome in zip(
            owners, run_jobs(round_specs, jobs=jobs, cache=cache)
        ):
            evaluated[i][unroll] = outcome
        active = still

    return [
        _assemble(req, evaluated[i], seq_futures[seq_digests[i]].result())
        for i, req in enumerate(requests)
    ]


def _assemble(
    req: EvalRequest,
    evaluated: dict[int, JobOutcome],
    seq_outcome: JobOutcome,
) -> "Evaluation":
    from repro.platforms.base import Evaluation

    seq_best = seq_outcome.seq_cycles
    assert seq_best is not None
    best: Optional[tuple[float, int, int, Optional["RunRecord"]]] = None
    per_unroll: dict[int, float] = {}
    for unroll in sorted(evaluated):
        outcome = evaluated[unroll]
        par_cycles = outcome.measured_cycles
        speedup = seq_best / par_cycles
        per_unroll[unroll] = speedup
        if best is None or speedup > best[0]:
            best = (speedup, unroll, par_cycles, outcome.result)
    assert best is not None
    speedup, unroll, par_cycles, result = best
    return Evaluation(
        platform=req.platform.name,
        bench=req.bench,
        size_label=req.size.label,
        nkernels=req.nkernels,
        speedup=speedup,
        best_unroll=unroll,
        parallel_cycles=par_cycles,
        sequential_cycles=seq_best,
        per_unroll=per_unroll,
        result=result,
    )
