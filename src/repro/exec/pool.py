"""Parallel sweep executor for the paper-figure harness.

Every figure of the paper is a grid of *independent* simulations
(benchmarks × sizes × kernel counts × unroll factors).  This module
turns each grid cell into a picklable :class:`JobSpec`, runs the specs
through a process pool (``TFLUX_JOBS`` workers), and reassembles the
results in deterministic submission order.  Workers rebuild their
program fresh from the benchmark registry — the single-run-program
invariant (a ``DDMProgram``'s ``Environment`` is mutated by execution)
is preserved by construction, because a program object never crosses a
process boundary.

Two job modes exist:

* ``"evaluate"`` — the paper's §5 measurement for one unroll factor:
  sequential baseline plus the parallel run (both freshly built).
  :func:`evaluate_many` fans a batch of :class:`EvalRequest` cells into
  these jobs and reassembles :class:`~repro.platforms.base.Evaluation`
  objects with exactly the serial code path's best-over-unrolls logic.
* ``"execute"`` — a single parallel run (used by the ablation grids
  that sweep runtime parameters rather than speedups).

Results are transparently memoised through the content-addressed disk
cache (:mod:`repro.exec.cache`) when ``TFLUX_CACHE_DIR`` is set.

Knobs (both read at call time, so tests can monkeypatch):

* ``TFLUX_JOBS`` — worker processes: unset/``0``/``1`` = serial in
  process, ``N`` = that many workers, ``auto`` = ``os.cpu_count()``.
* ``TFLUX_CACHE_DIR`` — result cache directory; unset = no caching.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.exec.cache import ResultCache, cache_from_env, spec_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.apps.common import ProblemSize
    from repro.obs import RunRecord
    from repro.platforms.base import Evaluation, Platform

__all__ = [
    "JobSpec",
    "JobOutcome",
    "EvalRequest",
    "job_count",
    "run_jobs",
    "evaluate_many",
]

ENV_JOBS = "TFLUX_JOBS"

#: Sentinel: "resolve the cache from the environment".
_ENV_CACHE = object()


def job_count(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit *jobs* or the ``TFLUX_JOBS`` knob."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(ENV_JOBS, "").strip().lower()
    if not raw or raw == "0":
        return 1
    if raw in ("auto", "max"):
        return os.cpu_count() or 1
    n = int(raw)
    if n < 0:
        raise ValueError(f"{ENV_JOBS} must be >= 0, got {n}")
    return max(1, n)


@dataclass(frozen=True)
class JobSpec:
    """One picklable simulation job (a single grid cell at one unroll).

    The platform object carries the complete cost-model configuration
    (machine latencies, TSU cost tables, Cell parameters), so the spec
    doubles as the cache key — see :func:`repro.exec.cache.spec_digest`.
    """

    platform: "Platform"
    bench: str
    size: "ProblemSize"
    nkernels: int
    unroll: int
    max_threads: int = 4096
    verify: bool = False
    #: "evaluate" adds the sequential §5 baseline; "execute" is parallel-only.
    mode: str = "evaluate"
    tsu_capacity: Optional[int] = None
    exact_memory: bool = False
    allow_stealing: bool = False
    #: Attach a collecting probe to the parallel run and carry its spans
    #: in the outcome's RunRecord (off by default: span lists can be
    #: large and most sweeps only need counters and cycles).
    collect_spans: bool = False
    #: Capture exceptions from the run as part of the outcome instead of
    #: raising (used by grids whose interesting result *is* the failure,
    #: e.g. the Cell Local-Store capacity wall).
    capture_errors: bool = False


@dataclass
class JobOutcome:
    """What one job returns (and what the disk cache stores).

    ``result`` is the parallel run's telemetry as the env-free,
    schema-versioned :class:`~repro.obs.RunRecord` — functional output is
    verified inside the job, then only timing artefacts cross the
    process/cache boundary (never program state).
    """

    cycles: int
    region_cycles: int
    seq_cycles: Optional[int] = None
    result: Optional["RunRecord"] = None
    #: (fully-qualified exception class, message) when captured.
    error: Optional[tuple[str, str]] = None

    @property
    def measured_cycles(self) -> int:
        """The §5 measured quantity: region cycles, else total cycles."""
        return self.region_cycles or self.cycles


def run_job(spec: JobSpec) -> JobOutcome:
    """Execute one job in this process.

    Builds the program(s) fresh — never reuses a program object — runs
    the parallel simulation (and the sequential baseline in
    ``"evaluate"`` mode), verifies the functional results against the
    benchmark oracle while the live ``Environment`` is still at hand,
    and returns the outcome carrying only the run's RunRecord.
    """
    import repro.apps  # ensures the benchmark registry is populated

    bench = repro.apps.get_benchmark(spec.bench)
    platform = spec.platform
    try:
        tracer = None
        if spec.collect_spans:
            from repro.obs import Tracer

            tracer = Tracer()
        prog = bench.build(spec.size, unroll=spec.unroll, max_threads=spec.max_threads)
        par = platform.execute(
            prog,
            nkernels=spec.nkernels,
            tsu_capacity=spec.tsu_capacity,
            exact_memory=spec.exact_memory,
            allow_stealing=spec.allow_stealing,
            tracer=tracer,
        )
        if spec.verify:
            bench.verify(par.env, spec.size)
        seq_cycles: Optional[int] = None
        if spec.mode == "evaluate":
            seq_prog = bench.build(
                spec.size, unroll=spec.unroll, max_threads=spec.max_threads
            )
            seq = platform.sequential_baseline(
                seq_prog, exact_memory=spec.exact_memory
            )
            seq_cycles = seq.region_cycles or seq.cycles
        return JobOutcome(
            cycles=par.cycles,
            region_cycles=par.region_cycles,
            seq_cycles=seq_cycles,
            result=par.to_record(),
        )
    except Exception as exc:
        if not spec.capture_errors:
            raise
        qualname = f"{type(exc).__module__}.{type(exc).__qualname__}"
        return JobOutcome(0, 0, error=(qualname, str(exc)))


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork inherits the imported simulator + benchmark registry, which
    # keeps worker start-up cheap; fall back where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_jobs(
    specs: Iterable[JobSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] | object = _ENV_CACHE,
) -> list[JobOutcome]:
    """Run *specs*, returning outcomes in the order the specs were given.

    Cache hits short-circuit; the remaining jobs run in a process pool
    of :func:`job_count` workers (serially in-process when that is 1).
    The returned list order never depends on completion order, so
    parallel and serial sweeps are interchangeable.
    """
    specs = list(specs)
    if cache is _ENV_CACHE:
        cache = cache_from_env()
    njobs = job_count(jobs)

    results: list[Optional[JobOutcome]] = [None] * len(specs)
    digests: list[Optional[str]] = [None] * len(specs)
    pending: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            digests[i] = spec_digest(spec)
            hit = cache.get(digests[i])
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)

    if pending:
        if njobs > 1 and len(pending) > 1:
            workers = min(njobs, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                for i, outcome in zip(
                    pending, pool.map(run_job, [specs[i] for i in pending])
                ):
                    results[i] = outcome
        else:
            for i in pending:
                results[i] = run_job(specs[i])
        if cache is not None:
            for i in pending:
                cache.put(digests[i], results[i])
    return results  # type: ignore[return-value]


# -- the paper's measurement protocol, batched --------------------------------
@dataclass(frozen=True)
class EvalRequest:
    """One figure cell: best-over-unrolls speedup for (bench, size, nk)."""

    platform: "Platform"
    bench: str
    size: "ProblemSize"
    nkernels: int
    unrolls: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
    verify: bool = True
    max_threads: int = 4096


def evaluate_many(
    requests: Sequence[EvalRequest],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] | object = _ENV_CACHE,
) -> list["Evaluation"]:
    """Evaluate a batch of figure cells, fanning all unroll jobs at once.

    Flattening the whole batch before pooling maximises parallelism (a
    figure grid becomes cells × unrolls independent jobs) while the
    assembly below reproduces the serial protocol bit-for-bit: the
    sequential baseline takes the best (minimum cycles) over the unroll
    grid, each unroll's speedup is measured against that baseline, and
    ties keep the earliest unroll.
    """
    requests = list(requests)
    specs: list[JobSpec] = []
    slices: list[tuple[int, int]] = []
    for req in requests:
        start = len(specs)
        for unroll in req.unrolls:
            specs.append(
                JobSpec(
                    platform=req.platform,
                    bench=req.bench,
                    size=req.size,
                    nkernels=req.nkernels,
                    unroll=unroll,
                    max_threads=req.max_threads,
                    verify=req.verify,
                    mode="evaluate",
                )
            )
        slices.append((start, len(specs)))
    outcomes = run_jobs(specs, jobs=jobs, cache=cache)
    return [
        _assemble(req, outcomes[a:b]) for req, (a, b) in zip(requests, slices)
    ]


def _assemble(req: EvalRequest, outcomes: Sequence[JobOutcome]) -> "Evaluation":
    from repro.platforms.base import Evaluation

    seq_best = min(o.seq_cycles for o in outcomes)  # type: ignore[type-var]
    assert seq_best is not None
    best: Optional[tuple[float, int, int, Optional["RunRecord"]]] = None
    per_unroll: dict[int, float] = {}
    for unroll, outcome in zip(req.unrolls, outcomes):
        par_cycles = outcome.measured_cycles
        speedup = seq_best / par_cycles
        per_unroll[unroll] = speedup
        if best is None or speedup > best[0]:
            best = (speedup, unroll, par_cycles, outcome.result)
    assert best is not None
    speedup, unroll, par_cycles, result = best
    return Evaluation(
        platform=req.platform.name,
        bench=req.bench,
        size_label=req.size.label,
        nkernels=req.nkernels,
        speedup=speedup,
        best_unroll=unroll,
        parallel_cycles=par_cycles,
        sequential_cycles=seq_best,
        per_unroll=per_unroll,
        result=result,
    )
