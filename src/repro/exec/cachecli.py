"""``tflux-cache`` — inspect and prune the on-disk result cache.

Examples::

    tflux-cache stats                      # the TFLUX_CACHE_DIR tree
    tflux-cache stats --dir /tmp/cache --json
    tflux-cache prune --max-mb 512         # size-bound, oldest evicted first
    tflux-cache prune --max-age-days 30    # drop entries older than 30 days

Also runnable uninstalled: ``python -m repro.exec.cachecli ...``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.exec.cache import ENV_CACHE_DIR, ResultCache

__all__ = ["main"]


def _cache(args: argparse.Namespace) -> Optional[ResultCache]:
    root = args.dir or os.environ.get(ENV_CACHE_DIR, "").strip()
    if not root:
        print(
            f"tflux-cache: error: no cache directory (set {ENV_CACHE_DIR} "
            f"or pass --dir)",
            file=sys.stderr,
        )
        return None
    return ResultCache(os.path.expanduser(root))


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tflux-cache",
        description="Inspect / prune the TFlux on-disk result cache",
    )
    parser.add_argument("--dir", default=None,
                        help=f"cache directory (default: ${ENV_CACHE_DIR})")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="entry count and on-disk bytes")
    stats.add_argument("--json", action="store_true")

    prune = sub.add_parser("prune", help="evict by size and/or age")
    prune.add_argument("--max-bytes", type=int, default=None)
    prune.add_argument("--max-mb", type=float, default=None,
                       help="size bound in MiB (alias for --max-bytes)")
    prune.add_argument("--max-age", type=float, default=None,
                       help="maximum entry age in seconds")
    prune.add_argument("--max-age-days", type=float, default=None,
                       help="maximum entry age in days (alias for --max-age)")
    prune.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    cache = _cache(args)
    if cache is None:
        return 2

    if args.command == "stats":
        info = cache.stats(refresh=True)
        del info["hits"], info["misses"], info["stores"]  # fresh handle: all 0
        if args.json:
            print(json.dumps(info, indent=1, sort_keys=True))
        else:
            print(f"{info['root']}: {info['entries']} entries, "
                  f"{info['bytes'] / 1e6:.1f} MB")
        return 0

    max_bytes = args.max_bytes
    if args.max_mb is not None:
        max_bytes = int(args.max_mb * 1024 * 1024)
    max_age = args.max_age
    if args.max_age_days is not None:
        max_age = args.max_age_days * 86400.0
    if max_bytes is None and max_age is None:
        print("tflux-cache: error: prune needs --max-bytes/--max-mb and/or "
              "--max-age/--max-age-days", file=sys.stderr)
        return 2
    report = cache.prune(max_bytes=max_bytes, max_age=max_age)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(f"pruned {report['removed']} entries "
              f"({report['freed_bytes'] / 1e6:.1f} MB); "
              f"{report['remaining']} remain "
              f"({report['remaining_bytes'] / 1e6:.1f} MB)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
