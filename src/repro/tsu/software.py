"""TFluxSoft: the TSU as a software emulator on a dedicated core.

"In the case of TFluxSoft we implement the TSU as a software module that
executes its code on one of the cores of the multicore processor ...
named TSU Emulator" (paper §4.2).  The operations split between the
kernels (Local TSU — reading the own ready queue, loading metadata) and
the emulator (Global TSU — draining the TUB, decrementing Ready Counts
through the TKT).

Timing mechanics modelled here:

* a completing kernel pushes the completion into a **TUB segment** —
  a capacity-``nsegments`` resource stands in for the try-lock search
  (when every segment is locked the kernel stalls, the contention the
  segmenting was introduced to bound);
* the **TSU Emulator process** drains the queue: per-item base cost plus a
  per-consumer Ready-Count update cost (TKT lookup + SM decrement).  The
  post-processing of a DThread therefore lands *later* than its
  completion — the extra scheduling latency that makes TFluxSoft need
  coarser DThreads than TFluxHard (paper §6.2.2);
* fetches read the kernel's own SM: cheap and contention-free.

All constants live in :class:`SoftTSUCosts` so the ablation benchmarks can
sweep them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.block import DDMBlock
from repro.core.dthread import DThreadInstance
from repro.core.dynamic import Subflow
from repro.sim.engine import Engine, Event, Resource, fastpath_enabled
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup

__all__ = ["SoftTSUCosts", "SoftwareTSUAdapter"]


@dataclass(frozen=True)
class SoftTSUCosts:
    """Cycle costs of the software TSU protocol (Xeon-calibrated defaults).

    The absolute values are order-of-magnitude estimates of short critical
    sections on a 2008-class x86 (a locked cache line costs tens to a few
    hundred cycles); the evaluation only relies on their *ratio* to DThread
    granularity, which the unrolling ablation sweeps explicitly.
    """

    fetch_cycles: int = 60
    tub_push_cycles: int = 250
    tub_segments: int = 8
    emulator_per_item: int = 150
    emulator_per_update: int = 120
    emulator_poll_cycles: int = 80
    inlet_per_entry: int = 90
    outlet_cycles: int = 400


class SoftwareTSUAdapter(ProtocolAdapter):
    """Timed software-TSU protocol with an explicit emulator process."""

    def __init__(
        self,
        engine: Engine,
        tsu: TSUGroup,
        costs: SoftTSUCosts = SoftTSUCosts(),
    ) -> None:
        super().__init__(engine, tsu)
        self.costs = costs
        self._fast = fastpath_enabled()
        self._tub_slots = Resource(engine, capacity=costs.tub_segments, name="tub")
        # (kernel, local_iid, outcome): the TUB entry carries the dynamic
        # outcome (branch key / spawned Subflow) to the emulator, which
        # applies it during post-processing.
        self._queue: deque[tuple[int, int, object]] = deque()
        self._emulator_wake: Optional[Event] = None
        self._emulator_started = False
        self._shutdown = False
        # Statistics (plain ints on the hot path; see publish_counters).
        self.emulator_busy_cycles = 0
        self.emulator_items = 0
        self.emulator_updates = 0
        self.tub_pushes = 0
        self.fast_pushes = 0

    def publish_counters(self, counters) -> None:
        emu = counters.scope("emulator")
        emu.inc("busy_cycles", self.emulator_busy_cycles)
        emu.inc("items", self.emulator_items)
        emu.inc("updates", self.emulator_updates)
        counters.inc("tub.pushes", self.tub_pushes)
        # Coalescing statistics live under engine.* — the one namespace
        # allowed to differ between TFLUX_FASTPATH on and off.
        counters.inc("engine.coalesced_pushes", self.fast_pushes)

    # -- emulator lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Launch the TSU Emulator process (idempotent)."""
        if not self._emulator_started:
            self._emulator_started = True
            self.engine.process(self._emulator_proc(), name="tsu-emulator")

    def shutdown(self) -> None:
        self._shutdown = True
        self._kick_emulator()

    def _kick_emulator(self) -> None:
        if self._emulator_wake is not None and not self._emulator_wake.triggered:
            self._emulator_wake.succeed()

    def _emulator_proc(self) -> Generator:
        """The dedicated-core loop: drain the TUB, apply post-processing."""
        costs = self.costs
        while True:
            if self._queue:
                kernel, local_iid, outcome = self._queue.popleft()
                nconsumers = len(self.tsu.current_block.consumers[local_iid])
                busy = costs.emulator_per_item + costs.emulator_per_update * nconsumers
                yield busy
                self.emulator_busy_cycles += busy
                self.emulator_items += 1
                self.emulator_updates += nconsumers
                self._apply_thread_completion(kernel, local_iid, outcome)
            elif self._shutdown:
                return
            else:
                self._emulator_wake = Event(self.engine, name="tub-nonempty")
                yield self._emulator_wake
                self._emulator_wake = None

    # -- protocol costs -----------------------------------------------------------
    def fetch(self, kernel: int) -> Generator:
        yield self.costs.fetch_cycles
        return self.tsu.fetch(kernel)

    def complete_inlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield self.costs.inlet_per_entry * max(block.size, 1)
        self.tsu.complete_inlet(kernel)
        self.wake_kernels()

    def resolve_dynamic(
        self, kernel: int, local_iid: int, outcome: object
    ) -> Generator:
        # A spawned subflow's descriptor is a second TUB-sized payload
        # pushed alongside the completion word; a branch key rides the
        # completion word itself for free.
        if isinstance(outcome, Subflow):
            yield self.costs.tub_push_cycles

    def complete_thread(
        self,
        kernel: int,
        local_iid: int,
        instance: DThreadInstance,
        outcome: object = None,
    ) -> Generator:
        # Find a free TUB segment (try/lock; blocking only when all
        # segments are simultaneously held).  A synchronous grant skips
        # the grant-event hop entirely: one timeout for the push, with
        # the segment lazily freed at its exact eager release time.
        if self._fast and self._tub_slots.try_acquire():
            self._tub_slots.release_at(
                self.engine.now + self.costs.tub_push_cycles
            )
            yield self.costs.tub_push_cycles
            self.fast_pushes += 1
        else:
            grant = self._tub_slots.request()
            yield grant
            try:
                yield self.costs.tub_push_cycles
            finally:
                self._tub_slots.release()
        self._queue.append((kernel, local_iid, outcome))
        self.tub_pushes += 1
        self._kick_emulator()

    def complete_outlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield self.costs.outlet_cycles
        self.tsu.complete_outlet(kernel)
        self.wake_kernels()
