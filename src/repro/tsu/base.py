"""Protocol adapter interface: how much each TSU operation *costs*.

The :class:`~repro.tsu.group.TSUGroup` defines what the TSU does; adapters
define what its operations cost on a given platform and through which
shared resources they flow.  The simulated runtime driver
(:mod:`repro.runtime.simdriver`) calls adapters as DES process fragments
(``yield from``), so contention — at the hardware TSU's command port, at
the TUB segments, at the Cell mailboxes — is modelled by the event engine,
not by constants.

This interface is the sim backend's half of the Kernel step-machine
contract: the driver's :class:`~repro.runtime.core.KernelBackend` steps
map one-to-one onto adapter generators (``fetch`` → :meth:`fetch`,
``run_inlet``/``run_outlet`` → :meth:`complete_inlet`/:meth:`complete_outlet`,
``notify_completion`` → :meth:`complete_thread`).  Adapters therefore
carry the wake side of the discipline documented in
:mod:`repro.runtime.core`: any transition that can ready work must call
:attr:`ProtocolAdapter.wake_kernels` at the simulated time it applies.

:class:`ZeroOverheadAdapter` makes every operation free; it is used for
the sequential-baseline runs ("the baseline program is the original
sequential one, i.e. without any TFlux overheads", §5) and in tests that
check pure scheduling behaviour.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.block import DDMBlock
from repro.core.dthread import DThreadInstance
from repro.sim.accesses import AccessSummary
from repro.sim.engine import Engine
from repro.tsu.group import Fetch, TSUGroup

__all__ = ["ProtocolAdapter", "ZeroOverheadAdapter"]


class ProtocolAdapter:
    """Base class; subclasses override the cost-bearing generators.

    Every method is a generator (DES process fragment).  The functional
    TSU transition must happen inside the generator at the simulated time
    the platform would apply it (e.g. the software TSU applies
    post-processing only when the emulator drains the TUB).
    """

    def __init__(self, engine: Engine, tsu: TSUGroup) -> None:
        self.engine = engine
        self.tsu = tsu
        #: Set by the driver: wake_kernels(kernel_ids or None for all).
        self.wake_kernels = lambda kernels=None: None

    # -- queries ------------------------------------------------------------
    def fetch(self, kernel: int) -> Generator:
        """Ask the TSU for the next DThread; returns a Fetch."""
        yield 0
        return self.tsu.fetch(kernel)

    # -- completions -----------------------------------------------------------
    def complete_inlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield 0
        self.tsu.complete_inlet(kernel)
        self.wake_kernels()

    def resolve_dynamic(
        self, kernel: int, local_iid: int, outcome: object
    ) -> Generator:
        """Price shipping a dynamic outcome (branch key / spawned
        Subflow) to the TSU.  Costs only — the functional application
        happens inside :meth:`complete_thread` at the platform's
        post-processing instant.  *outcome* is ``None`` for static
        threads; the base adapter (and any platform without a priced
        transport) ships for free, keeping static programs bit-identical.
        """
        yield 0

    def complete_thread(
        self,
        kernel: int,
        local_iid: int,
        instance: DThreadInstance,
        outcome: object = None,
    ) -> Generator:
        yield 0
        self._apply_thread_completion(kernel, local_iid, outcome)

    def complete_outlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield 0
        self.tsu.complete_outlet(kernel)
        self.wake_kernels()

    # -- counters ----------------------------------------------------------------
    def publish_counters(self, counters) -> None:
        """Dump this adapter's counters into the shared registry.

        Called once at end of run by the driver.  Adapters keep plain
        integer attributes on the hot path and publish them here under a
        dotted namespace (``mmi.*``, ``emulator.*``, ``dma.*``, ...); the
        base adapter has nothing to report.
        """

    # -- optional memory-pricing hook ------------------------------------------
    def thread_memory_cycles(
        self, kernel: int, instance: DThreadInstance, summary: AccessSummary
    ) -> Optional[int]:
        """Platform-specific pricing of a DThread's memory behaviour.

        Return ``None`` to let the driver use the machine's coherent cache
        model; the Cell adapter overrides this with DMA/Local-Store
        accounting.
        """
        return None

    # -- shared helper -----------------------------------------------------------
    def _apply_thread_completion(
        self, kernel: int, local_iid: int, outcome: object = None
    ) -> None:
        """Run post-processing functionally and wake affected kernels."""
        newly_ready = self.tsu.complete_thread(kernel, local_iid, outcome)
        if self.tsu.phase_name in ("OUTLET_PENDING", "EXITED"):
            self.wake_kernels()
        elif newly_ready:
            if self.tsu.allow_stealing:
                # Any waiting kernel may steal the new work.
                self.wake_kernels()
            else:
                assert self.tsu.tkt is not None
                kernels = {self.tsu.tkt.kernel_of(c) for c in newly_ready}
                self.wake_kernels(kernels)


class ZeroOverheadAdapter(ProtocolAdapter):
    """All TSU operations are free and instantaneous."""
