"""TFluxDist: the TSU protocol sharded across message-passing nodes.

Each node of a TFluxDist machine is a TFluxSoft-style multicore: its
kernels share one coherent memory and one dedicated TSU-Emulator core
that drains a node-local TUB (:mod:`repro.tsu.software`).  What changes
off-chip is *where post-processing lands*: a completing DThread's
consumers may have their Ready Counts in another node's SMs, and the
update must then travel as a :class:`~repro.net.message.Message` over
the :class:`~repro.net.fabric.Network` instead of a locked cache line.

The :class:`~repro.tsu.group.TSUGroup` state machine is **never forked**
(the repo-wide invariant): one group spans all kernels of all nodes, and
this adapter — like every other platform adapter — adds costs only.  Two
deliberate simplifications, both timing-side and both following the
documented :mod:`repro.tsu.multigroup` precedent:

* Ready-Count decrements apply *functionally* when the producing node's
  emulator drains the completion; only the **wake signal** to a remote
  kernel pays NIC + link + latency.  A remote kernel that is already
  awake for other reasons may therefore observe ready work up to ~one
  message latency early — never late, and never functionally wrong.
* Each node's kernels price their loads/stores through the machine's
  coherent cache model as usual; the network adds the *cross-node* cost
  on top: lines last written by a remote node are pulled through the
  :class:`~repro.net.ownermap.RegionOwnerMap` and the destination NIC's
  ingest clock before the DThread can run.

With one node nothing is ever remote and every path above collapses to
the exact :class:`~repro.tsu.software.SoftwareTSUAdapter` code —
``tests/test_dist_differential.py`` pins the cycle counts bit-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.core.block import DDMBlock
from repro.core.dthread import DThreadInstance
from repro.core.dynamic import Subflow
from repro.net.fabric import Network
from repro.net.message import INLET_ENTRY_BYTES, UPDATE_BYTES, Message, MsgKind, NetParams
from repro.net.ownermap import RegionOwnerMap
from repro.net.topology import Topology
from repro.sim.accesses import AccessSummary
from repro.sim.engine import Engine, Event, Resource, fastpath_enabled
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup
from repro.tsu.software import SoftTSUCosts
from repro.tsu.tkt import NodeThreadToKernelTable

__all__ = ["DistTSUAdapter"]


class DistTSUAdapter(ProtocolAdapter):
    """One software-TSU shard per node; remote updates ride the network."""

    def __init__(
        self,
        engine: Engine,
        tsu: TSUGroup,
        nnodes: int,
        costs: SoftTSUCosts = SoftTSUCosts(),
        net_params: Optional[NetParams] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        super().__init__(engine, tsu)
        if not 1 <= nnodes <= tsu.nkernels:
            raise ValueError(
                f"need 1 <= nnodes <= nkernels, got nnodes={nnodes} "
                f"nkernels={tsu.nkernels}"
            )
        if nnodes > 1 and tsu.allow_stealing:
            raise ValueError(
                "work stealing pops remote SMs synchronously and cannot be "
                "modelled across nodes; use allow_stealing=False for nnodes > 1"
            )
        self.nnodes = nnodes
        self.costs = costs
        self.net = Network(engine, nnodes, net_params or NetParams(), topology)
        self._fast = fastpath_enabled()
        self._node_of_kernel = [k * nnodes // tsu.nkernels for k in range(tsu.nkernels)]
        self._node_kernels: list[list[int]] = [[] for _ in range(nnodes)]
        for k, n in enumerate(self._node_of_kernel):
            self._node_kernels[n].append(k)
        # Per-node software-TSU shard state (mirrors SoftwareTSUAdapter).
        self._tub_slots = [
            Resource(engine, capacity=costs.tub_segments, name=f"tub:{n}")
            for n in range(nnodes)
        ]
        self._queues: list[deque[tuple[int, int, object]]] = [
            deque() for _ in range(nnodes)
        ]
        self._emulator_wake: list[Optional[Event]] = [None] * nnodes
        self._emulator_started = False
        self._shutdown = False
        self.node_tkt: Optional[NodeThreadToKernelTable] = None
        # Cross-node memory pricing, wired by the platform after the
        # driver builds its memory system (the adapter is constructed
        # first — see SimulatedRuntime.__init__).
        self._memsys = None
        self._ownermap: Optional[RegionOwnerMap] = None
        # Statistics (plain ints on the hot path; see publish_counters).
        self.emulator_busy_cycles = 0
        self.emulator_items = 0
        self.emulator_updates = 0
        self.tub_pushes = 0
        self.fast_pushes = 0
        self.remote_updates = 0
        self.local_updates = 0

    def attach_memory(self, memsys, line_size: int, regions) -> None:
        """Enable cross-node data forwarding (called by TFluxDist)."""
        self._memsys = memsys
        self._ownermap = RegionOwnerMap(regions, line_size, self.nnodes)

    def publish_counters(self, counters) -> None:
        emu = counters.scope("emulator")
        emu.inc("busy_cycles", self.emulator_busy_cycles)
        emu.inc("items", self.emulator_items)
        emu.inc("updates", self.emulator_updates)
        counters.inc("tub.pushes", self.tub_pushes)
        counters.inc("engine.coalesced_pushes", self.fast_pushes)
        counters.inc("net.remote_updates", self.remote_updates)
        counters.inc("net.local_updates", self.local_updates)
        self.net.publish_counters(counters)

    # -- emulator lifecycle ------------------------------------------------
    def start(self) -> None:
        """Launch one TSU-Emulator process per node (idempotent)."""
        if not self._emulator_started:
            self._emulator_started = True
            for node in range(self.nnodes):
                self.engine.process(
                    self._emulator_proc(node), name=f"tsu-emulator:{node}"
                )

    def shutdown(self) -> None:
        self._shutdown = True
        for node in range(self.nnodes):
            self._kick_emulator(node)

    def _kick_emulator(self, node: int) -> None:
        wake = self._emulator_wake[node]
        if wake is not None and not wake.triggered:
            wake.succeed()

    def _emulator_proc(self, node: int) -> Generator:
        """One node's dedicated-core loop: drain its TUB, post-process."""
        costs = self.costs
        queue = self._queues[node]
        while True:
            if queue:
                kernel, local_iid, outcome = queue.popleft()
                nconsumers = len(self.tsu.current_block.consumers[local_iid])
                busy = costs.emulator_per_item + costs.emulator_per_update * nconsumers
                yield busy
                self.emulator_busy_cycles += busy
                self.emulator_items += 1
                self.emulator_updates += nconsumers
                self._post_process(node, kernel, local_iid, outcome)
            elif self._shutdown:
                return
            else:
                wake = Event(self.engine, name="tub-nonempty")
                self._emulator_wake[node] = wake
                yield wake
                self._emulator_wake[node] = None

    # -- post-processing ---------------------------------------------------
    def _post_process(
        self, node: int, kernel: int, local_iid: int, outcome: object = None
    ) -> None:
        if self.nnodes == 1:
            # The exact single-node code path: base wake semantics,
            # bit-identical to SoftwareTSUAdapter.
            self._apply_thread_completion(kernel, local_iid, outcome)
            return
        tkt = self.node_tkt
        assert tkt is not None
        consumers = self.tsu.current_block.consumers[local_iid]
        upd_by_node: dict[int, int] = {}
        for c in consumers:
            t = tkt.node_of(c)
            upd_by_node[t] = upd_by_node.get(t, 0) + 1
        for t, n in upd_by_node.items():
            if t == node:
                self.local_updates += n
            else:
                self.remote_updates += n

        newly_ready = self.tsu.complete_thread(kernel, local_iid, outcome)
        drained = self.tsu.phase_name in ("OUTLET_PENDING", "EXITED")

        ready_by_node: dict[int, set[int]] = {}
        for c in newly_ready:
            t, k = tkt.placement_of(c)
            ready_by_node.setdefault(t, set()).add(k)

        # Local wake now; remote wakes ride READY_UPDATE messages.
        if drained:
            self.wake_kernels(set(self._node_kernels[node]))
        elif node in ready_by_node:
            self.wake_kernels(ready_by_node[node])

        targets = set(upd_by_node) - {node}
        if drained:
            targets.update(t for t in range(self.nnodes) if t != node)
        wake_sets = {
            t: (set(self._node_kernels[t]) if drained else ready_by_node.get(t, set()))
            for t in targets
        }
        payloads = {t: max(upd_by_node.get(t, 0), 1) * UPDATE_BYTES for t in targets}
        self._fanout_ready(node, sorted(targets), payloads, wake_sets)

    def _send_ready(
        self, src: int, dst: int, payload_bytes: int, wake_set: set[int]
    ) -> None:
        self.net.transmit(
            Message(
                MsgKind.READY_UPDATE, src=src, dst=dst, payload_bytes=payload_bytes
            ),
            on_deliver=(
                (lambda msg, ks=wake_set: self.wake_kernels(ks)) if wake_set else None
            ),
        )

    def _fanout_ready(
        self,
        node: int,
        targets: list[int],
        payloads: dict[int, int],
        wake_sets: dict[int, set[int]],
    ) -> None:
        """Deliver Ready-Count updates (and their wake signals) to *targets*.

        The flat adapter sends one point-to-point message per target; the
        hierarchical adapter (:mod:`repro.tsu.hier`) overrides this to
        relay through cluster-head nodes.  Timing-only either way: the
        functional decrements already happened in ``complete_thread``.
        """
        for t in targets:
            self._send_ready(node, t, payloads[t], wake_sets[t])

    def _broadcast(self, node: int, kind: MsgKind, payload_bytes: int) -> None:
        """Send *kind* from *node* to every other node, waking each on
        arrival (Inlet/Outlet phase-change fan-out)."""
        for t in range(self.nnodes):
            if t == node:
                continue
            self.net.transmit(
                Message(kind, src=node, dst=t, payload_bytes=payload_bytes),
                on_deliver=lambda msg, ks=frozenset(self._node_kernels[t]): (
                    self.wake_kernels(set(ks))
                ),
            )

    # -- protocol costs ----------------------------------------------------
    def fetch(self, kernel: int) -> Generator:
        yield self.costs.fetch_cycles
        return self.tsu.fetch(kernel)

    def complete_inlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield self.costs.inlet_per_entry * max(block.size, 1)
        self.tsu.complete_inlet(kernel)
        assert self.tsu.tkt is not None
        self.node_tkt = NodeThreadToKernelTable.from_table(self.tsu.tkt, self.nnodes)
        if self.nnodes == 1:
            self.wake_kernels()
            return
        node = self._node_of_kernel[kernel]
        self.wake_kernels(set(self._node_kernels[node]))
        self._broadcast(
            node, MsgKind.INLET_BCAST, INLET_ENTRY_BYTES * max(block.size, 1)
        )

    def resolve_dynamic(
        self, kernel: int, local_iid: int, outcome: object
    ) -> Generator:
        # Same local pricing as TFluxSoft: the spawn descriptor is a
        # second TUB-sized push on the completing kernel's node.  Remote
        # nodes learn the new block's metadata through the ordinary
        # INLET_BCAST when it loads — already priced in complete_inlet.
        if isinstance(outcome, Subflow):
            yield self.costs.tub_push_cycles

    def complete_thread(
        self,
        kernel: int,
        local_iid: int,
        instance: DThreadInstance,
        outcome: object = None,
    ) -> Generator:
        # Push into the *node-local* TUB — same segment try-lock protocol
        # (and fast path) as SoftwareTSUAdapter.complete_thread.
        node = self._node_of_kernel[kernel]
        slots = self._tub_slots[node]
        if self._fast and slots.try_acquire():
            slots.release_at(self.engine.now + self.costs.tub_push_cycles)
            yield self.costs.tub_push_cycles
            self.fast_pushes += 1
        else:
            grant = slots.request()
            yield grant
            try:
                yield self.costs.tub_push_cycles
            finally:
                slots.release()
        self._queues[node].append((kernel, local_iid, outcome))
        self.tub_pushes += 1
        self._kick_emulator(node)

    def complete_outlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield self.costs.outlet_cycles
        self.tsu.complete_outlet(kernel)
        if self.nnodes == 1:
            self.wake_kernels()
            return
        node = self._node_of_kernel[kernel]
        self.wake_kernels(set(self._node_kernels[node]))
        if self.tsu.is_exited():
            # Distributed termination barrier: the node that ran the last
            # Outlet tells every other node to drain; it may not exit
            # until all have acknowledged (TERMINATE/ACK round trips).
            acks = []
            for t in range(self.nnodes):
                if t == node:
                    continue
                ack = self.engine.event(name=f"term-ack:{t}")
                acks.append(ack)

                def deliver_terminate(msg: Message, t=t, ack=ack) -> None:
                    self.wake_kernels(set(self._node_kernels[t]))
                    self.net.transmit(
                        Message(MsgKind.ACK, src=t, dst=node),
                        on_deliver=lambda m, ack=ack: ack.succeed(),
                    )

                self.net.transmit(
                    Message(MsgKind.TERMINATE, src=node, dst=t),
                    on_deliver=deliver_terminate,
                )
            if acks:
                yield self.engine.all_of(acks, name="termination-barrier")
        else:
            self._broadcast(node, MsgKind.OUTLET_BCAST, 0)

    # -- memory pricing ----------------------------------------------------
    def thread_memory_cycles(
        self, kernel: int, instance: DThreadInstance, summary: AccessSummary
    ) -> Optional[int]:
        """Coherent-cache cost plus cross-node operand pulls.

        ``None`` with one node (or before ``attach_memory``) defers to
        the driver's own pricing — the exact TFluxSoft path.
        """
        if self.nnodes == 1 or self._memsys is None:
            return None
        assert self._ownermap is not None
        base = int(self._memsys.run_summary(kernel, summary))
        node = self._node_of_kernel[kernel]
        pulls = self._ownermap.access(node, summary)
        if pulls:
            return base + self.net.pull(node, pulls)
        return base
