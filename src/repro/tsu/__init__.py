"""The Thread Synchronization Unit (TSU).

The TSU is the component that makes DDM work: it holds, per DThread
instance, the *Ready Count* and the consumer list, decrements consumers'
counts when a producer completes (the Post-Processing Phase), and hands
ready DThreads to querying Kernels (paper §2, §3.3).

* :mod:`repro.tsu.group` — the **TSU Group**: the functional scheduling
  state machine shared by every implementation (per-kernel Synchronization
  Memories, the Thread-to-Kernel Table, block sequencing with
  Inlet/Outlet hand-off).
* :mod:`repro.tsu.sm` / :mod:`repro.tsu.tkt` / :mod:`repro.tsu.tub` — the
  TFluxSoft data structures: Synchronization Memory, Thread-to-Kernel
  Table (Thread Indexing), and the segmented Thread-to-Update Buffer with
  its try-lock discipline.
* :mod:`repro.tsu.policy` — placement (TKT construction) and
  ready-thread-selection policies ("most likely to maximise spatial
  locality").
* :mod:`repro.tsu.hardware` — the TFluxHard cost adapter: every TSU
  operation crosses the system network through the MMI and pays the
  configurable TSU processing latency.
* :mod:`repro.tsu.software` — the TFluxSoft cost adapter: kernels push
  completions into the TUB; a TSU Emulator thread on a dedicated core
  drains it.
* :mod:`repro.tsu.multigroup` — the §4.1 multiple-TSU-Groups extension.
* :mod:`repro.tsu.dist` — the TFluxDist cost adapter: one software-TSU
  shard per node, remote Ready-Count updates as :mod:`repro.net`
  messages.

(The TFluxCell cost adapter lives with its substrate in
:mod:`repro.cell.adapter`.)
"""

from repro.tsu.group import Fetch, FetchKind, TSUGroup
from repro.tsu.dist import DistTSUAdapter
from repro.tsu.multigroup import MultiGroupHardwareAdapter
from repro.tsu.sm import SynchronizationMemory, ThreadEntry
from repro.tsu.tkt import NodeThreadToKernelTable, ThreadToKernelTable
from repro.tsu.tub import ThreadUpdateBuffer
from repro.tsu.policy import contiguous_placement, round_robin_placement

__all__ = [
    "Fetch",
    "FetchKind",
    "TSUGroup",
    "DistTSUAdapter",
    "MultiGroupHardwareAdapter",
    "SynchronizationMemory",
    "ThreadEntry",
    "NodeThreadToKernelTable",
    "ThreadToKernelTable",
    "ThreadUpdateBuffer",
    "contiguous_placement",
    "round_robin_placement",
]
