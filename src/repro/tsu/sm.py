"""Synchronization Memory (SM).

"The Ready Count values are stored in a data structure named
Synchronization Memory (SM).  One such structure exists for each kernel"
(paper §4.2).  An SM holds the :class:`ThreadEntry` metadata of every
DThread instance assigned to its kernel, plus that kernel's ready queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.core.dthread import DThreadInstance

__all__ = ["ThreadEntry", "SynchronizationMemory"]


@dataclass
class ThreadEntry:
    """Per-instance TSU metadata (one Synchronization Graph node, loaded
    by the block's Inlet DThread)."""

    local_iid: int
    instance: DThreadInstance
    ready_count: int
    initial_ready_count: int
    consumers: list[int]
    completed: bool = False
    #: Squashed: every input arc died (unchosen conditional branches /
    #: squashed producers).  The entry never fires; it is retired at
    #: squash time and counts toward block completion.  Its Ready Count
    #: is frozen — decrements from producers that still complete no-op.
    squashed: bool = False

    def decrement(self) -> bool:
        """Post-processing step: one producer completed.  True if now ready."""
        if self.ready_count <= 0:
            raise RuntimeError(
                f"ready count underflow for {self.instance.name} "
                "(duplicate completion notification?)"
            )
        self.ready_count -= 1
        return self.ready_count == 0


class SynchronizationMemory:
    """One kernel's slice of TSU state: entries + the ready queue.

    The ready queue is a min-heap on the local instance id.  Local ids are
    dense in (template, context) order, so popping the smallest id hands a
    kernel consecutive contexts of the same template back-to-back — the
    "maximise spatial locality" selection policy of §3.1 in its simplest
    effective form.
    """

    def __init__(self, kernel_id: int) -> None:
        self.kernel_id = kernel_id
        self._entries: dict[int, ThreadEntry] = {}
        self._ready: list[int] = []
        self.loads = 0
        self.updates = 0

    # -- loading (Inlet) ------------------------------------------------------
    def load(self, entry: ThreadEntry) -> None:
        if entry.local_iid in self._entries:
            raise KeyError(f"duplicate load of instance {entry.local_iid}")
        self._entries[entry.local_iid] = entry
        self.loads += 1
        # A pre-squashed entry (squash-at-load: the branch resolved while
        # an earlier block ran) never joins the ready queue, even at
        # Ready Count zero (its dead arcs may all be cross-block).
        if entry.ready_count == 0 and not entry.squashed:
            heapq.heappush(self._ready, entry.local_iid)

    def clear(self) -> None:
        """Outlet: deallocate all TSU resources of the finished block."""
        self._entries.clear()
        self._ready.clear()

    # -- scheduling ---------------------------------------------------------
    def pop_ready(self) -> Optional[ThreadEntry]:
        if not self._ready:
            return None
        return self._entries[heapq.heappop(self._ready)]

    def peek_ready(self) -> bool:
        return bool(self._ready)

    # -- post-processing ---------------------------------------------------
    def decrement(self, local_iid: int) -> bool:
        """Decrement one entry's Ready Count; enqueue if it became ready.

        Squashed entries absorb the update without state change: the
        producer's data has nowhere to go, and the entry was already
        retired when its last live input died.
        """
        entry = self._entries[local_iid]
        self.updates += 1
        if entry.squashed:
            return False
        became_ready = entry.decrement()
        if became_ready:
            heapq.heappush(self._ready, local_iid)
        return became_ready

    def mark_completed(self, local_iid: int) -> ThreadEntry:
        entry = self._entries[local_iid]
        if entry.completed:
            raise RuntimeError(f"instance {local_iid} completed twice")
        if entry.ready_count != 0:
            raise RuntimeError(
                f"instance {local_iid} completed with ready count "
                f"{entry.ready_count}"
            )
        entry.completed = True
        return entry

    def squash(self, local_iid: int) -> ThreadEntry:
        """Retire an entry whose every input arc died (never fires).

        Marks it squashed *and* completed in one step; the caller counts
        it toward block completion and phantom-decrements its consumers.
        """
        entry = self._entries[local_iid]
        if entry.completed or entry.squashed:
            raise RuntimeError(
                f"instance {local_iid} squashed after completing/squashing"
            )
        entry.squashed = True
        entry.completed = True
        return entry

    # -- introspection ----------------------------------------------------------
    def entry(self, local_iid: int) -> ThreadEntry:
        return self._entries[local_iid]

    def __contains__(self, local_iid: int) -> bool:
        return local_iid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def ready_count_sum(self) -> int:
        return sum(e.ready_count for e in self._entries.values())
