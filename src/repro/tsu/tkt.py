"""Thread-to-Kernel Table (TKT) — Thread Indexing.

"A special table which is automatically embedded into the application's
code by the DDM Preprocessor, the Thread to Kernel Table (TKT) associates
each DThread with the SM containing its Ready Count value.  As such, when
the TSU Emulator is to update a DThread's Ready Count, it can directly
access the SM containing this DThread" (paper §4.2) — eliminating the
linear search over SMs as the node count grows.

:class:`NodeThreadToKernelTable` extends the lookup for TFluxDist: each
kernel belongs to exactly one *node*, so the same table also answers
"which node's TSU shard holds this DThread" — the datum the distributed
post-processing needs to decide whether a Ready-Count update is a local
SM decrement or a network message.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ThreadToKernelTable", "NodeThreadToKernelTable"]


class ThreadToKernelTable:
    """Dense map: block-local instance id → kernel (SM) index."""

    def __init__(self, assignment: Sequence[int], nkernels: int) -> None:
        bad = [k for k in assignment if not 0 <= k < nkernels]
        if bad:
            raise ValueError(f"kernel indices out of range: {bad[:5]}")
        self._table = list(assignment)
        self.nkernels = nkernels

    def kernel_of(self, local_iid: int) -> int:
        """Direct index — O(1), the point of Thread Indexing."""
        return self._table[local_iid]

    @property
    def assignment(self) -> tuple[int, ...]:
        """The full instance → kernel map (immutable view)."""
        return tuple(self._table)

    def __len__(self) -> int:
        return len(self._table)

    def threads_of(self, kernel: int) -> list[int]:
        return [i for i, k in enumerate(self._table) if k == kernel]

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-kernel instance counts (1.0 = perfect)."""
        counts = [0] * self.nkernels
        for k in self._table:
            counts[k] += 1
        mean = len(self._table) / self.nkernels if self.nkernels else 0
        return max(counts) / mean if mean else 1.0


class NodeThreadToKernelTable(ThreadToKernelTable):
    """TKT that also resolves the *node* owning each kernel's SM.

    Kernels partition contiguously across nodes with the same integer
    formula :mod:`repro.tsu.multigroup` uses for TSU Groups
    (``kernel * nnodes // nkernels``), so kernels of one node are
    neighbours — matching how TFluxDist composes N TFluxSoft-style nodes
    whose kernel ids are globally numbered.
    """

    def __init__(self, assignment: Sequence[int], nkernels: int, nnodes: int) -> None:
        super().__init__(assignment, nkernels)
        if not 1 <= nnodes <= nkernels:
            raise ValueError(
                f"need 1 <= nnodes <= nkernels, got nnodes={nnodes} nkernels={nkernels}"
            )
        self.nnodes = nnodes
        self._node_of_kernel = [k * nnodes // nkernels for k in range(nkernels)]

    @classmethod
    def from_table(cls, tkt: ThreadToKernelTable, nnodes: int) -> "NodeThreadToKernelTable":
        """Extend a freshly built per-block TKT with the node dimension."""
        return cls(tkt.assignment, tkt.nkernels, nnodes)

    def node_of_kernel(self, kernel: int) -> int:
        return self._node_of_kernel[kernel]

    def node_of(self, local_iid: int) -> int:
        """Node whose TSU shard holds this DThread's Ready Count."""
        return self._node_of_kernel[self._table[local_iid]]

    def placement_of(self, local_iid: int) -> tuple[int, int]:
        """The full instance → (node, kernel) mapping of the tentpole."""
        kernel = self._table[local_iid]
        return self._node_of_kernel[kernel], kernel

    def kernels_of_node(self, node: int) -> list[int]:
        return [k for k in range(self.nkernels) if self._node_of_kernel[k] == node]
