"""Thread-to-Kernel Table (TKT) — Thread Indexing.

"A special table which is automatically embedded into the application's
code by the DDM Preprocessor, the Thread to Kernel Table (TKT) associates
each DThread with the SM containing its Ready Count value.  As such, when
the TSU Emulator is to update a DThread's Ready Count, it can directly
access the SM containing this DThread" (paper §4.2) — eliminating the
linear search over SMs as the node count grows.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ThreadToKernelTable"]


class ThreadToKernelTable:
    """Dense map: block-local instance id → kernel (SM) index."""

    def __init__(self, assignment: Sequence[int], nkernels: int) -> None:
        bad = [k for k in assignment if not 0 <= k < nkernels]
        if bad:
            raise ValueError(f"kernel indices out of range: {bad[:5]}")
        self._table = list(assignment)
        self.nkernels = nkernels

    def kernel_of(self, local_iid: int) -> int:
        """Direct index — O(1), the point of Thread Indexing."""
        return self._table[local_iid]

    def __len__(self) -> int:
        return len(self._table)

    def threads_of(self, kernel: int) -> list[int]:
        return [i for i, k in enumerate(self._table) if k == kernel]

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-kernel instance counts (1.0 = perfect)."""
        counts = [0] * self.nkernels
        for k in self._table:
            counts[k] += 1
        mean = len(self._table) / self.nkernels if self.nkernels else 0
        return max(counts) / mean if mean else 1.0
