"""Thread-to-Update Buffer (TUB).

"When a DThread completes its execution, its kernel inserts the
identifiers of its consumer DThreads in a shared unit named the Thread to
Update Buffer (TUB).  The TSU Emulator then reads the entries of the TUB
and decreases the Ready Counts of the corresponding consumer DThreads. ...
To avoid long idle periods the TUB is partitioned into segments.  When a
kernel writes into the TUB, it uses the first available segment using
try/lock, a non-blocking technique which locks an entity only if it is
available" (paper §4.2).

This implementation is used directly (with real locks) by the native
threaded backend, and as the functional store behind the DES timing
adapter for TFluxSoft (which models segment contention with a capacity
resource and charges the observed retry counts).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["TUBFullError", "ThreadUpdateBuffer"]


class TUBFullError(RuntimeError):
    """All segments are locked or full — the producer must retry."""


@dataclass
class _Segment:
    capacity: int
    items: list = field(default_factory=list)
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def free(self) -> int:
        return self.capacity - len(self.items)


class ThreadUpdateBuffer:
    """Segmented completion-notification buffer with try-lock insertion.

    Each entry is ``(producer_kernel, local_iid)`` — "the identifiers of
    its consumer DThreads" are resolved by the emulator via the TKT, so
    the kernel only posts the completed thread.
    """

    def __init__(self, nsegments: int, segment_capacity: int = 64) -> None:
        if nsegments < 1 or segment_capacity < 1:
            raise ValueError("TUB needs >=1 segment of capacity >=1")
        self._segments = [_Segment(segment_capacity) for _ in range(nsegments)]
        self.nsegments = nsegments
        self.segment_capacity = segment_capacity
        # Statistics (racy increments are acceptable: diagnostics only).
        self.pushes = 0
        self.push_retries = 0
        self.drains = 0

    def publish_counters(self, counters) -> None:
        scope = counters.scope("tub")
        scope.inc("pushes", self.pushes)
        scope.inc("retries", self.push_retries)
        scope.inc("drains", self.drains)

    # -- producer side (Kernels) ------------------------------------------------
    def try_push(
        self, item, preferred_segment: int = 0
    ) -> tuple[bool, int]:
        """One try-lock pass over the segments, starting at *preferred*.

        Returns ``(success, probes)`` where probes counts the segments
        examined; a failed pass means every segment was momentarily locked
        or full (the caller retries — the paper's "only one segment is
        locked by each kernel at any time point" discipline).
        """
        n = self.nsegments
        probes = 0
        for off in range(n):
            seg = self._segments[(preferred_segment + off) % n]
            probes += 1
            if not seg.lock.acquire(blocking=False):
                continue
            try:
                if seg.free > 0:
                    seg.items.append(item)
                    self.pushes += 1
                    return True, probes
            finally:
                seg.lock.release()
        return False, probes

    def push(self, item, preferred_segment: int = 0, max_spins: int = 1_000_000) -> int:
        """Insert, spinning over try-lock passes; returns retry count."""
        retries = 0
        for _ in range(max_spins):
            ok, _probes = self.try_push(item, preferred_segment)
            if ok:
                self.push_retries += retries
                return retries
            retries += 1
        raise TUBFullError("TUB insertion spun out (emulator stalled?)")

    # -- consumer side (TSU Emulator) ----------------------------------------------
    def drain(self) -> list:
        """Lock and empty every segment; returns the collected items."""
        collected: list = []
        for seg in self._segments:
            with seg.lock:
                if seg.items:
                    collected.extend(seg.items)
                    seg.items.clear()
        if collected:
            self.drains += 1
        return collected

    # -- introspection ------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s.items) for s in self._segments)

    @property
    def capacity(self) -> int:
        return self.nsegments * self.segment_capacity

    def occupancy(self) -> float:
        return len(self) / self.capacity
