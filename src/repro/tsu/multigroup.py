"""Multiple TSU Groups — the §4.1 extension.

"For systems with very large number of CPUs it may be beneficial to have
multiple TSU Groups.  A version of the TSU Group supporting such
functionality is currently under development."  This module builds that
version for TFluxHard.

Scheduling semantics are unchanged — the functional
:class:`~repro.tsu.group.TSUGroup` remains the single source of truth, so
programs behave identically.  What changes is the *hardware*: the chip
carries *G* TSU Group devices, each with its own MMI/command port on its
own network segment, serving a static partition of the kernels:

* a kernel's fetches and completion commands go to **its own** group's
  port — dividing the queueing that a single port suffers under
  fine-grained DThreads by ~G;
* the Post-Processing Phase of a completed DThread whose consumer lives
  in a *different* group's Synchronization Memory pays an inter-group
  transfer (the TSU-to-TSU communication that the single TSU Group of
  §3.3 handled "internally without the intervention of any other unit" —
  the cost the grouping originally avoided, now re-introduced at group
  granularity).

The A5 ablation benchmark (``bench_ablation_multigroup.py``) measures the
trade-off the paper anticipated: contention relief versus inter-group
traffic.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.block import DDMBlock
from repro.core.dthread import DThreadInstance
from repro.core.dynamic import Subflow
from repro.sim.engine import Engine
from repro.sim.interconnect import SystemBus
from repro.sim.mmi import InflightGate, MemoryMappedInterface
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup

__all__ = ["MultiGroupHardwareAdapter"]


class MultiGroupHardwareAdapter(ProtocolAdapter):
    """TFluxHard with *n_groups* hardware TSU Group devices."""

    def __init__(
        self,
        engine: Engine,
        tsu: TSUGroup,
        n_groups: int = 2,
        tsu_processing_cycles: int = 4,
        l1_access_cycles: int = 2,
        intergroup_latency: int = 20,
    ) -> None:
        super().__init__(engine, tsu)
        if n_groups < 1:
            raise ValueError("need at least one TSU group")
        if n_groups > tsu.nkernels:
            raise ValueError("more TSU groups than kernels is pointless")
        self.n_groups = n_groups
        self.intergroup_latency = intergroup_latency
        # Each group device sits on its own network segment with its own
        # command port — but all devices front the *same* functional TSU,
        # so they share one in-flight gate: the DES fast path may only
        # coalesce an op that is alone in front of the TSU, not merely
        # alone on its own device (a sibling device's mutation landing in
        # the window would otherwise be observed at a different logical
        # instant than on the eager path).
        self.buses = [SystemBus(engine) for _ in range(n_groups)]
        gate = InflightGate()
        self.mmis = [
            MemoryMappedInterface(
                engine,
                bus,
                tsu_processing_cycles=tsu_processing_cycles,
                l1_access_cycles=l1_access_cycles,
                inflight=gate,
            )
            for bus in self.buses
        ]
        self.intergroup_transfers = 0

    def publish_counters(self, counters) -> None:
        counters.inc("tsu.intergroup_transfers", self.intergroup_transfers)
        mmi = counters.scope("mmi")
        mmi.inc("commands", sum(m.commands for m in self.mmis))
        mmi.inc("queries", sum(m.queries for m in self.mmis))
        # Each group's MMI coalesces ops that were alone in front of the
        # shared TSU (the in-flight gate spans all group devices).  The
        # statistics live under engine.* — the one namespace allowed to
        # differ between TFLUX_FASTPATH on and off.
        engine = counters.scope("engine")
        engine.inc("coalesced_commands", sum(m.fast_commands for m in self.mmis))
        engine.inc("coalesced_queries", sum(m.fast_queries for m in self.mmis))

    # -- partitioning -----------------------------------------------------------
    def group_of_kernel(self, kernel: int) -> int:
        """Static kernel -> TSU group partition (contiguous blocks)."""
        return kernel * self.n_groups // self.tsu.nkernels

    def _mmi(self, kernel: int) -> MemoryMappedInterface:
        return self.mmis[self.group_of_kernel(kernel)]

    def _cross_group_updates(self, kernel: int, local_iid: int) -> int:
        """Consumers of *local_iid* living in other groups' SMs."""
        tkt = self.tsu.tkt
        if tkt is None:
            return 0
        my_group = self.group_of_kernel(kernel)
        count = 0
        for consumer in self.tsu.current_block.consumers[local_iid]:
            if self.group_of_kernel(tkt.kernel_of(consumer)) != my_group:
                count += 1
        return count

    # -- protocol -----------------------------------------------------------------
    def fetch(self, kernel: int) -> Generator:
        result = yield from self._mmi(kernel).query(lambda: self.tsu.fetch(kernel))
        return result

    def complete_inlet(self, kernel: int, block: DDMBlock) -> Generator:
        mmi = self._mmi(kernel)
        per_entry = mmi.l1_access_cycles + 2  # posted stores (see hardware.py)
        yield from mmi.command(lambda: None)
        yield per_entry * max(block.size - 1, 0)
        self.tsu.complete_inlet(kernel)
        self.wake_kernels()

    def resolve_dynamic(
        self, kernel: int, local_iid: int, outcome: object
    ) -> Generator:
        # Same pricing as the single-group device (hardware.py): spawned
        # templates stream into the kernel's own group as posted stores.
        if isinstance(outcome, Subflow):
            mmi = self._mmi(kernel)
            per_entry = mmi.l1_access_cycles + 2
            yield from mmi.command(lambda: None)
            yield per_entry * max(outcome.ninstances - 1, 0)

    def complete_thread(
        self,
        kernel: int,
        local_iid: int,
        instance: DThreadInstance,
        outcome: object = None,
    ) -> Generator:
        cross = self._cross_group_updates(kernel, local_iid)
        mmi = self._mmi(kernel)
        yield from mmi.command(
            lambda: self._apply_thread_completion(kernel, local_iid, outcome)
        )
        if cross:
            # Inter-group Ready-Count updates travel between the TSU Group
            # devices; they occupy the source group's port (not the CPU),
            # so the kernel only observes the transfer kick-off latency.
            # Modelling note: the functional update is applied eagerly
            # (inside the command above), so remote consumers may wake up
            # to ~intergroup_latency cycles early — a deliberate
            # simplification, second-order at the 20-cycle default.
            self.intergroup_transfers += cross
            yield self.intergroup_latency

    def complete_outlet(self, kernel: int, block: DDMBlock) -> Generator:
        yield from self._mmi(kernel).command(
            lambda: self.tsu.complete_outlet(kernel)
        )
        self.wake_kernels()
