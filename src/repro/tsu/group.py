"""The TSU Group: the functional scheduling state machine.

"In TFlux we decided to group the TSUs in a single unit named the TSU
Group.  The units of the TSU Group are split into two categories: those
that serve the CPU that the TSU corresponds to and those that are common
for all CPUs" (paper §3.3).  Here the per-CPU units are the
per-kernel :class:`~repro.tsu.sm.SynchronizationMemory` objects and the
common units are the block sequencer, the Thread-to-Kernel Table, and the
completion counters.

This class is *functional only* — it implements exactly what the TSU does,
with no notion of time.  The hardware, software and Cell implementations
wrap it with their own cost/latency adapters, which is precisely the
paper's virtualization claim: same scheduling semantics, different
mechanism.

Protocol (driven by the Kernels through the platform adapters):

1. ``fetch(kernel)`` → a :class:`Fetch` describing what the kernel should
   do next: run the current block's Inlet, run an application DThread,
   run the Outlet, wait, or exit.
2. After an application DThread finishes, ``complete_thread(kernel, local_iid)``
   performs the Post-Processing Phase: every consumer's Ready Count is
   decremented through the TKT-indexed SM; threads reaching zero join
   their kernel's ready queue.
3. ``complete_inlet`` / ``complete_outlet`` drive block sequencing:
   the Outlet clears the SMs and (unless the block was the last) arms the
   next block's Inlet; the last Outlet flips the TSU into the exit state.

Dynamic graphs extend step 2: ``complete_thread`` carries the DThread's
*outcome*.  A :class:`~repro.core.dynamic.Subflow` outcome expands into a
fresh graph epoch, is cut into capacity-sized blocks with globally unique
ids, and queued; the next Outlet splices the queued blocks directly after
the current one, so spawned work runs before the remaining static blocks
and the TSU exits only when no block — static or spawned — remains.  A
branch-key outcome resolves the instance's conditional arcs through its
epoch (:class:`~repro.core.dynamic.GraphEpoch`): squashed instances in
the current block are retired on the spot (counting toward block
completion, phantom-decrementing their consumers), squashed instances in
future blocks are retired at load time by their block's Inlet.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.block import DDMBlock, split_into_blocks
from repro.core.dthread import DThreadInstance
from repro.core.dynamic import GraphEpoch, Subflow
from repro.core.graph import ExpandedGraph
from repro.tsu.policy import PlacementPolicy, contiguous_placement
from repro.tsu.sm import SynchronizationMemory, ThreadEntry
from repro.tsu.tkt import ThreadToKernelTable

__all__ = ["FetchKind", "Fetch", "TSUGroup"]


class FetchKind(enum.Enum):
    """What the TSU tells a querying kernel to do."""

    INLET = "inlet"
    THREAD = "thread"
    OUTLET = "outlet"
    WAIT = "wait"
    EXIT = "exit"


@dataclass(frozen=True)
class Fetch:
    kind: FetchKind
    instance: Optional[DThreadInstance] = None
    local_iid: Optional[int] = None
    block: Optional[DDMBlock] = None


class _Phase(enum.Enum):
    INLET_PENDING = 0  # waiting for some kernel to claim & run the Inlet
    LOADING = 1  # inlet claimed, metadata loading in progress
    RUNNING = 2
    OUTLET_PENDING = 3
    FINISHING = 4  # outlet claimed, clearing in progress
    EXITED = 5


class TSUGroup:
    """Scheduling state machine over a program's DDM Blocks."""

    def __init__(
        self,
        nkernels: int,
        blocks: list[DDMBlock],
        placement: PlacementPolicy = contiguous_placement,
        allow_stealing: bool = False,
        root_graph: Optional[ExpandedGraph] = None,
        tsu_capacity: Optional[int] = None,
    ) -> None:
        if nkernels < 1:
            raise ValueError("need at least one kernel")
        if not blocks:
            raise ValueError("program has no blocks")
        self.nkernels = nkernels
        self.blocks = blocks
        self.placement = placement
        #: §3.1 reads the TSU's reply as "one of the ready DThreads",
        #: locality-preferring: with stealing enabled, an idle kernel may
        #: be handed a ready DThread from another kernel's SM instead of
        #: waiting.  Off by default (strictly SM-local dispatch).
        self.allow_stealing = allow_stealing
        self.sms = [SynchronizationMemory(k) for k in range(nkernels)]
        self.tkt: Optional[ThreadToKernelTable] = None

        self._block_idx = 0
        self._phase = _Phase.INLET_PENDING
        self._completed_in_block = 0
        # Dynamic-graph state.  Every block belongs to a graph epoch
        # (the statically expanded program, or one spawned subflow);
        # epochs carry the conditional-arc/squash bookkeeping.  Spawned
        # blocks queue here until the running block's Outlet splices
        # them in.  Drivers that never use dynamic features may omit
        # root_graph (hand-built block lists in tests): spawning still
        # works, conditional arcs then only exist inside subflows.
        self.tsu_capacity = tsu_capacity
        self._epoch_of_block: dict[int, GraphEpoch] = {}
        if root_graph is not None:
            root_epoch = GraphEpoch(root_graph)
            for blk in blocks:
                self._epoch_of_block[blk.block_id] = root_epoch
        self._next_block_id = max(b.block_id for b in blocks) + 1
        self._pending_dynamic: deque[DDMBlock] = deque()
        self._local_of_current: dict[int, int] = {}
        # Statistics: plain ints on the hot path, published into the
        # repro.obs counter registry at end of run (publish_counters).
        self.fetches = 0
        self.waits = 0
        self.post_updates = 0
        self.threads_dispatched = 0
        self.steals = 0
        self.spawned_subflows = 0
        self.dynamic_blocks = 0
        self.squashed_threads = 0

    def publish_counters(self, counters) -> None:
        """Publish scheduling counters under the ``tsu.`` namespace."""
        scope = counters.scope("tsu")
        scope.inc("fetches", self.fetches)
        scope.inc("waits", self.waits)
        scope.inc("post_updates", self.post_updates)
        scope.inc("dispatched", self.threads_dispatched)
        scope.inc("steals", self.steals)
        scope.inc("spawns", self.spawned_subflows)
        scope.inc("dynamic_blocks", self.dynamic_blocks)
        scope.inc("squashed", self.squashed_threads)

    # -- helpers -----------------------------------------------------------
    @property
    def current_block(self) -> DDMBlock:
        return self.blocks[self._block_idx]

    @property
    def phase_name(self) -> str:
        return self._phase.name

    def is_exited(self) -> bool:
        return self._phase == _Phase.EXITED

    # -- the Inlet's work ---------------------------------------------------------
    def _load_block(self, block: DDMBlock) -> None:
        """What the Inlet DThread does: load all metadata into the SMs.

        Instances whose branch already resolved against them while an
        earlier block ran (their epoch marked them squashed) load
        pre-squashed and retire immediately: they count toward block
        completion and phantom-decrement their in-block consumers.
        """
        assignment = self.placement(block, self.nkernels)
        self.tkt = ThreadToKernelTable(assignment, self.nkernels)
        epoch = self._epoch_of_block.get(block.block_id)
        need_index = epoch is not None and (epoch.has_cond or epoch.squashed)
        self._local_of_current = {}
        presquashed: list[ThreadEntry] = []
        for local_iid, inst in enumerate(block.instances):
            entry = ThreadEntry(
                local_iid=local_iid,
                instance=inst,
                ready_count=block.ready_counts[local_iid],
                initial_ready_count=block.ready_counts[local_iid],
                consumers=list(block.consumers[local_iid]),
            )
            if epoch is not None and inst.iid in epoch.squashed:
                entry.squashed = True
                entry.completed = True
                presquashed.append(entry)
            self.sms[assignment[local_iid]].load(entry)
            if need_index:
                self._local_of_current[inst.iid] = local_iid
        self._completed_in_block = 0
        for entry in presquashed:
            self.squashed_threads += 1
            self._completed_in_block += 1
            for consumer in entry.consumers:
                self.sms[assignment[consumer]].decrement(consumer)
                self.post_updates += 1

    # -- kernel-facing protocol ---------------------------------------------------
    def fetch(self, kernel: int) -> Fetch:
        """FindReadyThread: what should *kernel* execute next?"""
        self.fetches += 1
        if self._phase == _Phase.EXITED:
            return Fetch(FetchKind.EXIT)

        if self._phase == _Phase.INLET_PENDING:
            # First querying kernel claims the Inlet.
            self._phase = _Phase.LOADING
            block = self.current_block
            return Fetch(FetchKind.INLET, instance=block.inlet, block=block)

        if self._phase == _Phase.RUNNING:
            entry = self.sms[kernel].pop_ready()
            if entry is None and self.allow_stealing:
                victim = max(
                    (sm for sm in self.sms if sm.peek_ready()),
                    key=lambda sm: len(sm._ready),
                    default=None,
                )
                if victim is not None:
                    entry = victim.pop_ready()
                    self.steals += 1
            if entry is not None:
                self.threads_dispatched += 1
                return Fetch(
                    FetchKind.THREAD,
                    instance=entry.instance,
                    local_iid=entry.local_iid,
                    block=self.current_block,
                )
            self.waits += 1
            return Fetch(FetchKind.WAIT)

        if self._phase == _Phase.OUTLET_PENDING:
            self._phase = _Phase.FINISHING
            block = self.current_block
            return Fetch(FetchKind.OUTLET, instance=block.outlet, block=block)

        # LOADING / FINISHING: another kernel is running the Inlet/Outlet.
        self.waits += 1
        return Fetch(FetchKind.WAIT)

    def has_work(self, kernel: int) -> bool:
        """Cheap peek: would a fetch by *kernel* return something other
        than WAIT right now?  Backends call this from their ``wait`` step
        to close the lost-wakeup window between a (possibly delayed) WAIT
        reply and parking — step 2 of the wake discipline documented in
        :mod:`repro.runtime.core`."""
        if self._phase in (_Phase.INLET_PENDING, _Phase.OUTLET_PENDING, _Phase.EXITED):
            return True
        if self._phase == _Phase.RUNNING:
            if self.sms[kernel].peek_ready():
                return True
            return self.allow_stealing and any(
                sm.peek_ready() for sm in self.sms
            )
        return False

    def complete_inlet(self, kernel: int) -> None:
        if self._phase != _Phase.LOADING:
            raise RuntimeError(f"inlet completion in phase {self._phase}")
        self._load_block(self.current_block)
        # A block with no live application DThreads (empty hand-built
        # block lists, or every instance squashed-at-load) must fall
        # straight through to its Outlet rather than stall in RUNNING.
        if self._completed_in_block >= self.current_block.size:
            self._phase = _Phase.OUTLET_PENDING
        else:
            self._phase = _Phase.RUNNING

    def complete_thread(
        self, kernel: int, local_iid: int, outcome: Any = None
    ) -> list[int]:
        """Post-Processing Phase; returns consumers that became ready.

        *outcome* is the completed DThread's body return value: ``None``
        for static threads, a :class:`~repro.core.dynamic.Subflow` to
        spawn, any other value a branch key for the thread's conditional
        arcs.  Branch resolution (squash marking + retirement) happens
        before the consumer sweep so dead targets absorb their
        decrements instead of firing.
        """
        if self._phase != _Phase.RUNNING:
            raise RuntimeError(f"thread completion in phase {self._phase}")
        assert self.tkt is not None
        sm = self.sms[self.tkt.kernel_of(local_iid)]
        entry = sm.mark_completed(local_iid)
        newly_ready: list[int] = []
        epoch = self._epoch_of_block.get(self.current_block.block_id)
        if epoch is not None and epoch.has_cond:
            giid = self.current_block.instances[local_iid].iid
            key = None if isinstance(outcome, Subflow) else outcome
            newly_squashed = epoch.resolve(giid, key)
            if newly_squashed:
                self._retire_squashed(newly_squashed, newly_ready)
        for consumer in entry.consumers:
            consumer_sm = self.sms[self.tkt.kernel_of(consumer)]
            if consumer_sm.decrement(consumer):
                newly_ready.append(consumer)
            self.post_updates += 1
        if isinstance(outcome, Subflow):
            self._spawn(outcome)
        self._completed_in_block += 1
        if self._completed_in_block == self.current_block.size:
            self._phase = _Phase.OUTLET_PENDING
        return newly_ready

    def _retire_squashed(
        self, giids: list[int], newly_ready: list[int]
    ) -> None:
        """Retire newly squashed instances that live in the current block.

        Two passes: mark every in-block victim first (so the phantom
        decrements below no-op on siblings squashed by the same
        resolution), then count them completed and phantom-decrement
        their consumers — survivors with other live inputs may become
        ready.  Victims in future blocks stay in their epoch's squash
        set and retire at load time.
        """
        assert self.tkt is not None
        retired: list[ThreadEntry] = []
        for giid in giids:
            local_iid = self._local_of_current.get(giid)
            if local_iid is None:
                continue  # future block: squash-at-load
            sm = self.sms[self.tkt.kernel_of(local_iid)]
            retired.append(sm.squash(local_iid))
        for entry in retired:
            self.squashed_threads += 1
            self._completed_in_block += 1
            for consumer in entry.consumers:
                consumer_sm = self.sms[self.tkt.kernel_of(consumer)]
                if consumer_sm.decrement(consumer):
                    newly_ready.append(consumer)
                self.post_updates += 1

    def _spawn(self, subflow: Subflow) -> None:
        """Expand a spawned subflow into queued dynamic blocks."""
        graph = subflow.expand()
        epoch = GraphEpoch(graph)
        blocks = split_into_blocks(
            graph,
            self.tsu_capacity,
            first_block_id=self._next_block_id,
            mark_last=False,
        )
        self._next_block_id += len(blocks)
        for blk in blocks:
            self._epoch_of_block[blk.block_id] = epoch
            self._pending_dynamic.append(blk)
        self.spawned_subflows += 1
        self.dynamic_blocks += len(blocks)

    def complete_outlet(self, kernel: int) -> None:
        if self._phase != _Phase.FINISHING:
            raise RuntimeError(f"outlet completion in phase {self._phase}")
        for sm in self.sms:
            sm.clear()
        # Splice blocks spawned during this block directly after it:
        # dynamic work runs before the remaining static blocks, and a
        # dynamic block's own spawns nest the same way (depth-first).
        if self._pending_dynamic:
            for offset, blk in enumerate(self._pending_dynamic):
                self.blocks.insert(self._block_idx + 1 + offset, blk)
            self._pending_dynamic.clear()
        # Exit on position, not on the is_last flag: spawned blocks may
        # now follow the statically last block.
        if self._block_idx == len(self.blocks) - 1:
            self._phase = _Phase.EXITED
        else:
            self._block_idx += 1
            self._phase = _Phase.INLET_PENDING

    # -- invariants (property tests) -------------------------------------------------
    def check_invariants(self) -> None:
        if self._phase == _Phase.RUNNING:
            total = sum(len(sm) for sm in self.sms)
            assert total == self.current_block.size, (
                f"loaded entries {total} != block size {self.current_block.size}"
            )
            for sm in self.sms:
                for local_iid in list(sm._entries):
                    e = sm.entry(local_iid)
                    assert 0 <= e.ready_count <= e.initial_ready_count
