"""The TSU Group: the functional scheduling state machine.

"In TFlux we decided to group the TSUs in a single unit named the TSU
Group.  The units of the TSU Group are split into two categories: those
that serve the CPU that the TSU corresponds to and those that are common
for all CPUs" (paper §3.3).  Here the per-CPU units are the
per-kernel :class:`~repro.tsu.sm.SynchronizationMemory` objects and the
common units are the block sequencer, the Thread-to-Kernel Table, and the
completion counters.

This class is *functional only* — it implements exactly what the TSU does,
with no notion of time.  The hardware, software and Cell implementations
wrap it with their own cost/latency adapters, which is precisely the
paper's virtualization claim: same scheduling semantics, different
mechanism.

Protocol (driven by the Kernels through the platform adapters):

1. ``fetch(kernel)`` → a :class:`Fetch` describing what the kernel should
   do next: run the current block's Inlet, run an application DThread,
   run the Outlet, wait, or exit.
2. After an application DThread finishes, ``complete_thread(kernel, local_iid)``
   performs the Post-Processing Phase: every consumer's Ready Count is
   decremented through the TKT-indexed SM; threads reaching zero join
   their kernel's ready queue.
3. ``complete_inlet`` / ``complete_outlet`` drive block sequencing:
   the Outlet clears the SMs and (unless the block was the last) arms the
   next block's Inlet; the last Outlet flips the TSU into the exit state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.block import DDMBlock
from repro.core.dthread import DThreadInstance
from repro.tsu.policy import PlacementPolicy, contiguous_placement
from repro.tsu.sm import SynchronizationMemory, ThreadEntry
from repro.tsu.tkt import ThreadToKernelTable

__all__ = ["FetchKind", "Fetch", "TSUGroup"]


class FetchKind(enum.Enum):
    """What the TSU tells a querying kernel to do."""

    INLET = "inlet"
    THREAD = "thread"
    OUTLET = "outlet"
    WAIT = "wait"
    EXIT = "exit"


@dataclass(frozen=True)
class Fetch:
    kind: FetchKind
    instance: Optional[DThreadInstance] = None
    local_iid: Optional[int] = None
    block: Optional[DDMBlock] = None


class _Phase(enum.Enum):
    INLET_PENDING = 0  # waiting for some kernel to claim & run the Inlet
    LOADING = 1  # inlet claimed, metadata loading in progress
    RUNNING = 2
    OUTLET_PENDING = 3
    FINISHING = 4  # outlet claimed, clearing in progress
    EXITED = 5


class TSUGroup:
    """Scheduling state machine over a program's DDM Blocks."""

    def __init__(
        self,
        nkernels: int,
        blocks: list[DDMBlock],
        placement: PlacementPolicy = contiguous_placement,
        allow_stealing: bool = False,
    ) -> None:
        if nkernels < 1:
            raise ValueError("need at least one kernel")
        if not blocks:
            raise ValueError("program has no blocks")
        self.nkernels = nkernels
        self.blocks = blocks
        self.placement = placement
        #: §3.1 reads the TSU's reply as "one of the ready DThreads",
        #: locality-preferring: with stealing enabled, an idle kernel may
        #: be handed a ready DThread from another kernel's SM instead of
        #: waiting.  Off by default (strictly SM-local dispatch).
        self.allow_stealing = allow_stealing
        self.sms = [SynchronizationMemory(k) for k in range(nkernels)]
        self.tkt: Optional[ThreadToKernelTable] = None

        self._block_idx = 0
        self._phase = _Phase.INLET_PENDING
        self._completed_in_block = 0
        # Statistics: plain ints on the hot path, published into the
        # repro.obs counter registry at end of run (publish_counters).
        self.fetches = 0
        self.waits = 0
        self.post_updates = 0
        self.threads_dispatched = 0
        self.steals = 0

    def publish_counters(self, counters) -> None:
        """Publish scheduling counters under the ``tsu.`` namespace."""
        scope = counters.scope("tsu")
        scope.inc("fetches", self.fetches)
        scope.inc("waits", self.waits)
        scope.inc("post_updates", self.post_updates)
        scope.inc("dispatched", self.threads_dispatched)
        scope.inc("steals", self.steals)

    # -- helpers -----------------------------------------------------------
    @property
    def current_block(self) -> DDMBlock:
        return self.blocks[self._block_idx]

    @property
    def phase_name(self) -> str:
        return self._phase.name

    def is_exited(self) -> bool:
        return self._phase == _Phase.EXITED

    # -- the Inlet's work ---------------------------------------------------------
    def _load_block(self, block: DDMBlock) -> None:
        """What the Inlet DThread does: load all metadata into the SMs."""
        assignment = self.placement(block, self.nkernels)
        self.tkt = ThreadToKernelTable(assignment, self.nkernels)
        for local_iid, inst in enumerate(block.instances):
            entry = ThreadEntry(
                local_iid=local_iid,
                instance=inst,
                ready_count=block.ready_counts[local_iid],
                initial_ready_count=block.ready_counts[local_iid],
                consumers=list(block.consumers[local_iid]),
            )
            self.sms[assignment[local_iid]].load(entry)
        self._completed_in_block = 0

    # -- kernel-facing protocol ---------------------------------------------------
    def fetch(self, kernel: int) -> Fetch:
        """FindReadyThread: what should *kernel* execute next?"""
        self.fetches += 1
        if self._phase == _Phase.EXITED:
            return Fetch(FetchKind.EXIT)

        if self._phase == _Phase.INLET_PENDING:
            # First querying kernel claims the Inlet.
            self._phase = _Phase.LOADING
            block = self.current_block
            return Fetch(FetchKind.INLET, instance=block.inlet, block=block)

        if self._phase == _Phase.RUNNING:
            entry = self.sms[kernel].pop_ready()
            if entry is None and self.allow_stealing:
                victim = max(
                    (sm for sm in self.sms if sm.peek_ready()),
                    key=lambda sm: len(sm._ready),
                    default=None,
                )
                if victim is not None:
                    entry = victim.pop_ready()
                    self.steals += 1
            if entry is not None:
                self.threads_dispatched += 1
                return Fetch(
                    FetchKind.THREAD,
                    instance=entry.instance,
                    local_iid=entry.local_iid,
                    block=self.current_block,
                )
            self.waits += 1
            return Fetch(FetchKind.WAIT)

        if self._phase == _Phase.OUTLET_PENDING:
            self._phase = _Phase.FINISHING
            block = self.current_block
            return Fetch(FetchKind.OUTLET, instance=block.outlet, block=block)

        # LOADING / FINISHING: another kernel is running the Inlet/Outlet.
        self.waits += 1
        return Fetch(FetchKind.WAIT)

    def has_work(self, kernel: int) -> bool:
        """Cheap peek: would a fetch by *kernel* return something other
        than WAIT right now?  Backends call this from their ``wait`` step
        to close the lost-wakeup window between a (possibly delayed) WAIT
        reply and parking — step 2 of the wake discipline documented in
        :mod:`repro.runtime.core`."""
        if self._phase in (_Phase.INLET_PENDING, _Phase.OUTLET_PENDING, _Phase.EXITED):
            return True
        if self._phase == _Phase.RUNNING:
            if self.sms[kernel].peek_ready():
                return True
            return self.allow_stealing and any(
                sm.peek_ready() for sm in self.sms
            )
        return False

    def complete_inlet(self, kernel: int) -> None:
        if self._phase != _Phase.LOADING:
            raise RuntimeError(f"inlet completion in phase {self._phase}")
        self._load_block(self.current_block)
        # A block with no application DThreads (unreachable through the
        # splitter, but possible for hand-built block lists) must fall
        # straight through to its Outlet rather than stall in RUNNING.
        if self.current_block.size == 0:
            self._phase = _Phase.OUTLET_PENDING
        else:
            self._phase = _Phase.RUNNING

    def complete_thread(self, kernel: int, local_iid: int) -> list[int]:
        """Post-Processing Phase; returns consumers that became ready."""
        if self._phase != _Phase.RUNNING:
            raise RuntimeError(f"thread completion in phase {self._phase}")
        assert self.tkt is not None
        sm = self.sms[self.tkt.kernel_of(local_iid)]
        entry = sm.mark_completed(local_iid)
        newly_ready: list[int] = []
        for consumer in entry.consumers:
            consumer_sm = self.sms[self.tkt.kernel_of(consumer)]
            if consumer_sm.decrement(consumer):
                newly_ready.append(consumer)
            self.post_updates += 1
        self._completed_in_block += 1
        if self._completed_in_block == self.current_block.size:
            self._phase = _Phase.OUTLET_PENDING
        return newly_ready

    def complete_outlet(self, kernel: int) -> None:
        if self._phase != _Phase.FINISHING:
            raise RuntimeError(f"outlet completion in phase {self._phase}")
        for sm in self.sms:
            sm.clear()
        if self.current_block.is_last:
            self._phase = _Phase.EXITED
        else:
            self._block_idx += 1
            self._phase = _Phase.INLET_PENDING

    # -- invariants (property tests) -------------------------------------------------
    def check_invariants(self) -> None:
        if self._phase == _Phase.RUNNING:
            total = sum(len(sm) for sm in self.sms)
            assert total == self.current_block.size, (
                f"loaded entries {total} != block size {self.current_block.size}"
            )
            for sm in self.sms:
                for local_iid in list(sm._entries):
                    e = sm.entry(local_iid)
                    assert 0 <= e.ready_count <= e.initial_ready_count
