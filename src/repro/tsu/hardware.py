"""TFluxHard: the TSU Group as a memory-mapped hardware device.

"The CPU controls the TSU Group through specially encoded flags.  At the
TSU Group side these requests are decoded and trigger the appropriate TSU
operation" (paper §4.1).  Every operation is therefore one (or a few)
transactions over the system network through the
:class:`~repro.sim.mmi.MemoryMappedInterface`, each paying the TSU
processing latency — 4 cycles over an L1 access by default, swept 1→128
by the ablation of §6.1.1 — plus any queueing at the single TSU command
port and the bus arbiter.

Cost model per operation:

* **fetch** — one query round-trip (bus → TSU port → bus).
* **thread completion** — one posted command carrying the completed
  DThread id; the TSU performs the consumer updates internally ("TSU-to-
  TSU communication ... handled internally without the intervention of
  any other unit", §3.3), occupying the port for one processing slot per
  consumer update.
* **inlet** — one command per loaded DThread entry (metadata words are
  stores into the TSU's address window).
* **outlet** — a single deallocate command.
"""

from __future__ import annotations

from typing import Generator

from repro.core.block import DDMBlock
from repro.core.dthread import DThreadInstance
from repro.core.dynamic import Subflow
from repro.sim.engine import Engine
from repro.sim.interconnect import SystemBus
from repro.sim.mmi import MemoryMappedInterface
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup

__all__ = ["HardwareTSUAdapter"]


class HardwareTSUAdapter(ProtocolAdapter):
    """Timed wrapper of the TSU Group behind the MMI."""

    def __init__(
        self,
        engine: Engine,
        tsu: TSUGroup,
        bus: SystemBus | None = None,
        tsu_processing_cycles: int = 4,
        l1_access_cycles: int = 2,
    ) -> None:
        super().__init__(engine, tsu)
        self.bus = bus if bus is not None else SystemBus(engine)
        self.mmi = MemoryMappedInterface(
            engine,
            self.bus,
            tsu_processing_cycles=tsu_processing_cycles,
            l1_access_cycles=l1_access_cycles,
        )

    def publish_counters(self, counters) -> None:
        scope = counters.scope("mmi")
        scope.inc("commands", self.mmi.commands)
        scope.inc("queries", self.mmi.queries)
        # Coalescing statistics live under engine.* — the one namespace
        # allowed to differ between TFLUX_FASTPATH on and off.
        engine = counters.scope("engine")
        engine.inc("coalesced_commands", self.mmi.fast_commands)
        engine.inc("coalesced_queries", self.mmi.fast_queries)

    def fetch(self, kernel: int) -> Generator:
        # Uncontended fetches take the MMI's coalesced fast path: the
        # bus → port → processing ladder is one accumulated timeout
        # (see repro.sim.mmi), with identical cycle accounting.
        result = yield from self.mmi.query(lambda: self.tsu.fetch(kernel))
        return result

    def complete_inlet(self, kernel: int, block: DDMBlock) -> Generator:
        # Metadata loading is a stream of *posted* stores into the TSU's
        # address window: the CPU issues them back-to-back at store-issue
        # rate and the TSU absorbs them in its internal pipeline, so the
        # cost per entry is the store issue latency — independent of the
        # TSU's command processing time (unlike queries/completions).
        per_entry = self.mmi.l1_access_cycles + 2
        yield from self.mmi.command(lambda: None)
        yield per_entry * max(block.size - 1, 0)
        self.tsu.complete_inlet(kernel)
        self.wake_kernels()

    def resolve_dynamic(
        self, kernel: int, local_iid: int, outcome: object
    ) -> Generator:
        # A spawned subflow's template stream is posted stores into the
        # TSU's address window, exactly like Inlet metadata (one command
        # plus store-issue-rate entries); a branch key is encoded in the
        # completion flag itself and costs nothing extra.
        if isinstance(outcome, Subflow):
            per_entry = self.mmi.l1_access_cycles + 2
            yield from self.mmi.command(lambda: None)
            yield per_entry * max(outcome.ninstances - 1, 0)

    def complete_thread(
        self,
        kernel: int,
        local_iid: int,
        instance: DThreadInstance,
        outcome: object = None,
    ) -> Generator:
        nconsumers = len(self.tsu.current_block.consumers[local_iid])
        # The completion flag is one posted store; internal consumer
        # updates occupy the TSU pipeline but not the CPU.
        yield from self.mmi.command(
            lambda: self._apply_thread_completion(kernel, local_iid, outcome)
        )
        # Internal update occupancy (overlapped with CPU progress): charge
        # nothing to the kernel, the port hold above already serialises
        # back-to-back completions.
        del nconsumers

    def complete_outlet(self, kernel: int, block: DDMBlock) -> Generator:
        def apply() -> None:
            self.tsu.complete_outlet(kernel)

        yield from self.mmi.command(apply)
        self.wake_kernels()
