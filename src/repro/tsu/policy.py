"""TSU policies: DThread placement (TKT construction) and selection.

Placement decides which kernel's Synchronization Memory holds each DThread
instance — the Thread-to-Kernel Table.  The default, *contiguous*
placement, gives each kernel a consecutive range of contexts per template,
so neighbouring loop iterations (which touch neighbouring data) land on
the same core: the TSU's "maximise spatial locality" policy (paper §3.1).
Round-robin placement is provided as the locality-free baseline used by
the ablation benchmarks.

Templates may override placement per context through their ``affinity``
callable (used e.g. by QSORT's merge tree to co-locate a merge step with
one of its producers).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.block import DDMBlock

__all__ = ["contiguous_placement", "round_robin_placement", "PlacementPolicy"]

#: (block, nkernels) -> kernel index per block-local instance.
PlacementPolicy = Callable[[DDMBlock, int], list[int]]


def _template_groups(block: DDMBlock) -> list[tuple[int, list[int]]]:
    """Block-local ids grouped by template, preserving context order."""
    groups: dict[int, list[int]] = {}
    for local_iid, inst in enumerate(block.instances):
        groups.setdefault(inst.template.tid, []).append(local_iid)
    return sorted(groups.items())


def contiguous_placement(block: DDMBlock, nkernels: int) -> list[int]:
    """Each kernel gets a contiguous chunk of every template's contexts."""
    assignment = [0] * block.size
    for _tid, locals_ in _template_groups(block):
        n = len(locals_)
        for pos, local_iid in enumerate(locals_):
            inst = block.instances[local_iid]
            if inst.template.affinity is not None:
                assignment[local_iid] = inst.template.affinity(inst.ctx, nkernels) % nkernels
            else:
                assignment[local_iid] = min(pos * nkernels // n, nkernels - 1)
    return assignment


def round_robin_placement(block: DDMBlock, nkernels: int) -> list[int]:
    """Instances dealt to kernels cyclically (no locality preservation)."""
    assignment = [0] * block.size
    for _tid, locals_ in _template_groups(block):
        for pos, local_iid in enumerate(locals_):
            inst = block.instances[local_iid]
            if inst.template.affinity is not None:
                assignment[local_iid] = inst.template.affinity(inst.ctx, nkernels) % nkernels
            else:
                assignment[local_iid] = pos % nkernels
    return assignment
