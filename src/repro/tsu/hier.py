"""Hierarchical TFluxDist: TSU fan-out relayed through cluster heads.

The flat :class:`~repro.tsu.dist.DistTSUAdapter` sends one point-to-point
message per remote node for every Ready-Count fan-out and every
Inlet/Outlet phase broadcast.  At 64 nodes that is 63 back-to-back
serialisations through a single NIC TX port — the sender's NIC, not the
fabric, becomes the wall (the same observation the paper makes for one
TSU at §4.1, one level up: "for systems with very large number of CPUs
it may be beneficial to have multiple TSU Groups").

This adapter arranges the nodes into *clusters* of ``cluster_size`` and
relays cross-cluster traffic through each cluster's **head** (its lowest
node, in the spirit of :mod:`repro.tsu.multigroup`'s per-group TSUs):
the sender emits one aggregated message per remote cluster, and the head
re-transmits to its members on arrival.  The source NIC now serialises
``nclusters - 1`` messages instead of ``nnodes - 1``, and the per-member
deliveries leave different heads' NICs *in parallel*.  On a pod-aligned
fat-tree each aggregate crosses the spine once instead of
``cluster_size`` times.

Strictly costs only, per the repo invariant:

* Ready-Count decrements are functional in ``complete_thread`` exactly
  as in the flat adapter; only the **wake signals** ride the relay, so a
  relayed kernel may wake one extra hop later — and ``has_work``'s
  re-check discipline keeps that purely a timing effect.
* The TERMINATE/ACK termination barrier stays point-to-point: it is a
  correctness handshake (the last node may not exit before every ACK),
  and relaying an ACK would only add latency to the critical path.
* With ``cluster_size >= nnodes`` (or 1 node) every path degenerates to
  the flat adapter's — the differential tests pin this.
"""

from __future__ import annotations

from typing import Optional

from repro.net.message import UPDATE_BYTES, Message, MsgKind, NetParams
from repro.net.topology import Topology
from repro.sim.engine import Engine
from repro.tsu.dist import DistTSUAdapter
from repro.tsu.group import TSUGroup
from repro.tsu.software import SoftTSUCosts

__all__ = ["HierDistTSUAdapter"]


class HierDistTSUAdapter(DistTSUAdapter):
    """Tree-structured fan-out: one TSU shard per node, grouped in clusters."""

    def __init__(
        self,
        engine: Engine,
        tsu: TSUGroup,
        nnodes: int,
        costs: SoftTSUCosts = SoftTSUCosts(),
        net_params: Optional[NetParams] = None,
        topology: Optional[Topology] = None,
        cluster_size: int = 8,
    ) -> None:
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        super().__init__(engine, tsu, nnodes, costs, net_params, topology)
        self.cluster_size = cluster_size
        self.relayed_messages = 0

    def publish_counters(self, counters) -> None:
        counters.inc("net.relayed_messages", self.relayed_messages)
        super().publish_counters(counters)

    # -- clustering --------------------------------------------------------
    def _cluster(self, node: int) -> int:
        return node // self.cluster_size

    def _head(self, cluster: int) -> int:
        return cluster * self.cluster_size

    def _members(self, cluster: int) -> range:
        lo = cluster * self.cluster_size
        return range(lo, min(lo + self.cluster_size, self.nnodes))

    # -- relayed fan-out ---------------------------------------------------
    def _fanout_ready(
        self,
        node: int,
        targets: list[int],
        payloads: dict[int, int],
        wake_sets: dict[int, set[int]],
    ) -> None:
        home = self._cluster(node)
        by_cluster: dict[int, list[int]] = {}
        for t in targets:
            by_cluster.setdefault(self._cluster(t), []).append(t)
        for cluster, members in sorted(by_cluster.items()):
            if cluster == home:
                # Intra-cluster stays point-to-point (one NIC hop away).
                for t in members:
                    self._send_ready(node, t, payloads[t], wake_sets[t])
                continue
            head = self._head(cluster)
            aggregate = sum(payloads[t] for t in members)

            def relay(msg: Message, head=head, members=tuple(members)) -> None:
                for t in members:
                    if t == head:
                        if wake_sets[t]:
                            self.wake_kernels(wake_sets[t])
                    else:
                        self.relayed_messages += 1
                        self._send_ready(head, t, payloads[t], wake_sets[t])

            self.net.transmit(
                Message(
                    MsgKind.READY_UPDATE,
                    src=node,
                    dst=head,
                    payload_bytes=max(aggregate, UPDATE_BYTES),
                ),
                on_deliver=relay,
            )

    def _broadcast(self, node: int, kind: MsgKind, payload_bytes: int) -> None:
        home = self._cluster(node)
        nclusters = -(-self.nnodes // self.cluster_size)
        for cluster in range(nclusters):
            if cluster == home:
                for t in self._members(cluster):
                    if t != node:
                        self._send_wakeup(node, t, kind, payload_bytes)
                continue
            head = self._head(cluster)
            others = tuple(t for t in self._members(cluster) if t != head)

            def relay(msg: Message, head=head, others=others) -> None:
                self.wake_kernels(set(self._node_kernels[head]))
                for t in others:
                    self.relayed_messages += 1
                    self._send_wakeup(head, t, msg.kind, msg.payload_bytes)

            self.net.transmit(
                Message(kind, src=node, dst=head, payload_bytes=payload_bytes),
                on_deliver=relay,
            )

    def _send_wakeup(
        self, src: int, dst: int, kind: MsgKind, payload_bytes: int
    ) -> None:
        self.net.transmit(
            Message(kind, src=src, dst=dst, payload_bytes=payload_bytes),
            on_deliver=lambda msg, ks=frozenset(self._node_kernels[dst]): (
                self.wake_kernels(set(ks))
            ),
        )
