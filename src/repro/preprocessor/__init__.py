"""DDMCPP — the Data-Driven Multithreading C Preprocessor, retargeted.

The paper's tool-chain (§3.4, [18]) takes "a regular C code program along
with DDM specific pragma directives and outputs a C program that includes
all runtime support code and TFlux interface calls".  It is "logically
divided into two modules, the front-end and the back-end": the front-end
parses the directives independently of the TFlux implementation; the
back-end generates target-specific runtime code.

This reproduction keeps that architecture, retargeted at the Python
runtime:

* **front-end** — :mod:`~repro.preprocessor.directives` recognises the
  ``#pragma ddm`` lines; :mod:`~repro.preprocessor.lexer` +
  :mod:`~repro.preprocessor.parser` parse the C-subset thread bodies into
  the AST of :mod:`~repro.preprocessor.ast_nodes`;
* **back-end** — :mod:`~repro.preprocessor.cgen` translates bodies into
  Python functions; :mod:`~repro.preprocessor.backend` assembles the
  :class:`~repro.core.program.DDMProgram` (or emits a standalone Python
  module, the analogue of DDMCPP's output C file);
* **CLI** — :mod:`~repro.preprocessor.cli` provides the ``ddmcpp``
  command.

Example DDM source::

    #pragma ddm startprogram name(squares)
    #pragma ddm var double parts[8]
    #pragma ddm var double total

    #pragma ddm thread 1 context(8)
      parts[CTX] = CTX * CTX;
    #pragma ddm endthread

    #pragma ddm thread 2 depends(1 all)
      int i;
      total = 0;
      for (i = 0; i < 8; i++) {
        total = total + parts[i];
      }
    #pragma ddm endthread
    #pragma ddm endprogram
"""

from repro.preprocessor.backend import compile_to_program, emit_module
from repro.preprocessor.errors import DDMSyntaxError

__all__ = ["compile_to_program", "emit_module", "DDMSyntaxError"]
