"""Tiny runtime shim imported by preprocessor-generated code.

Generated thread functions access shared variables through a
:class:`SharedProxy` (``_S.total``, ``_S.parts[i]``), and use the C
arithmetic helpers for division/modulo semantics.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

__all__ = ["SharedProxy", "cdiv", "cmod", "c_printf"]


class SharedProxy:
    """Attribute-style view of an Environment's shared variables."""

    __slots__ = ("_env",)

    def __init__(self, env: Any) -> None:
        object.__setattr__(self, "_env", env)

    def __getattr__(self, name: str) -> Any:
        env = object.__getattribute__(self, "_env")
        try:
            return env[name]
        except KeyError:
            raise AttributeError(f"no shared variable {name!r}") from None

    def __setattr__(self, name: str, value: Any) -> None:
        env = object.__getattribute__(self, "_env")
        env[name] = value


def _both_int(a: Any, b: Any) -> bool:
    return isinstance(a, (int, np.integer)) and not isinstance(a, bool) and isinstance(
        b, (int, np.integer)
    ) and not isinstance(b, bool)


def cdiv(a: Any, b: Any) -> Any:
    """C division: truncating for two integers, true division otherwise."""
    if _both_int(a, b):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def cmod(a: Any, b: Any) -> Any:
    """C remainder: sign follows the dividend for integers."""
    if _both_int(a, b):
        return a - cdiv(a, b) * b
    return np.fmod(a, b)


def c_printf(fmt: str, *args: Any) -> None:
    """Minimal printf: C-style % formatting, no trailing newline added.

    The format string is always %-processed (so ``%%`` prints ``%`` even
    with no varargs, as in C); a conversion with missing arguments raises,
    which C leaves undefined anyway.
    """
    sys.stdout.write(fmt % args)
