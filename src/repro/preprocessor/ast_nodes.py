"""AST of the C-subset thread-body language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Expr",
    "Num",
    "Str",
    "Name",
    "BinOp",
    "UnaryOp",
    "Ternary",
    "Call",
    "Index",
    "Stmt",
    "Decl",
    "Assign",
    "ExprStmt",
    "IncDec",
    "If",
    "While",
    "For",
    "Break",
    "Continue",
    "Return",
    "Compound",
]


# -- expressions ------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    """Numeric literal (kept as source text to preserve int/float-ness)."""

    literal: str

    @property
    def is_float(self) -> bool:
        return any(c in self.literal for c in ".eE")


@dataclass(frozen=True)
class Str:
    """String literal, stored with its quotes."""

    literal: str


@dataclass(frozen=True)
class Name:
    """Identifier reference (shared variable, local, or ``CTX``)."""

    ident: str


@dataclass(frozen=True)
class BinOp:
    """Binary operation with C semantics for ``/`` and ``%``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    """Prefix operator: ``-``, ``+``, ``!`` or ``~``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Ternary:
    """C conditional expression ``cond ? then : other``."""

    cond: "Expr"
    then: "Expr"
    other: "Expr"


@dataclass(frozen=True)
class Call:
    """Call to a whitelisted intrinsic (see ``cgen.INTRINSICS``)."""

    func: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Index:
    """(Possibly multi-dimensional) array subscript ``base[i][j]...``."""

    base: "Expr"
    indices: tuple["Expr", ...]


Expr = Union[Num, Str, Name, BinOp, UnaryOp, Ternary, Call, Index]


# -- statements ----------------------------------------------------------------
@dataclass(frozen=True)
class Decl:
    """Local declaration: ``int i, j = 2;``."""

    ctype: str
    names: tuple[tuple[str, Optional[Expr]], ...]  # (name, initializer)


@dataclass(frozen=True)
class Assign:
    """Plain or compound assignment to a name or subscript."""

    target: Expr  # Name or Index
    op: str  # "=", "+=", ...
    value: Expr


@dataclass(frozen=True)
class IncDec:
    """Statement-level ``x++`` / ``x--``."""

    target: Expr
    op: str  # "++" | "--"


@dataclass(frozen=True)
class ExprStmt:
    """Bare expression evaluated for effect (e.g. a ``printf`` call)."""

    expr: Expr


@dataclass(frozen=True)
class If:
    """``if``/``else`` statement."""

    cond: Expr
    then: "Stmt"
    other: Optional["Stmt"] = None


@dataclass(frozen=True)
class While:
    """``while`` loop."""

    cond: Expr
    body: "Stmt"


@dataclass(frozen=True)
class For:
    """C ``for`` loop (any of init/cond/update may be absent)."""

    init: Optional["Stmt"]
    cond: Optional[Expr]
    update: Optional["Stmt"]
    body: "Stmt"


@dataclass(frozen=True)
class Break:
    """``break`` statement."""


@dataclass(frozen=True)
class Continue:
    """``continue`` statement."""


@dataclass(frozen=True)
class Return:
    """``return`` (ends the DThread body early)."""

    value: Optional[Expr] = None


@dataclass(frozen=True)
class Compound:
    """Braced statement block (also used for the empty statement)."""

    body: tuple["Stmt", ...] = field(default_factory=tuple)


Stmt = Union[Decl, Assign, IncDec, ExprStmt, If, While, For, Break, Continue, Return, Compound]
