"""``ddmcpp`` — the preprocessor command-line tool.

Usage::

    ddmcpp input.ddm -o output.py        # emit the generated module
    ddmcpp input.ddm --run               # preprocess and run sequentially
    ddmcpp input.ddm --run --kernels 4   # run on the simulated platform
    ddmcpp input.ddm --check-deps        # diagnose declared arcs against
                                         # the derived dependence graph
    ddmcpp input.ddm --check-races       # one recorded functional run:
                                         # undeclared accesses + races
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.preprocessor.backend import compile_to_program, emit_module
from repro.preprocessor.errors import DDMSyntaxError

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ddmcpp",
        description="Data-Driven Multithreading preprocessor (TFlux tool-chain)",
    )
    parser.add_argument("input", help="DDM source file (C subset + #pragma ddm)")
    parser.add_argument("-o", "--output", help="write the generated Python module here")
    parser.add_argument("--run", action="store_true", help="build and execute")
    parser.add_argument(
        "--kernels",
        type=int,
        default=0,
        help="with --run: execute on the simulated TFluxHard platform with "
        "this many kernels (0 = plain sequential execution)",
    )
    parser.add_argument(
        "--check-deps",
        action="store_true",
        help="diagnose the declared synchronization graph against the "
        "dependence graph derived from access clauses: flag redundant "
        "(no access overlap) and missing (derived conflict with no "
        "ordering path) arcs; exit 1 if any dependence is missing",
    )
    parser.add_argument(
        "--check-races",
        action="store_true",
        help="execute the program once functionally under the dynamic "
        "race detector: recorded footprints are held to the declared "
        "access clauses and to the arc-induced happens-before order; "
        "exit 1 on any undeclared access or race",
    )
    args = parser.parse_args(argv)

    try:
        source = Path(args.input).read_text()
    except OSError as exc:
        print(f"ddmcpp: cannot read {args.input}: {exc}", file=sys.stderr)
        return 1
    try:
        if args.check_deps or args.check_races:
            # Both audits compose in one invocation; programs are
            # single-run objects, so each gets a fresh compile.
            status = 0
            if args.check_deps:
                from repro.core.deps import check_deps

                report = check_deps(compile_to_program(source))
                print(f"{args.input}:")
                print(report.format())
                status = max(status, 0 if report.ok else 1)
            if args.check_races:
                from repro.check import run_checked

                report = run_checked(compile_to_program(source))
                print(f"{args.input}:")
                print(report.format())
                status = max(status, 0 if report.ok else 1)
            return status
        if args.output:
            Path(args.output).write_text(emit_module(source))
            print(f"wrote {args.output}")
        if args.run or not args.output:
            program = compile_to_program(source)
            if args.kernels > 0:
                from repro.platforms import TFluxHard

                result = TFluxHard().execute(program, nkernels=args.kernels)
                print(
                    f"executed {program.name!r} on tfluxhard with "
                    f"{args.kernels} kernels in {result.cycles:,} cycles"
                )
                env = result.env
            else:
                env = program.run_sequential()
                print(f"executed {program.name!r} sequentially")
            scalars = {
                name: env.get(name)
                for name in env.names()
                if not hasattr(env.get(name), "shape")
            }
            if scalars:
                print("shared scalars:", scalars)
    except DDMSyntaxError as exc:
        print(f"ddmcpp: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
