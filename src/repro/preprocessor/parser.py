"""Front-end stage 3: recursive-descent parser for the C subset.

Supported constructs: local declarations (``int``/``long``/``float``/
``double``/``char``), assignments (plain and compound), ``++``/``--``
statements, ``if``/``else``, ``while``, C-style ``for``, ``break``/
``continue``/``return``, compound blocks, the usual expression operators
with C precedence (including the ternary), calls to whitelisted
intrinsics, and (multi-dimensional) array indexing.
"""

from __future__ import annotations

from typing import Optional

from repro.preprocessor import ast_nodes as A
from repro.preprocessor.errors import DDMSyntaxError
from repro.preprocessor.lexer import Token, tokenize

__all__ = ["Parser", "parse_block", "parse_expression"]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary precedence, low to high (C-like; bitwise folded near comparisons).
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    """One-token-lookahead recursive descent over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self.cur
        if tok.kind == kind and (value is None or tok.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = f"{self.cur.kind} {self.cur.value!r}"
            want = value if value is not None else kind
            raise DDMSyntaxError(f"expected {want!r}, got {got}", self.cur.line)
        return tok

    # -- statements -----------------------------------------------------------
    def parse_statements(self) -> list[A.Stmt]:
        out: list[A.Stmt] = []
        while self.cur.kind != "eof":
            out.append(self.statement())
        return out

    def statement(self) -> A.Stmt:
        tok = self.cur
        if tok.kind == "op" and tok.value == "{":
            return self.compound()
        if tok.kind == "op" and tok.value == ";":
            self.advance()
            return A.Compound(())
        if tok.kind == "kw":
            kw = tok.value
            if kw in ("int", "long", "float", "double", "char"):
                return self.declaration()
            if kw == "if":
                return self.if_statement()
            if kw == "while":
                return self.while_statement()
            if kw == "for":
                return self.for_statement()
            if kw == "break":
                self.advance()
                self.expect("op", ";")
                return A.Break()
            if kw == "continue":
                self.advance()
                self.expect("op", ";")
                return A.Continue()
            if kw == "return":
                self.advance()
                value = None
                if not (self.cur.kind == "op" and self.cur.value == ";"):
                    value = self.expression()
                self.expect("op", ";")
                return A.Return(value)
            raise DDMSyntaxError(f"unexpected keyword {kw!r}", tok.line)
        stmt = self.simple_statement()
        self.expect("op", ";")
        return stmt

    def compound(self) -> A.Compound:
        self.expect("op", "{")
        body: list[A.Stmt] = []
        while not (self.cur.kind == "op" and self.cur.value == "}"):
            if self.cur.kind == "eof":
                raise DDMSyntaxError("unterminated block", self.cur.line)
            body.append(self.statement())
        self.expect("op", "}")
        return A.Compound(tuple(body))

    def declaration(self) -> A.Decl:
        ctype = self.advance().value
        names: list[tuple[str, Optional[A.Expr]]] = []
        while True:
            name = self.expect("ident").value
            init: Optional[A.Expr] = None
            if self.accept("op", "="):
                init = self.expression()
            names.append((name, init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return A.Decl(ctype, tuple(names))

    def simple_statement(self) -> A.Stmt:
        """Assignment, ++/--, or a bare expression (no trailing ';')."""
        start = self.pos
        expr = self.unary()
        tok = self.cur
        if tok.kind == "op" and tok.value in _ASSIGN_OPS:
            if not isinstance(expr, (A.Name, A.Index)):
                raise DDMSyntaxError("invalid assignment target", tok.line)
            op = self.advance().value
            value = self.expression()
            return A.Assign(expr, op, value)
        if tok.kind == "op" and tok.value in ("++", "--"):
            if not isinstance(expr, (A.Name, A.Index)):
                raise DDMSyntaxError("invalid ++/-- target", tok.line)
            self.advance()
            return A.IncDec(expr, tok.value)
        # Not an assignment: re-parse as a full expression statement.
        self.pos = start
        return A.ExprStmt(self.expression())

    def if_statement(self) -> A.If:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = self.statement()
        other = None
        if self.accept("kw", "else"):
            other = self.statement()
        return A.If(cond, then, other)

    def while_statement(self) -> A.While:
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        return A.While(cond, self.statement())

    def for_statement(self) -> A.For:
        self.expect("kw", "for")
        self.expect("op", "(")
        init: Optional[A.Stmt] = None
        if not (self.cur.kind == "op" and self.cur.value == ";"):
            if self.cur.kind == "kw" and self.cur.value in (
                "int", "long", "float", "double", "char",
            ):
                init = self.declaration()
            else:
                init = self.simple_statement()
                self.expect("op", ";")
        else:
            self.expect("op", ";")
        cond: Optional[A.Expr] = None
        if not (self.cur.kind == "op" and self.cur.value == ";"):
            cond = self.expression()
        self.expect("op", ";")
        update: Optional[A.Stmt] = None
        if not (self.cur.kind == "op" and self.cur.value == ")"):
            update = self.simple_statement()
        self.expect("op", ")")
        return A.For(init, cond, update, self.statement())

    # -- expressions -----------------------------------------------------------
    def expression(self) -> A.Expr:
        return self.ternary()

    def ternary(self) -> A.Expr:
        cond = self.binary(0)
        if self.accept("op", "?"):
            then = self.expression()
            self.expect("op", ":")
            other = self.expression()
            return A.Ternary(cond, then, other)
        return cond

    def binary(self, level: int) -> A.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.unary()
        ops = _BINARY_LEVELS[level]
        left = self.binary(level + 1)
        while self.cur.kind == "op" and self.cur.value in ops:
            op = self.advance().value
            right = self.binary(level + 1)
            left = A.BinOp(op, left, right)
        return left

    def unary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "op" and tok.value in ("-", "+", "!", "~"):
            self.advance()
            return A.UnaryOp(tok.value, self.unary())
        return self.postfix()

    def postfix(self) -> A.Expr:
        expr = self.primary()
        while True:
            if self.cur.kind == "op" and self.cur.value == "[":
                indices: list[A.Expr] = []
                while self.accept("op", "["):
                    indices.append(self.expression())
                    self.expect("op", "]")
                if isinstance(expr, A.Index):
                    expr = A.Index(expr.base, expr.indices + tuple(indices))
                else:
                    expr = A.Index(expr, tuple(indices))
            elif (
                self.cur.kind == "op"
                and self.cur.value == "("
                and isinstance(expr, A.Name)
            ):
                self.advance()
                args: list[A.Expr] = []
                if not (self.cur.kind == "op" and self.cur.value == ")"):
                    args.append(self.expression())
                    while self.accept("op", ","):
                        args.append(self.expression())
                self.expect("op", ")")
                expr = A.Call(expr.ident, tuple(args))
            else:
                return expr

    def primary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            return A.Num(tok.value)
        if tok.kind == "str":
            self.advance()
            return A.Str(tok.value)
        if tok.kind == "ident":
            self.advance()
            return A.Name(tok.value)
        if tok.kind == "op" and tok.value == "(":
            self.advance()
            expr = self.expression()
            self.expect("op", ")")
            return expr
        raise DDMSyntaxError(
            f"unexpected token {tok.value!r} in expression", tok.line
        )


def parse_block(source: str, first_line: int = 1) -> list[A.Stmt]:
    """Parse a thread/section body into a statement list."""
    return Parser(tokenize(source, first_line)).parse_statements()


def parse_expression(source: str, first_line: int = 1) -> A.Expr:
    """Parse a standalone expression (used for map(...) specs)."""
    parser = Parser(tokenize(source, first_line))
    expr = parser.expression()
    if parser.cur.kind != "eof":
        raise DDMSyntaxError(
            f"trailing tokens after expression: {parser.cur.value!r}",
            parser.cur.line,
        )
    return expr
