"""Back-end stage 1: translate C-subset ASTs to Python source lines.

Translation rules:

* shared variables (``#pragma ddm var``) become ``_S.<name>`` accesses
  through the :class:`~repro.preprocessor.shim.SharedProxy`;
* ``CTX`` is the DThread context parameter;
* ``/`` and ``%`` go through :func:`~repro.preprocessor.shim.cdiv` /
  ``cmod`` so two-integer operands keep C truncation semantics;
* canonical ``for (i = a; i < b; i += c)`` loops become Python ``range``
  loops (so ``break``/``continue`` behave exactly like C); non-canonical
  ``for`` loops fall back to a ``while`` transform, in which ``continue``
  is rejected (it would skip the update, silently diverging from C);
* calls are restricted to a whitelisted set of math intrinsics plus
  ``printf``.
"""

from __future__ import annotations

from typing import Optional

from repro.preprocessor import ast_nodes as A
from repro.preprocessor.errors import DDMSyntaxError

__all__ = ["CodeGenerator", "INTRINSICS"]

#: C intrinsic -> Python callable expression (available in generated scope).
INTRINSICS = {
    "sqrt": "_m.sqrt",
    "fabs": "abs",
    "abs": "abs",
    "sin": "_m.sin",
    "cos": "_m.cos",
    "tan": "_m.tan",
    "exp": "_m.exp",
    "log": "_m.log",
    "log2": "_m.log2",
    "pow": "pow",
    "floor": "_m.floor",
    "ceil": "_m.ceil",
    "fmin": "min",
    "fmax": "max",
    "min": "min",
    "max": "max",
    "printf": "_printf",
}

_ZERO = {"int": "0", "long": "0", "char": "0", "float": "0.0", "double": "0.0"}

_LOGICAL = {"&&": "and", "||": "or"}


class CodeGenerator:
    """Emits Python lines for one thread/section body."""

    def __init__(self, shared_names: set[str]) -> None:
        self.shared = shared_names
        self.lines: list[str] = []
        self._loop_depth_nc = 0  # inside non-canonical for transform?

    # -- emission helpers --------------------------------------------------
    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def gen_block(self, stmts: list[A.Stmt] | tuple[A.Stmt, ...], indent: int) -> None:
        emitted = False
        for stmt in stmts:
            before = len(self.lines)
            self.gen_stmt(stmt, indent)
            emitted = emitted or len(self.lines) > before
        if not emitted:
            self.emit(indent, "pass")

    # -- statements -----------------------------------------------------------
    def gen_stmt(self, stmt: A.Stmt, indent: int) -> None:
        if isinstance(stmt, A.Compound):
            for inner in stmt.body:
                self.gen_stmt(inner, indent)
            return
        if isinstance(stmt, A.Decl):
            for name, init in stmt.names:
                if name in self.shared:
                    raise DDMSyntaxError(
                        f"local declaration shadows shared variable {name!r}"
                    )
                if init is not None:
                    value = self.expr(init)
                    if stmt.ctype in ("int", "long", "char"):
                        # C truncates a floating initializer toward zero.
                        # (Later re-assignments are not type-tracked — a
                        # documented limitation of the C subset.)
                        value = f"int({value})"
                else:
                    value = _ZERO[stmt.ctype]
                self.emit(indent, f"{name} = {value}")
            return
        if isinstance(stmt, A.Assign):
            target = self.expr(stmt.target)
            value = self.expr(stmt.value)
            if stmt.op == "=":
                self.emit(indent, f"{target} = {value}")
            elif stmt.op in ("/=", "%="):
                fn = "_cdiv" if stmt.op == "/=" else "_cmod"
                self.emit(indent, f"{target} = {fn}({target}, {value})")
            else:
                self.emit(indent, f"{target} {stmt.op} {value}")
            return
        if isinstance(stmt, A.IncDec):
            target = self.expr(stmt.target)
            op = "+=" if stmt.op == "++" else "-="
            self.emit(indent, f"{target} {op} 1")
            return
        if isinstance(stmt, A.ExprStmt):
            self.emit(indent, self.expr(stmt.expr))
            return
        if isinstance(stmt, A.If):
            self.emit(indent, f"if {self.expr(stmt.cond)}:")
            self.gen_block([stmt.then], indent + 1)
            if stmt.other is not None:
                self.emit(indent, "else:")
                self.gen_block([stmt.other], indent + 1)
            return
        if isinstance(stmt, A.While):
            self.emit(indent, f"while {self.expr(stmt.cond)}:")
            saved = self._loop_depth_nc
            self._loop_depth_nc = 0  # continue is safe in a while loop
            self.gen_block([stmt.body], indent + 1)
            self._loop_depth_nc = saved
            return
        if isinstance(stmt, A.For):
            self.gen_for(stmt, indent)
            return
        if isinstance(stmt, A.Break):
            self.emit(indent, "break")
            return
        if isinstance(stmt, A.Continue):
            if self._loop_depth_nc:
                raise DDMSyntaxError(
                    "continue inside a non-canonical for loop is not supported "
                    "(it would skip the update expression)"
                )
            self.emit(indent, "continue")
            return
        if isinstance(stmt, A.Return):
            if stmt.value is None:
                self.emit(indent, "return")
            else:
                self.emit(indent, f"return {self.expr(stmt.value)}")
            return
        raise DDMSyntaxError(f"cannot generate code for {stmt!r}")

    # -- for-loop strategies ------------------------------------------------------
    def _canonical_range(self, stmt: A.For) -> Optional[tuple[str, str, str, str]]:
        """Recognise ``for (i=a; i<b; i+=c)``; returns (var, lo, hi, step)."""
        init = stmt.init
        var: Optional[str] = None
        lo: Optional[str] = None
        if isinstance(init, A.Assign) and isinstance(init.target, A.Name) and init.op == "=":
            var, lo = init.target.ident, self.expr(init.value)
        elif isinstance(init, A.Decl) and len(init.names) == 1 and init.names[0][1] is not None:
            var, lo = init.names[0][0], self.expr(init.names[0][1])
        if var is None or var in self.shared:
            return None
        cond = stmt.cond
        if not (
            isinstance(cond, A.BinOp)
            and cond.op in ("<", "<=", ">", ">=")
            and isinstance(cond.left, A.Name)
            and cond.left.ident == var
        ):
            return None
        hi = self.expr(cond.right)
        upd = stmt.update
        if isinstance(upd, A.IncDec) and isinstance(upd.target, A.Name) and upd.target.ident == var:
            step = "1" if upd.op == "++" else "-1"
        elif (
            isinstance(upd, A.Assign)
            and isinstance(upd.target, A.Name)
            and upd.target.ident == var
            and upd.op in ("+=", "-=")
        ):
            step = self.expr(upd.value)
            if upd.op == "-=":
                step = f"-({step})"
        else:
            return None
        sign = 1 if cond.op in ("<", "<=") else -1
        if (sign > 0) != (not step.startswith("-")):
            return None  # direction mismatch; fall back to while
        if cond.op == "<=":
            hi = f"({hi}) + 1"
        elif cond.op == ">=":
            hi = f"({hi}) - 1"
        return var, lo, hi, step

    def gen_for(self, stmt: A.For, indent: int) -> None:
        canon = self._canonical_range(stmt)
        if canon is not None:
            var, lo, hi, step = canon
            rng = f"range({lo}, {hi})" if step == "1" else f"range({lo}, {hi}, {step})"
            self.emit(indent, f"for {var} in {rng}:")
            saved = self._loop_depth_nc
            self._loop_depth_nc = 0  # continue maps directly to Python's
            self.gen_block([stmt.body], indent + 1)
            self._loop_depth_nc = saved
            return
        # General C for -> init; while cond: body; update.
        if stmt.init is not None:
            self.gen_stmt(stmt.init, indent)
        cond = self.expr(stmt.cond) if stmt.cond is not None else "True"
        self.emit(indent, f"while {cond}:")
        saved = self._loop_depth_nc
        self._loop_depth_nc = 1
        before = len(self.lines)
        self.gen_stmt(stmt.body, indent + 1)
        if stmt.update is not None:
            self.gen_stmt(stmt.update, indent + 1)
        if len(self.lines) == before:
            self.emit(indent + 1, "pass")
        self._loop_depth_nc = saved

    # -- expressions --------------------------------------------------------------
    def expr(self, e: A.Expr) -> str:
        if isinstance(e, A.Num):
            return e.literal
        if isinstance(e, A.Str):
            return e.literal
        if isinstance(e, A.Name):
            if e.ident == "CTX":
                return "CTX"
            if e.ident in self.shared:
                return f"_S.{e.ident}"
            return e.ident
        if isinstance(e, A.BinOp):
            left, right = self.expr(e.left), self.expr(e.right)
            if e.op == "/":
                return f"_cdiv({left}, {right})"
            if e.op == "%":
                return f"_cmod({left}, {right})"
            if e.op in _LOGICAL:
                return f"({left} {_LOGICAL[e.op]} {right})"
            return f"({left} {e.op} {right})"
        if isinstance(e, A.UnaryOp):
            operand = self.expr(e.operand)
            if e.op == "!":
                return f"(not {operand})"
            return f"({e.op}{operand})"
        if isinstance(e, A.Ternary):
            return (
                f"({self.expr(e.then)} if {self.expr(e.cond)} "
                f"else {self.expr(e.other)})"
            )
        if isinstance(e, A.Call):
            if e.func not in INTRINSICS:
                raise DDMSyntaxError(
                    f"call to {e.func!r} is not a supported intrinsic "
                    f"(supported: {', '.join(sorted(INTRINSICS))})"
                )
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{INTRINSICS[e.func]}({args})"
        if isinstance(e, A.Index):
            base = self.expr(e.base)
            idx = "][".join(self.expr(i) for i in e.indices)
            return f"{base}[{idx}]"
        raise DDMSyntaxError(f"cannot generate code for expression {e!r}")
