"""Front-end stage 2: tokenizer for the C-subset body language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.preprocessor.errors import DDMSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "int",
        "long",
        "float",
        "double",
        "char",
        "if",
        "else",
        "for",
        "while",
        "break",
        "continue",
        "return",
    }
)

# Longest-match-first operator table.
_OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":",
    "(", ")", "[", "]", "{", "}", ";", ",", ".",
)


@dataclass(frozen=True)
class Token:
    kind: str  # "num" | "ident" | "kw" | "op" | "str" | "eof"
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, L{self.line})"


def tokenize(source: str, first_line: int = 1) -> list[Token]:
    """Token stream of a body slice (comments stripped, EOF appended)."""
    tokens: list[Token] = []
    i = 0
    line = first_line
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        # Comments.
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise DDMSyntaxError("unterminated /* comment", line)
            line += source.count("\n", i, j)
            i = j + 2
            continue
        # Numbers (ints, floats, exponents).
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                ch = source[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif ch in "eE" and not seen_exp and j > i:
                    nxt = source[j + 1] if j + 1 < n else ""
                    if nxt.isdigit() or nxt in "+-":
                        seen_exp = True
                        j += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        # Identifiers / keywords.
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(Token("kw" if word in KEYWORDS else "ident", word, line))
            i = j
            continue
        # String literals.
        if c == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise DDMSyntaxError("unterminated string literal", line)
            tokens.append(Token("str", source[i:j + 1], line))
            i = j + 1
            continue
        # Character literals become their integer code.
        if c == "'":
            j = i + 1
            while j < n and source[j] != "'":
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise DDMSyntaxError("unterminated char literal", line)
            body = source[i + 1:j]
            ch = bytes(body, "utf-8").decode("unicode_escape")
            if len(ch) != 1:
                raise DDMSyntaxError(f"bad char literal {body!r}", line)
            tokens.append(Token("num", str(ord(ch)), line))
            i = j + 1
            continue
        # Operators / punctuation.
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise DDMSyntaxError(f"unexpected character {c!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
