"""Front-end stage 1: recognise ``#pragma ddm`` directives.

Splits a DDM source file into directive records and the raw C-subset body
text between them.  This stage is target-independent (the paper's
"front-end is a parser tool which is independent of the TFlux
implementation").

Directive grammar (one per line)::

    #pragma ddm startprogram name(<ident>)
    #pragma ddm endprogram
    #pragma ddm var <ctype> <ident>[dim][dim...]      -- shared variable
    #pragma ddm block <int>                            -- optional blocks
    #pragma ddm endblock
    #pragma ddm prologue | endprologue                 -- sequential code
    #pragma ddm epilogue | endepilogue
    #pragma ddm thread <int> [context(<int>)]
                     [depends(<int> <same|all|map(<expr>)>) ...]
                     [cond(<int> <int> [same|all]) ...]
                     [reads(<access>) ...] [writes(<access>) ...]
    #pragma ddm endthread
    #pragma ddm for thread <int> [unroll(<int>)] [depends(...) ...]
      for (<var> = <const>; <var> < <const>; <var> += <const>) { ... }
    #pragma ddm endfor                             -- loop DThread: the
                     iteration space is split into one instance per
                     ``unroll`` iterations (constant bounds required)
    #pragma ddm subflow name(<ident>)              -- dynamic sub-graph:
      <thread directives, ids local to the subflow>
    #pragma ddm endsubflow

``CTX`` inside a thread body (and inside ``map(...)``) is the instance's
context value.

Access clauses (the Couillard-style alternative to explicit arcs): a
``reads(...)``/``writes(...)`` clause declares the slice of a shared
array the thread instance touches, in one of three forms::

    reads(A)                 -- the whole array
    reads(A[CTX])            -- one element (any CTX expression)
    reads(A[CTX*4 .. CTX*4 + 4])  -- the half-open range [lo, hi)

Expressions may use ``CTX``, integer constants and arithmetic.  When
every arc-less thread carries access clauses, the back-end derives the
synchronization graph from them (:mod:`repro.core.deps`) instead of
requiring ``depends(...)`` declarations.

Dynamic graphs (see :mod:`repro.core.dynamic`): a ``cond(p k)`` clause
declares a *conditional* arc from thread ``p``, taken only when ``p``'s
body chose branch key ``k`` by assigning the reserved ``DDMCHOICE``
variable.  A ``subflow`` block declares a spawnable sub-graph; a body
spawns it by assigning its name to the reserved ``DDMSPAWN`` variable
(``DDMSPAWN = refine;``), and the back-end ships a fresh instance of the
sub-graph as the thread's outcome.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.preprocessor.errors import DDMSyntaxError

__all__ = [
    "AccessClause",
    "Dependence",
    "CondDependence",
    "SharedVar",
    "ThreadDirective",
    "SubflowSource",
    "ProgramSource",
    "split_directives",
]

_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+ddm\b(.*)$")
_COND_RE = re.compile(r"(?<![A-Za-z0-9_])cond\(([^)]*)\)")
_NAME_RE = re.compile(r"name\(\s*([A-Za-z_]\w*)\s*\)")
_CONTEXT_RE = re.compile(r"context\(\s*(\d+)\s*\)")
_UNROLL_RE = re.compile(r"unroll\(\s*(\d+)\s*\)")
_VAR_RE = re.compile(
    r"^\s*(int|long|float|double|char)\s+([A-Za-z_]\w*)((?:\s*\[\s*\d+\s*\])*)\s*$"
)
_DIM_RE = re.compile(r"\[\s*(\d+)\s*\]")


@dataclass(frozen=True)
class Dependence:
    """One producer declaration on a thread directive."""

    producer: int
    mapping: str  # "same" | "all" | "map"
    map_expr: Optional[str] = None


@dataclass(frozen=True)
class AccessClause:
    """One ``reads(...)``/``writes(...)`` clause on a thread directive.

    ``lo_expr``/``hi_expr`` are CTX-expressions (still C-subset text):
    both ``None`` means the whole array; ``lo_expr`` alone means the
    single element at that index; both mean the half-open element range
    ``[lo, hi)``.
    """

    kind: str  # "read" | "write"
    var: str
    lo_expr: Optional[str] = None
    hi_expr: Optional[str] = None


@dataclass(frozen=True)
class CondDependence:
    """One ``cond(producer key [mapping])`` clause: a conditional arc
    taken when the producer's ``DDMCHOICE`` equals *key*."""

    producer: int
    key: int
    mapping: str = "same"  # "same" | "all"


@dataclass(frozen=True)
class SharedVar:
    """A ``#pragma ddm var`` declaration."""

    ctype: str
    name: str
    dims: tuple[int, ...] = ()

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class ThreadDirective:
    """A thread plus its body text (still unparsed C subset)."""

    tid: int
    context: int = 1
    depends: list[Dependence] = field(default_factory=list)
    conds: list[CondDependence] = field(default_factory=list)
    accesses: list[AccessClause] = field(default_factory=list)
    body: str = ""
    body_line: int = 0
    block: Optional[int] = None
    #: Loop-thread (``#pragma ddm for thread``): the body is one canonical
    #: C for loop whose iteration space is split across instances.
    is_loop: bool = False
    #: Iterations per instance for loop-threads.
    unroll: int = 1


@dataclass
class SubflowSource:
    """A ``#pragma ddm subflow`` block: a spawnable sub-graph whose
    thread ids are local to the subflow."""

    name: str
    threads: list[ThreadDirective] = field(default_factory=list)


@dataclass
class ProgramSource:
    """The directive-level decomposition of one DDM source file."""

    name: str
    variables: list[SharedVar] = field(default_factory=list)
    threads: list[ThreadDirective] = field(default_factory=list)
    subflows: list[SubflowSource] = field(default_factory=list)
    prologue: str = ""
    prologue_line: int = 0
    epilogue: str = ""
    epilogue_line: int = 0
    blocks_declared: list[int] = field(default_factory=list)


def _parse_thread_header(rest: str, lineno: int) -> ThreadDirective:
    m = re.match(r"\s*(\d+)\b", rest)
    if not m:
        raise DDMSyntaxError("thread directive needs a numeric id", lineno)
    td = ThreadDirective(tid=int(m.group(1)))
    cm = _CONTEXT_RE.search(rest)
    if cm:
        td.context = int(cm.group(1))
        if td.context < 1:
            raise DDMSyntaxError("context(...) must be >= 1", lineno)
    for producer, spec, map_expr in _scan_depends(rest, lineno):
        if spec in ("same", "all"):
            td.depends.append(Dependence(producer, spec))
        else:
            td.depends.append(Dependence(producer, "map", map_expr))
    for cm in _COND_RE.finditer(rest):
        inner = cm.group(1).strip()
        im = re.match(r"(\d+)\s+(-?\d+)(?:\s+(same|all))?$", inner)
        if not im:
            raise DDMSyntaxError(
                f"malformed cond({inner!r}): expected "
                "cond(<producer> <int-key> [same|all])",
                lineno,
            )
        td.conds.append(
            CondDependence(
                int(im.group(1)), int(im.group(2)), im.group(3) or "same"
            )
        )
    for word, kind in (("reads", "read"), ("writes", "write")):
        for inner in _scan_clauses(rest, word, lineno):
            td.accesses.append(_parse_access(kind, inner, lineno))
    return td


def _scan_clauses(rest: str, word: str, lineno: int):
    """Extract ``word(...)`` clause bodies, balancing parentheses."""
    out = []
    pos = 0
    needle = word + "("
    while True:
        start = rest.find(needle, pos)
        if start < 0:
            return out
        if start and (rest[start - 1].isalnum() or rest[start - 1] == "_"):
            pos = start + len(needle)  # part of a longer identifier
            continue
        i = start + len(needle)
        depth = 1
        while i < len(rest) and depth:
            if rest[i] == "(":
                depth += 1
            elif rest[i] == ")":
                depth -= 1
            i += 1
        if depth:
            raise DDMSyntaxError(f"unbalanced parentheses in {word}(...)", lineno)
        out.append(rest[start + len(needle):i - 1].strip())
        pos = i


def _parse_access(kind: str, inner: str, lineno: int) -> AccessClause:
    m = re.match(r"^([A-Za-z_]\w*)\s*(?:\[(.*)\]\s*)?$", inner, re.S)
    if not m:
        raise DDMSyntaxError(
            f"malformed access clause {inner!r}: expected "
            "<var>, <var>[<expr>] or <var>[<lo> .. <hi>]",
            lineno,
        )
    var, subscript = m.group(1), m.group(2)
    if subscript is None:
        return AccessClause(kind, var)
    parts = [p.strip() for p in subscript.split("..")]
    if len(parts) > 2:
        raise DDMSyntaxError(
            f"access range {subscript!r} has more than one '..'", lineno
        )
    if not all(parts):
        raise DDMSyntaxError(
            f"empty index expression in access clause {inner!r}", lineno
        )
    if len(parts) == 1:
        return AccessClause(kind, var, lo_expr=parts[0])
    return AccessClause(kind, var, lo_expr=parts[0], hi_expr=parts[1])


def _scan_depends(rest: str, lineno: int):
    """Extract depends(...) clauses, balancing parentheses (map() specs
    may contain nested calls like ``map(min(CTX / 2, 7))``)."""
    out = []
    pos = 0
    while True:
        start = rest.find("depends(", pos)
        if start < 0:
            return out
        i = start + len("depends(")
        depth = 1
        while i < len(rest) and depth:
            if rest[i] == "(":
                depth += 1
            elif rest[i] == ")":
                depth -= 1
            i += 1
        if depth:
            raise DDMSyntaxError("unbalanced parentheses in depends(...)", lineno)
        inner = rest[start + len("depends("):i - 1].strip()
        pos = i
        m = re.match(r"(\d+)\s+(.*)$", inner, re.S)
        if not m:
            raise DDMSyntaxError(f"malformed depends({inner!r})", lineno)
        producer = int(m.group(1))
        spec = m.group(2).strip()
        if spec in ("same", "all"):
            out.append((producer, spec, None))
        elif spec.startswith("map(") and spec.endswith(")"):
            out.append((producer, "map", spec[len("map("):-1]))
        else:
            raise DDMSyntaxError(
                f"dependence spec must be same/all/map(...), got {spec!r}",
                lineno,
            )


def split_directives(source: str) -> ProgramSource:
    """First front-end pass: directives + raw body slices."""
    lines = source.splitlines()
    prog: Optional[ProgramSource] = None
    ended = False
    current_thread: Optional[ThreadDirective] = None
    current_subflow: Optional[SubflowSource] = None
    current_section: Optional[str] = None  # "prologue" | "epilogue"
    body_lines: list[str] = []
    body_start = 0
    current_block: Optional[int] = None

    def require_prog(lineno: int) -> ProgramSource:
        if prog is None:
            raise DDMSyntaxError("directive before startprogram", lineno)
        if ended:
            raise DDMSyntaxError("directive after endprogram", lineno)
        return prog

    for lineno, raw in enumerate(lines, start=1):
        m = _PRAGMA_RE.match(raw)
        if not m:
            if current_thread is not None or current_section is not None:
                body_lines.append(raw)
            elif raw.strip() and prog is not None and not ended:
                raise DDMSyntaxError(
                    f"code outside any thread/prologue/epilogue: {raw.strip()!r}",
                    lineno,
                )
            continue

        rest = m.group(1).strip()
        keyword = rest.split("(")[0].split()[0] if rest else ""

        if keyword == "startprogram":
            if prog is not None:
                raise DDMSyntaxError("nested startprogram", lineno)
            nm = _NAME_RE.search(rest)
            prog = ProgramSource(name=nm.group(1) if nm else "ddm_program")
            continue

        p = require_prog(lineno)

        if keyword == "endprogram":
            if current_thread is not None:
                raise DDMSyntaxError("endprogram inside thread", lineno)
            if current_subflow is not None:
                raise DDMSyntaxError("endprogram inside subflow", lineno)
            ended = True
        elif keyword == "subflow":
            if current_thread is not None or current_section is not None:
                raise DDMSyntaxError("subflow inside thread/section", lineno)
            if current_subflow is not None:
                raise DDMSyntaxError("nested subflow", lineno)
            nm = _NAME_RE.search(rest)
            if not nm:
                raise DDMSyntaxError("subflow directive needs name(...)", lineno)
            current_subflow = SubflowSource(name=nm.group(1))
        elif keyword == "endsubflow":
            if current_thread is not None:
                raise DDMSyntaxError("endsubflow inside thread", lineno)
            if current_subflow is None:
                raise DDMSyntaxError("endsubflow without subflow", lineno)
            if not current_subflow.threads:
                raise DDMSyntaxError(
                    f"subflow {current_subflow.name!r} declares no threads", lineno
                )
            p.subflows.append(current_subflow)
            current_subflow = None
        elif keyword == "var":
            decl = rest[len("var"):].strip()
            vm = _VAR_RE.match(decl)
            if not vm:
                raise DDMSyntaxError(f"malformed var declaration {decl!r}", lineno)
            dims = tuple(int(d) for d in _DIM_RE.findall(vm.group(3)))
            p.variables.append(SharedVar(vm.group(1), vm.group(2), dims))
        elif keyword == "block":
            bm = re.match(r"block\s+(\d+)", rest)
            if not bm:
                raise DDMSyntaxError("block directive needs an id", lineno)
            current_block = int(bm.group(1))
            p.blocks_declared.append(current_block)
        elif keyword == "endblock":
            current_block = None
        elif keyword == "thread":
            if current_thread is not None or current_section is not None:
                raise DDMSyntaxError("nested thread/section", lineno)
            current_thread = _parse_thread_header(rest[len("thread"):], lineno)
            current_thread.block = current_block
            body_lines = []
            current_thread.body_line = lineno + 1
        elif keyword == "for":
            if current_thread is not None or current_section is not None:
                raise DDMSyntaxError("nested thread/section", lineno)
            if current_subflow is not None:
                raise DDMSyntaxError(
                    "'for thread' is not supported inside a subflow", lineno
                )
            after = rest[len("for"):].strip()
            if not after.startswith("thread"):
                raise DDMSyntaxError("expected 'for thread <id> ...'", lineno)
            current_thread = _parse_thread_header(after[len("thread"):], lineno)
            current_thread.is_loop = True
            um = _UNROLL_RE.search(after)
            if um:
                current_thread.unroll = int(um.group(1))
                if current_thread.unroll < 1:
                    raise DDMSyntaxError("unroll(...) must be >= 1", lineno)
            current_thread.block = current_block
            body_lines = []
            current_thread.body_line = lineno + 1
        elif keyword == "endfor":
            if current_thread is None or not current_thread.is_loop:
                raise DDMSyntaxError("endfor without 'for thread'", lineno)
            current_thread.body = "\n".join(body_lines)
            p.threads.append(current_thread)
            current_thread = None
        elif keyword == "endthread":
            if current_thread is None:
                raise DDMSyntaxError("endthread without thread", lineno)
            if current_thread.is_loop:
                raise DDMSyntaxError("'for thread' must close with endfor", lineno)
            current_thread.body = "\n".join(body_lines)
            if current_subflow is not None:
                current_subflow.threads.append(current_thread)
            else:
                p.threads.append(current_thread)
            current_thread = None
        elif keyword in ("prologue", "epilogue"):
            if current_thread is not None or current_section is not None:
                raise DDMSyntaxError(f"nested {keyword}", lineno)
            if current_subflow is not None:
                raise DDMSyntaxError(f"{keyword} inside subflow", lineno)
            current_section = keyword
            body_lines = []
            body_start = lineno + 1
        elif keyword in ("endprologue", "endepilogue"):
            want = keyword[3:]
            if current_section != want:
                raise DDMSyntaxError(f"{keyword} without {want}", lineno)
            text = "\n".join(body_lines)
            if want == "prologue":
                p.prologue, p.prologue_line = text, body_start
            else:
                p.epilogue, p.epilogue_line = text, body_start
            current_section = None
        else:
            raise DDMSyntaxError(f"unknown ddm directive {keyword!r}", lineno)

    if prog is None:
        raise DDMSyntaxError("no '#pragma ddm startprogram' found", 1)
    if current_thread is not None:
        raise DDMSyntaxError(f"thread {current_thread.tid} never closed", len(lines))
    if current_subflow is not None:
        raise DDMSyntaxError(
            f"subflow {current_subflow.name!r} never closed", len(lines)
        )
    if current_section is not None:
        raise DDMSyntaxError(f"{current_section} never closed", len(lines))
    if not ended:
        raise DDMSyntaxError("missing '#pragma ddm endprogram'", len(lines))
    if not prog.threads:
        raise DDMSyntaxError("program declares no threads", len(lines))
    _check_scope(prog.name, prog.threads)
    sf_names: set[str] = set()
    shared_names = {v.name for v in prog.variables}
    for sf in prog.subflows:
        if sf.name in sf_names:
            raise DDMSyntaxError(f"duplicate subflow name {sf.name!r}")
        sf_names.add(sf.name)
        if sf.name in shared_names:
            raise DDMSyntaxError(
                f"subflow name {sf.name!r} collides with a shared variable"
            )
        _check_scope(f"subflow {sf.name}", sf.threads)
    return prog


def _check_scope(scope: str, threads: list[ThreadDirective]) -> None:
    """Thread ids unique and arcs (plain + conditional) resolvable within
    one scope — the program or one subflow."""
    seen: set[int] = set()
    for t in threads:
        if t.tid in seen:
            raise DDMSyntaxError(f"duplicate thread id {t.tid} in {scope}")
        seen.add(t.tid)
    for t in threads:
        for dep in t.depends:
            if dep.producer not in seen:
                raise DDMSyntaxError(
                    f"thread {t.tid} depends on unknown thread {dep.producer}"
                )
        for c in t.conds:
            if c.producer not in seen:
                raise DDMSyntaxError(
                    f"thread {t.tid} cond-depends on unknown thread {c.producer}"
                )
