"""Diagnostics for the DDM preprocessor."""

from __future__ import annotations

__all__ = ["DDMSyntaxError"]


class DDMSyntaxError(SyntaxError):
    """A malformed directive or C-subset construct in DDM source.

    Carries the 1-based source line so users can find the offending
    construct in their ``.ddm`` file.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
