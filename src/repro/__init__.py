"""TFlux: a portable platform for Data-Driven Multithreading — full Python
reproduction of Stavrou et al., ICPP 2008.

Quick start
-----------
>>> from repro.frontend import DDM
>>> from repro.platforms import TFluxHard
>>> ddm = DDM("hello")
>>> _ = ddm.env.alloc("parts", 4)
>>> @ddm.thread(contexts=4)
... def work(env, i):
...     env.array("parts")[i] = i + 1
>>> @ddm.thread(depends=[(work, "all")])
... def total(env, _):
...     env.set("total", float(env.array("parts").sum()))
>>> result = TFluxHard().execute(ddm.build(), nkernels=4)
>>> result.env.get("total")
10.0

Package layout
--------------
``repro.core``
    The DDM model: DThreads, the Synchronization Graph, DDM Blocks with
    Inlet/Outlet threads, programs and environments.
``repro.tsu``
    The Thread Synchronization Unit: the shared TSU Group state machine,
    the TFluxSoft structures (SM / TKT / TUB), and per-platform protocol
    cost adapters.
``repro.runtime``
    Runtime Support: the Kernel loop on the simulated machines and a real
    ``threading``-based native backend.
``repro.sim``
    The full-system simulator substrate: DES engine, MESI cache models,
    bus/MMI, machine configurations.
``repro.cell``
    The Cell/BE substrate: Local Stores, DMA, mailboxes, CommandBuffers.
``repro.platforms``
    TFluxHard / TFluxSoft / TFluxCell.
``repro.preprocessor`` / ``repro.frontend``
    The DDMCPP tool-chain (``#pragma ddm`` C subset → Python) and the
    decorator API.
``repro.apps``
    The five Table-1 workloads with cost models and oracles.
``repro.analysis``
    Figure sweeps, table renderers, paper reference data.
"""

from repro.core import DDMProgram, Environment, ProgramBuilder
from repro.frontend import DDM
from repro.platforms import Platform, TFluxCell, TFluxHard, TFluxSoft
from repro.runtime import NativeRuntime, RunResult, SimulatedRuntime

__version__ = "1.0.0"

__all__ = [
    "DDM",
    "DDMProgram",
    "Environment",
    "ProgramBuilder",
    "Platform",
    "TFluxHard",
    "TFluxSoft",
    "TFluxCell",
    "NativeRuntime",
    "SimulatedRuntime",
    "RunResult",
    "__version__",
]
