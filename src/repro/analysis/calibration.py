"""Reference values from the paper's evaluation (§6).

Only the bar labels actually printed in Figures 5–7 and the claims stated
in the text are encoded; bars without printed values are ``None`` (the
paper's figure renders them but the scan provides no number).  These
anchors drive the paper-vs-measured comparison and the *shape* assertions
in the benchmark harness — orderings and rough factors, never exact
matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PAPER", "PaperReference"]


@dataclass(frozen=True)
class PaperReference:
    """All encoded reference points."""

    #: Figure 5 — TFluxHard speedups, large problem size, by kernel count.
    #: Values printed on the figure for 27 kernels; the small-kernel bars
    #: print near-ideal values (2.0 / ~4.0 / ~7.9) for the scalable codes.
    fig5_large_27: dict[str, float] = field(
        default_factory=lambda: {
            "trapez": 25.6,
            "susan": 24.8,
            "mmult": 24.1,
            "fft": 18.8,
            "qsort": 13.6,
        }
    )
    #: Near-ideal low-kernel-count anchors visible in Figure 5.
    fig5_scalable_anchor: dict[int, float] = field(
        default_factory=lambda: {2: 2.0, 4: 4.0, 8: 7.9, 16: 15.7}
    )
    fig5_average_27: float = 21.0  # §1/§8 headline

    #: Figure 6 — TFluxSoft native, 6 kernels, best-size values printed.
    fig6_best_6: dict[str, float] = field(
        default_factory=lambda: {
            "trapez": 4.9,
            "susan": 4.9,
            "mmult": 4.5,
            "fft": 3.6,
            "qsort": 3.4,
        }
    )
    #: Figure 6's 2-kernel bars sit between ~1.6 and ~2.0.  Measured
    #: values are compared against this band with slack above 2.0:
    #: against the canonical unroll=1 sequential baseline (the paper's
    #: serial program, which re-streams MMULT's full B matrix per row),
    #: two kernels aggregate two L1s and can land mildly superlinear —
    #: a real cache-aggregation effect, not a modelling artefact.
    fig6_two_kernel_band: tuple[float, float] = (1.6, 2.0)

    #: Figure 7 — TFluxCell, 6 SPEs, printed values (no FFT on Cell).
    fig7_best_6: dict[str, float] = field(
        default_factory=lambda: {
            "trapez": 5.5,
            "mmult": 5.1,
            "susan": 5.0,
            "qsort": 2.1,
        }
    )
    fig7_qsort_band: tuple[float, float] = (1.3, 2.1)

    #: §1/§8: software platforms average 4.4x on 6 nodes.
    soft_cell_average_6: float = 4.4

    #: §4.1/§6.1.1: TSU processing time 1 -> 128 cycles costs < 1%.
    tsu_latency_max_impact: float = 0.01

    #: §6.2.2: unroll factors — Hard peaks by ~2-4, Soft needs > 16.
    hard_sufficient_unroll: int = 4
    soft_required_unroll: int = 16
    #: §6.3: Cell MMULT needs unroll 64.
    cell_mmult_unroll: int = 64


PAPER = PaperReference()
