"""ASCII renderers for the paper's tables and figures."""

from __future__ import annotations

from typing import Optional

from repro.analysis.speedup import FigureGrid
from repro.apps.common import _SIZES, SIZE_LABELS

__all__ = ["render_table1", "render_grid", "render_comparison"]

_DESCRIPTIONS = {
    "trapez": ("kernel", "Trapezoidal rule for integration"),
    "mmult": ("kernel", "Matrix multiply"),
    "qsort": ("MiBench", "Array sorting"),
    "susan": ("MiBench", "Image recognition / smoothing"),
    "fft": ("NAS", "FFT on a matrix of complex numbers"),
}


def _fmt_params(bench: str, params: dict) -> str:
    if bench == "trapez":
        return f"2^{params['k']}"
    if bench in ("mmult", "fft"):
        n = params["n"]
        return f"{n}x{n}"
    if bench == "qsort":
        return f"{params['n'] // 1000}K"
    if bench == "susan":
        return f"{params['w']}x{params['h']}"
    return str(params)


def render_table1() -> str:
    """Regenerate Table 1: workload description and problem sizes."""
    lines = [
        "Table 1. Experimental workload description and problem sizes.",
        f"{'Benchmark':<10} {'Source':<8} {'Description':<38} "
        f"{'Tgt':<5} {'Small':>10} {'Medium':>10} {'Large':>10}",
        "-" * 95,
    ]
    for bench in ("trapez", "mmult", "qsort", "susan", "fft"):
        source, desc = _DESCRIPTIONS[bench]
        per_target = _SIZES[bench]
        # Group identical target rows (the paper prints e.g. "S,N,C").
        grouping: dict[tuple, list[str]] = {}
        for target in ("S", "N", "C"):
            key = tuple(
                _fmt_params(bench, per_target[target][label]) for label in SIZE_LABELS
            )
            grouping.setdefault(key, []).append(target)
        first = True
        for key, targets in grouping.items():
            name = bench.upper() if first else ""
            src = source if first else ""
            dsc = desc if first else ""
            first = False
            lines.append(
                f"{name:<10} {src:<8} {dsc:<38} {','.join(targets):<5} "
                f"{key[0]:>10} {key[1]:>10} {key[2]:>10}"
            )
    return "\n".join(lines)


def render_grid(grid: FigureGrid, title: str) -> str:
    """Figure 5/6/7-style table: speedup per benchmark/kernels/size."""
    lines = [title, ""]
    header = f"{'benchmark':<9} {'kernels':>7} " + "".join(
        f"{s:>9}" for s in grid.sizes
    )
    lines.append(header)
    lines.append("-" * len(header))
    for bench in grid.benches:
        for nk in grid.kernel_counts:
            row = f"{bench.upper():<9} {nk:>7} "
            for size in grid.sizes:
                ev = grid.get(bench, nk, size)
                row += f"{ev.speedup:>9.2f}" if ev is not None else f"{'-':>9}"
            lines.append(row)
        lines.append("")
    top = grid.kernel_counts[-1]
    lines.append(
        f"average speedup at {top} kernels (large): "
        f"{grid.average(top, 'large'):.2f}"
    )
    return "\n".join(lines)


def render_bars(grid: FigureGrid, size: str = "large", width: int = 50) -> str:
    """Paper-figure-style horizontal bars: one group per benchmark, one
    bar per kernel count, scaled to the ideal (max kernel count)."""
    top = max(grid.kernel_counts)
    lines = [f"speedup bars ({size} size; full width = {top}x ideal)"]
    for bench in grid.benches:
        lines.append(bench.upper())
        for nk in grid.kernel_counts:
            ev = grid.get(bench, nk, size)
            if ev is None:
                continue
            filled = int(round(ev.speedup / top * width))
            bar = "█" * min(filled, width)
            lines.append(f"  {nk:>3} |{bar:<{width}}| {ev.speedup:5.2f}")
    return "\n".join(lines)


def render_comparison(
    measured: dict[str, float], reference: dict[str, Optional[float]], title: str
) -> str:
    """Paper-vs-measured rows for EXPERIMENTS.md."""
    lines = [title, f"{'benchmark':<10} {'paper':>8} {'measured':>10} {'ratio':>8}"]
    for bench, paper_value in reference.items():
        got = measured.get(bench)
        if got is None:
            continue
        if paper_value:
            lines.append(
                f"{bench.upper():<10} {paper_value:>8.1f} {got:>10.2f} "
                f"{got / paper_value:>8.2f}"
            )
        else:
            lines.append(f"{bench.upper():<10} {'n/a':>8} {got:>10.2f} {'':>8}")
    return "\n".join(lines)
