"""Repeated-measurement statistics for native (wall-clock) runs.

"While for the simulated architecture the results were collected with a
single run, for the native execution, multiple runs were performed in
order for the results to be statistically significant" (paper §5).  The
simulated machines are deterministic, so this module only concerns the
:class:`~repro.runtime.native.NativeRuntime`: it repeats a run factory,
collects wall times, and reports mean / spread / a confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Union

from repro.obs import RunRecord
from repro.runtime.stats import RunResult

#: Either the live result or its env-free record — both carry
#: ``wall_seconds``, which is all this module reads.
RunLike = Union[RunResult, RunRecord]

__all__ = ["Measurement", "measure_native", "summarize"]

#: Two-sided 95% Student-t critical values by degrees of freedom (1..30);
#: beyond 30 the normal value is close enough.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}


def _t95(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df in _T95:
        return _T95[df]
    keys = sorted(_T95)
    for k in keys:
        if df < k:
            return _T95[k]
    return 1.96


@dataclass(frozen=True)
class Measurement:
    """Summary of repeated wall-clock measurements (seconds)."""

    samples: tuple[float, ...]
    mean: float
    stdev: float
    ci95_half_width: float

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def relative_ci(self) -> float:
        """CI half-width as a fraction of the mean (0 when mean is 0)."""
        return self.ci95_half_width / self.mean if self.mean else 0.0

    def __str__(self) -> str:
        return (
            f"{self.mean * 1e3:.2f}ms ± {self.ci95_half_width * 1e3:.2f}ms "
            f"(95% CI, n={self.n})"
        )


def summarize(samples: Sequence[float]) -> Measurement:
    """Mean, sample standard deviation, and a 95% t-interval."""
    if not samples:
        raise ValueError("need at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return Measurement(tuple(samples), mean, 0.0, float("inf"))
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    stdev = math.sqrt(var)
    half = _t95(n - 1) * stdev / math.sqrt(n)
    return Measurement(tuple(samples), mean, stdev, half)


def measure_native(
    run_factory: Callable[[], RunLike],
    runs: int = 5,
    warmup: int = 1,
) -> tuple[Measurement, RunLike]:
    """Repeat a native execution; returns (statistics, last result).

    *run_factory* must build a fresh program and runtime each call
    (programs are single-run objects).  It may return either the live
    :class:`RunResult` or an already-converted :class:`RunRecord`.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    for _ in range(warmup):
        run_factory()
    samples: list[float] = []
    last: RunLike | None = None
    for _ in range(runs):
        last = run_factory()
        samples.append(last.wall_seconds)
    assert last is not None
    return summarize(samples), last
