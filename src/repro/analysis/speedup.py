"""Sweep drivers regenerating the paper's figures.

A *figure grid* is the paper's measurement matrix: benchmarks × kernel
counts × problem sizes, each cell holding the best-over-unrolls speedup
(the §5 protocol implemented by
:meth:`repro.platforms.base.Platform.evaluate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps import problem_sizes
from repro.exec import EvalRequest, evaluate_many
from repro.platforms.base import Evaluation, Platform

__all__ = ["FigureGrid", "sweep_figure"]


@dataclass
class FigureGrid:
    """Results of one figure's sweep."""

    platform: str
    benches: list[str]
    kernel_counts: list[int]
    sizes: list[str]
    #: (bench, nkernels, size_label) -> Evaluation
    cells: dict[tuple[str, int, str], Evaluation] = field(default_factory=dict)

    def speedup(self, bench: str, nkernels: int, size: str) -> float:
        return self.cells[(bench, nkernels, size)].speedup

    def get(self, bench: str, nkernels: int, size: str) -> Optional[Evaluation]:
        return self.cells.get((bench, nkernels, size))

    def average(self, nkernels: int, size: str = "large") -> float:
        values = [
            self.cells[(b, nkernels, size)].speedup
            for b in self.benches
            if (b, nkernels, size) in self.cells
        ]
        return sum(values) / len(values) if values else 0.0


def sweep_figure(
    platform: Platform,
    benches: Sequence[str],
    kernel_counts: Sequence[int],
    sizes: Sequence[str] = ("small", "medium", "large"),
    unrolls: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    verify: bool = False,
    max_threads: int = 2048,
) -> FigureGrid:
    """Run the full grid of one figure on *platform*.

    The whole grid is flattened into independent (cell × unroll) jobs
    and driven through :mod:`repro.exec` in one batch, so ``TFLUX_JOBS``
    parallelises across the entire figure and ``TFLUX_CACHE_DIR`` turns
    repeated sweeps into cache hits.  Cell results come back in
    deterministic grid order regardless of worker scheduling.
    """
    grid = FigureGrid(
        platform=platform.name,
        benches=list(benches),
        kernel_counts=list(kernel_counts),
        sizes=list(sizes),
    )
    requests: list[EvalRequest] = []
    keys: list[tuple[str, int, str]] = []
    for bench_name in benches:
        size_grid = problem_sizes(bench_name, platform.target)
        for size_label in sizes:
            size = size_grid[size_label]
            for nk in kernel_counts:
                requests.append(
                    EvalRequest(
                        platform=platform,
                        bench=bench_name,
                        size=size,
                        nkernels=nk,
                        unrolls=tuple(unrolls),
                        verify=verify,
                        max_threads=max_threads,
                    )
                )
                keys.append((bench_name, nk, size_label))
    for key, evaluation in zip(keys, evaluate_many(requests)):
        grid.cells[key] = evaluation
    return grid
