"""Sweep drivers regenerating the paper's figures.

A *figure grid* is the paper's measurement matrix: benchmarks × kernel
counts × problem sizes, each cell holding the best-over-unrolls speedup
(the §5 protocol implemented by
:meth:`repro.platforms.base.Platform.evaluate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps import get_benchmark, problem_sizes
from repro.platforms.base import Evaluation, Platform

__all__ = ["FigureGrid", "sweep_figure"]


@dataclass
class FigureGrid:
    """Results of one figure's sweep."""

    platform: str
    benches: list[str]
    kernel_counts: list[int]
    sizes: list[str]
    #: (bench, nkernels, size_label) -> Evaluation
    cells: dict[tuple[str, int, str], Evaluation] = field(default_factory=dict)

    def speedup(self, bench: str, nkernels: int, size: str) -> float:
        return self.cells[(bench, nkernels, size)].speedup

    def get(self, bench: str, nkernels: int, size: str) -> Optional[Evaluation]:
        return self.cells.get((bench, nkernels, size))

    def average(self, nkernels: int, size: str = "large") -> float:
        values = [
            self.cells[(b, nkernels, size)].speedup
            for b in self.benches
            if (b, nkernels, size) in self.cells
        ]
        return sum(values) / len(values) if values else 0.0


def sweep_figure(
    platform: Platform,
    benches: Sequence[str],
    kernel_counts: Sequence[int],
    sizes: Sequence[str] = ("small", "medium", "large"),
    unrolls: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    verify: bool = False,
    max_threads: int = 2048,
) -> FigureGrid:
    """Run the full grid of one figure on *platform*."""
    grid = FigureGrid(
        platform=platform.name,
        benches=list(benches),
        kernel_counts=list(kernel_counts),
        sizes=list(sizes),
    )
    for bench_name in benches:
        bench = get_benchmark(bench_name)
        size_grid = problem_sizes(bench_name, platform.target)
        for size_label in sizes:
            size = size_grid[size_label]
            for nk in kernel_counts:
                grid.cells[(bench_name, nk, size_label)] = platform.evaluate(
                    bench,
                    size,
                    nkernels=nk,
                    unrolls=unrolls,
                    verify=verify,
                    max_threads=max_threads,
                )
    return grid
