"""Evaluation analysis: paper reference data, sweeps, and renderers.

* :mod:`repro.analysis.calibration` — every reference value legible in the
  paper's Figures 5–7 and the headline averages, for paper-vs-measured
  comparison in ``EXPERIMENTS.md``;
* :mod:`repro.analysis.speedup` — the sweep drivers that regenerate each
  figure's grid (benchmark × kernels × problem size);
* :mod:`repro.analysis.tables` — ASCII renderers producing the same rows
  and series the paper reports.
"""

from repro.analysis.calibration import PAPER
from repro.analysis.runstats import Measurement, measure_native, summarize
from repro.analysis.speedup import FigureGrid, sweep_figure
from repro.analysis.tables import render_grid, render_table1

__all__ = [
    "PAPER",
    "FigureGrid",
    "sweep_figure",
    "render_grid",
    "render_table1",
    "Measurement",
    "measure_native",
    "summarize",
]
