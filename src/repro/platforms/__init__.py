"""The three TFlux platform implementations (paper §4).

Each platform pairs a machine configuration with a TSU protocol adapter
behind the same :class:`~repro.platforms.base.Platform` interface — the
virtualization claim made concrete: identical DDM programs execute on all
three.

* :class:`~repro.platforms.hard.TFluxHard` — 27-kernel Bagle CMP,
  hardware TSU behind the MMI (configurable processing latency);
* :class:`~repro.platforms.soft.TFluxSoft` — 8-core Xeon, software TSU
  emulator on a dedicated core (6 compute kernels after the OS core);
* :class:`~repro.platforms.cellbe.TFluxCell` — PS3 Cell/BE, TSU emulator
  on the PPE, kernels on up to 6 SPEs with Local Stores and DMA.
"""

from repro.platforms.base import Platform
from repro.platforms.hard import TFluxHard
from repro.platforms.soft import TFluxSoft
from repro.platforms.cellbe import TFluxCell

__all__ = ["Platform", "TFluxHard", "TFluxSoft", "TFluxCell"]
