"""The three TFlux platform implementations (paper §4).

Each platform pairs a machine configuration with a TSU protocol adapter
behind the same :class:`~repro.platforms.base.Platform` interface — the
virtualization claim made concrete: identical DDM programs execute on all
three.

* :class:`~repro.platforms.hard.TFluxHard` — 27-kernel Bagle CMP,
  hardware TSU behind the MMI (configurable processing latency);
* :class:`~repro.platforms.soft.TFluxSoft` — 8-core Xeon, software TSU
  emulator on a dedicated core (6 compute kernels after the OS core);
* :class:`~repro.platforms.cellbe.TFluxCell` — PS3 Cell/BE, TSU emulator
  on the PPE, kernels on up to 6 SPEs with Local Stores and DMA.

Beyond the paper, :class:`~repro.platforms.dist.TFluxDist` composes N
TFluxSoft-style nodes over a simulated message-passing network
(:mod:`repro.net`) — the §4.1 "multiple TSU Groups" scaling axis taken
off-chip.
"""

from repro.platforms.base import Platform
from repro.platforms.hard import TFluxHard
from repro.platforms.soft import TFluxSoft
from repro.platforms.cellbe import TFluxCell
from repro.platforms.dist import TFluxDist

__all__ = ["Platform", "TFluxHard", "TFluxSoft", "TFluxCell", "TFluxDist"]
