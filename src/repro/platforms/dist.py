"""TFluxDist: N TFluxSoft-style nodes over a message-passing network.

The paper stops at the cores behind one chip's TSU; §4.1 notes that "for
systems with very large number of CPUs it may be beneficial to have
multiple TSU Groups".  :mod:`repro.tsu.multigroup` reproduces that
on-chip; this platform takes the same scaling axis *off-chip*: each node
is an 8-core Xeon box of the TFluxSoft kind (one OS core, one TSU
Emulator core, six Kernels), and the nodes cooperate on one
Synchronization Graph through :mod:`repro.net` — remote Ready-Count
updates, block Inlet/Outlet broadcasts and a distributed termination
barrier travel as messages; operand lines written on one node and read
on another are forwarded and priced against NIC ingest bandwidth.

Modelling note: the machine handed to the simulator has ``8 * nnodes``
cores behind one coherent memory model, which prices every access as if
it were node-local; the network then *adds* the cross-node forwarding
cost through the adapter's memory hook.  Off-node lines are therefore
charged the coherent cost plus the wire cost — the right magnitude
without a second memory model (and exactly zero extra with one node,
which is what the differential test pins).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.program import DDMProgram
from repro.net.message import NetParams
from repro.net.topology import Topology
from repro.obs import Probe
from repro.platforms.base import Platform
from repro.runtime.simdriver import SimulatedRuntime
from repro.runtime.stats import RunResult
from repro.sim.capability import check_nodes
from repro.sim.engine import Engine
from repro.sim.machine import MachineConfig, XEON_8
from repro.tsu.base import ProtocolAdapter
from repro.tsu.dist import DistTSUAdapter
from repro.tsu.group import TSUGroup
from repro.tsu.hier import HierDistTSUAdapter
from repro.tsu.policy import PlacementPolicy, contiguous_placement
from repro.tsu.software import SoftTSUCosts

__all__ = ["TFluxDist"]


class TFluxDist(Platform):
    """Up to ``6 * nnodes`` compute kernels across message-passing nodes.

    *topology* selects the fabric wiring (default
    :class:`~repro.net.topology.FullMesh`); *cluster_size* switches the
    TSU fan-out to the hierarchical cluster-head relay of
    :class:`~repro.tsu.hier.HierDistTSUAdapter` (``None`` keeps the flat
    point-to-point adapter).
    """

    target = "N"

    def __init__(
        self,
        nnodes: int = 2,
        machine: MachineConfig = XEON_8,
        costs: SoftTSUCosts = SoftTSUCosts(),
        net: NetParams = NetParams(),
        topology: Optional[Topology] = None,
        cluster_size: Optional[int] = None,
    ) -> None:
        # The fused machine must fit the two-level sharer directory
        # (64 nodes x 64 cores); one check covers both axes.
        check_nodes(nnodes, cores_per_node=machine.ncores, what="TFluxDist")
        super().__init__(machine.with_cores(machine.ncores * nnodes), name="tfluxdist")
        self.nnodes = nnodes
        self.node_machine = machine
        self.costs = costs
        self.net = net
        self.topology = topology
        self.cluster_size = cluster_size

    @property
    def max_kernels(self) -> int:
        # Per node: the OS core and the TSU Emulator core are reserved.
        per_node = self.node_machine.ncores - self.node_machine.os_reserved_cores - 1
        return per_node * self.nnodes

    def adapter_factory(self) -> Callable[[Engine, TSUGroup], ProtocolAdapter]:
        nnodes, costs, net = self.nnodes, self.costs, self.net
        topology, cluster = self.topology, self.cluster_size
        if cluster is not None:
            return lambda engine, tsu: HierDistTSUAdapter(
                engine, tsu, nnodes=nnodes, costs=costs, net_params=net,
                topology=topology, cluster_size=cluster,
            )
        return lambda engine, tsu: DistTSUAdapter(
            engine, tsu, nnodes=nnodes, costs=costs, net_params=net,
            topology=topology,
        )

    def execute(
        self,
        program: DDMProgram,
        nkernels: int,
        tsu_capacity: Optional[int] = None,
        exact_memory: bool = False,
        allow_stealing: bool = False,
        placement: PlacementPolicy = contiguous_placement,
        tracer: Optional[Probe] = None,
    ) -> RunResult:
        if allow_stealing and self.nnodes > 1:
            raise ValueError(
                "tfluxdist cannot steal across nodes; use allow_stealing=False"
            )
        if nkernels > self.max_kernels:
            raise ValueError(
                f"{self.name} offers at most {self.max_kernels} kernels "
                f"({nkernels} requested)"
            )
        if nkernels < self.nnodes:
            raise ValueError(
                f"need at least one kernel per node ({self.nnodes} nodes, "
                f"{nkernels} kernels requested)"
            )
        runtime = SimulatedRuntime(
            program,
            self.machine,
            nkernels=nkernels,
            adapter_factory=self.adapter_factory(),
            tsu_capacity=tsu_capacity,
            placement=placement,
            exact_memory=exact_memory,
            allow_stealing=allow_stealing,
            platform_name=self.name,
            tracer=tracer,
        )
        # The adapter is built before the driver's memory system exists;
        # wire the data plane in now that both are alive.
        runtime.adapter.attach_memory(
            runtime.memsys, self.machine.l1.line_size, program.env.regions
        )
        return runtime.run()
