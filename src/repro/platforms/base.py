"""The platform interface: one DDM program, any machine.

A :class:`Platform` knows its machine configuration, how many compute
kernels it can offer, and how to build the protocol adapter that prices
TSU operations.  All platforms execute through the same Kernel step
machine (:mod:`repro.runtime.core`) hosted on the DES by
:class:`~repro.runtime.simdriver.SimulatedRuntime` — a platform differs
only in its adapter and machine, never in runtime semantics (the paper's
portability claim).  ``execute`` runs a program; ``evaluate`` reproduces the
paper's measurement protocol for one (benchmark, size, kernel count)
cell: run the sequential baseline and the parallel version — optionally
taking the best over a set of unroll factors, as §5 prescribes — and
report the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.apps.common import Benchmark, ProblemSize
from repro.core.program import DDMProgram
from repro.obs import Probe, RunRecord
from repro.runtime.simdriver import SimulatedRuntime, run_sequential_timed
from repro.runtime.stats import RunResult
from repro.sim.engine import Engine
from repro.sim.machine import MachineConfig
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup
from repro.tsu.policy import PlacementPolicy, contiguous_placement

__all__ = ["Platform", "Evaluation"]


@dataclass
class Evaluation:
    """Result of one paper-style measurement cell."""

    platform: str
    bench: str
    size_label: str
    nkernels: int
    speedup: float
    best_unroll: int
    parallel_cycles: int
    sequential_cycles: int
    per_unroll: dict[int, float] = field(default_factory=dict)
    #: Telemetry of the best parallel run: the env-free, picklable
    #: :class:`~repro.obs.RunRecord` (it crossed the repro.exec pool and
    #: cache boundaries; functional output is verified before slimming).
    result: Optional[RunRecord] = None

    def row(self) -> str:
        return (
            f"{self.bench:>7s} {self.size_label:>6s} "
            f"kernels={self.nkernels:<3d} speedup={self.speedup:5.2f} "
            f"(unroll={self.best_unroll})"
        )


class Platform:
    """Base class for TFluxHard / TFluxSoft / TFluxCell."""

    #: Target letter in Table 1 (S / N / C) — selects problem sizes.
    target = "S"

    def __init__(self, machine: MachineConfig, name: str) -> None:
        self.machine = machine
        self.name = name

    # -- to be provided by the implementations ----------------------------------
    def adapter_factory(self) -> Callable[[Engine, TSUGroup], ProtocolAdapter]:
        raise NotImplementedError

    @property
    def max_kernels(self) -> int:
        """Compute kernels available on this platform."""
        return self.machine.max_kernels

    # -- execution ------------------------------------------------------------------
    def execute(
        self,
        program: DDMProgram,
        nkernels: int,
        tsu_capacity: Optional[int] = None,
        exact_memory: bool = False,
        allow_stealing: bool = False,
        placement: PlacementPolicy = contiguous_placement,
        tracer: Optional[Probe] = None,
    ) -> RunResult:
        """Run *program* with *nkernels* Kernels; returns the result.

        Pass a collecting *tracer* (e.g. :class:`repro.obs.Tracer`) to
        keep per-DThread spans, and a *placement* policy to override the
        default contiguous DThread→kernel assignment.
        """
        if nkernels > self.max_kernels:
            raise ValueError(
                f"{self.name} offers at most {self.max_kernels} kernels "
                f"({nkernels} requested)"
            )
        runtime = SimulatedRuntime(
            program,
            self.machine,
            nkernels=nkernels,
            adapter_factory=self.adapter_factory(),
            tsu_capacity=tsu_capacity,
            placement=placement,
            exact_memory=exact_memory,
            allow_stealing=allow_stealing,
            platform_name=self.name,
            tracer=tracer,
        )
        return runtime.run()

    def sequential_baseline(
        self,
        program: DDMProgram,
        exact_memory: bool = False,
        tracer: Optional[Probe] = None,
    ) -> RunResult:
        """The §5 baseline: same machine, one core, no TFlux overheads.

        *exact_memory* selects the exact cache model so the baseline is
        priced by the same memory system as a matching parallel run.
        """
        return run_sequential_timed(
            program, self.machine, exact_memory=exact_memory, tracer=tracer
        )

    # -- the paper's measurement protocol ------------------------------------------------
    def evaluate(
        self,
        bench: Benchmark,
        size: ProblemSize,
        nkernels: int,
        unrolls: "Sequence[int] | str" = (1, 2, 4, 8, 16, 32, 64),
        verify: bool = True,
        max_threads: int = 4096,
    ) -> Evaluation:
        """Speedup for one cell, taking the best over *unrolls* for the
        parallel version (paper §5).

        The measured quantity is the parallelised region (gettimeofday
        around the parallel section); the baseline is the *original*
        sequential program (unroll=1) on the same machine, simulated at
        most once per (platform configuration, bench, size) cell and
        memoised across calls — see
        :mod:`repro.exec.pool`.  The unroll search runs through
        :mod:`repro.exec` — set ``TFLUX_JOBS`` to parallelise it and
        ``TFLUX_CACHE_DIR`` to memoise results on disk.  Pass
        ``unrolls="auto"`` for the adaptive search: coarse probes plus
        local refinement over the standard ladder, same winner as the
        full grid in fewer simulations.
        """
        from repro.exec import EvalRequest, evaluate_many

        request = EvalRequest(
            platform=self,
            bench=bench.name,
            size=size,
            nkernels=nkernels,
            unrolls="auto" if unrolls == "auto" else tuple(unrolls),
            verify=verify,
            max_threads=max_threads,
        )
        return evaluate_many([request])[0]
