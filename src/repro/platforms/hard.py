"""TFluxHard: the Simics-class simulated CMP with a hardware TSU."""

from __future__ import annotations

from typing import Callable

from repro.platforms.base import Platform
from repro.sim.engine import Engine
from repro.sim.machine import BAGLE_27, MachineConfig
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup
from repro.tsu.hardware import HardwareTSUAdapter

__all__ = ["TFluxHard"]


class TFluxHard(Platform):
    """27 compute kernels on the Bagle CMP; TSU Group as a memory-mapped
    hardware device (paper §4.1, §6.1)."""

    target = "S"

    def __init__(
        self,
        machine: MachineConfig = BAGLE_27,
        tsu_processing_cycles: int = 4,
    ) -> None:
        super().__init__(machine, name="tfluxhard")
        # §6.1.1: "Each access to the TSU is penalized with 4 additional
        # cycles compared to a normal L1 cache access"; the ablation
        # sweeps this 1 -> 128.
        self.tsu_processing_cycles = tsu_processing_cycles

    def adapter_factory(self) -> Callable[[Engine, TSUGroup], ProtocolAdapter]:
        lat = self.tsu_processing_cycles
        l1 = self.machine.l1.read_latency
        return lambda engine, tsu: HardwareTSUAdapter(
            engine, tsu, tsu_processing_cycles=lat, l1_access_cycles=l1
        )
