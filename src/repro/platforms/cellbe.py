"""TFluxCell: the PS3 Cell/BE heterogeneous platform."""

from __future__ import annotations

from typing import Callable

from repro.cell.adapter import CellCosts, CellTSUAdapter
from repro.platforms.base import Platform
from repro.sim.engine import Engine
from repro.sim.machine import CELL_PS3, MachineConfig
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup

__all__ = ["TFluxCell"]


class TFluxCell(Platform):
    """Kernels on up to 6 SPEs; the TSU Emulator on the PPE (§4.3, §6.3).

    DThread memory behaviour is priced as explicit DMA between main
    memory and the 256 KB Local Stores instead of coherent caches, and
    DThreads whose resident working set exceeds the Local Store raise
    :class:`~repro.cell.localstore.CellLocalStoreError`.
    """

    target = "C"

    def __init__(
        self,
        machine: MachineConfig = CELL_PS3,
        costs: CellCosts = CellCosts(),
    ) -> None:
        if machine.cell is None:
            raise ValueError("TFluxCell requires a machine with Cell parameters")
        super().__init__(machine, name="tfluxcell")
        self.costs = costs

    @property
    def max_kernels(self) -> int:
        return self.machine.cell.n_spes

    def adapter_factory(self) -> Callable[[Engine, TSUGroup], ProtocolAdapter]:
        params = self.machine.cell
        costs = self.costs
        return lambda engine, tsu: CellTSUAdapter(
            engine, tsu, params=params, costs=costs
        )
