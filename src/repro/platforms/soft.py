"""TFluxSoft: commodity SMP with a software TSU emulator."""

from __future__ import annotations

from typing import Callable

from repro.platforms.base import Platform
from repro.sim.engine import Engine
from repro.sim.machine import MachineConfig, XEON_8
from repro.tsu.base import ProtocolAdapter
from repro.tsu.group import TSUGroup
from repro.tsu.software import SoftTSUCosts, SoftwareTSUAdapter

__all__ = ["TFluxSoft"]


class TFluxSoft(Platform):
    """Up to 6 compute kernels on the 8-core Xeon box: one core is
    reserved for the OS (§5) and one runs the TSU Emulator (§4.2,
    Figure 4)."""

    target = "N"

    def __init__(
        self,
        machine: MachineConfig = XEON_8,
        costs: SoftTSUCosts = SoftTSUCosts(),
    ) -> None:
        super().__init__(machine, name="tfluxsoft")
        self.costs = costs

    @property
    def max_kernels(self) -> int:
        # OS core + TSU Emulator core are unavailable to Kernels.
        return self.machine.ncores - self.machine.os_reserved_cores - 1

    def adapter_factory(self) -> Callable[[Engine, TSUGroup], ProtocolAdapter]:
        costs = self.costs
        return lambda engine, tsu: SoftwareTSUAdapter(engine, tsu, costs=costs)
