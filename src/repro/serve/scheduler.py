"""Fair multi-tenant admission + dispatch queue for the job frontier.

The server admits batches of jobs from many tenants but owns one worker
pool; *which* queued job runs next decides whether one tenant's 500-cell
grid can starve another's single job.  This scheduler makes that
decision deterministically — no wall clock, no randomness — so fairness
is a unit-testable property:

* **Per-tenant FIFO.**  Each tenant has its own queue; within a tenant,
  jobs dispatch in submission order.
* **Round-robin between tenants.**  At equal priority, successive
  :meth:`FairScheduler.next` calls rotate through tenants in first-seen
  order, one job each — an interleaved drain, never batch-at-a-time.
* **Priority with aging.**  A tenant's head job carries the batch's
  base priority (higher dispatches sooner).  Every dispatch that passes
  a waiting tenant over ages it: after ``aging_rounds`` skips its
  effective priority rises by one, so a low-priority tenant under a
  stream of high-priority traffic is delayed proportionally, never
  starved.
* **Bounded queues.**  Admission is all-or-nothing per batch against a
  per-tenant and a global depth bound (:meth:`FairScheduler.can_accept`)
  — the server replies ``overloaded`` instead of buffering without
  limit.

Aging is counted in *dispatch decisions*, not seconds: the scheduler is
a pure state machine, so the fairness tests replay exact sequences.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

__all__ = ["FairScheduler"]


class FairScheduler:
    """Deterministic per-tenant fair queue with priority aging."""

    def __init__(
        self,
        max_queued_per_tenant: int = 256,
        max_queued_total: int = 1024,
        aging_rounds: int = 4,
    ) -> None:
        if max_queued_per_tenant < 1 or max_queued_total < 1:
            raise ValueError("queue bounds must be >= 1")
        if aging_rounds < 1:
            raise ValueError("aging_rounds must be >= 1")
        self.max_queued_per_tenant = max_queued_per_tenant
        self.max_queued_total = max_queued_total
        self.aging_rounds = aging_rounds
        self._queues: dict[str, deque[tuple[int, Any]]] = {}
        self._rotation: list[str] = []  # tenants in first-seen order
        self._skipped: dict[str, int] = {}  # dispatches that passed us over
        self._last = -1  # rotation index of the last dispatched tenant
        self._total = 0

    # -- admission ------------------------------------------------------------
    def can_accept(self, tenant: str, njobs: int) -> bool:
        """Would a batch of *njobs* from *tenant* fit the bounds?"""
        queued = len(self._queues.get(tenant, ()))
        return (
            queued + njobs <= self.max_queued_per_tenant
            and self._total + njobs <= self.max_queued_total
        )

    def submit(self, tenant: str, item: Any, priority: int = 0) -> bool:
        """Queue one job; ``False`` means the bounds refuse it.

        Batch admission should check :meth:`can_accept` first so a batch
        is admitted whole or not at all.
        """
        if not self.can_accept(tenant, 1):
            return False
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
            self._rotation.append(tenant)
            self._skipped[tenant] = 0
        q.append((priority, item))
        self._total += 1
        return True

    # -- dispatch -------------------------------------------------------------
    def next(self) -> Optional[tuple[str, Any]]:
        """The next ``(tenant, item)`` to run, or ``None`` when idle.

        Picks the pending tenant whose head job has the highest
        effective priority ``base + skipped // aging_rounds``; ties go
        to the first candidate in rotation order starting *after* the
        last dispatched tenant (that scan origin is what realises
        round-robin).  Every other pending tenant ages by one skip.
        """
        if self._total == 0:
            return None
        names = self._rotation
        start = (self._last + 1) % len(names)
        best_i = -1
        best_eff = None
        for off in range(len(names)):
            i = (start + off) % len(names)
            q = self._queues[names[i]]
            if not q:
                continue
            eff = q[0][0] + self._skipped[names[i]] // self.aging_rounds
            if best_eff is None or eff > best_eff:
                best_i, best_eff = i, eff
        assert best_i >= 0
        tenant = names[best_i]
        _, item = self._queues[tenant].popleft()
        self._total -= 1
        self._skipped[tenant] = 0
        for name, q in self._queues.items():
            if q and name != tenant:
                self._skipped[name] += 1
        self._last = best_i
        return tenant, item

    # -- introspection --------------------------------------------------------
    @property
    def pending_total(self) -> int:
        return self._total

    def pending(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def tenants(self) -> list[str]:
        """Every tenant ever admitted, in rotation order."""
        return list(self._rotation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        depths = {t: len(q) for t, q in self._queues.items() if q}
        return f"FairScheduler(pending={self._total}, queues={depths})"
