"""repro.serve — simulation-as-a-service on top of :mod:`repro.exec`.

The ROADMAP's "serve heavy traffic" direction made concrete: a
long-running stdlib-``asyncio`` server that accepts batches of job
specs from many tenants over a line-delimited-JSON socket protocol and
streams schema-versioned results back as each cell finishes.  The
performance core is three layers above the process pool:

* **single-flight dedup** (:mod:`repro.serve.lru`) — identical in-flight
  jobs coalesce onto one running simulation, with a bounded in-memory
  LRU of recent outcomes above the on-disk
  :class:`~repro.exec.cache.ResultCache`;
* **fair scheduling** (:mod:`repro.serve.scheduler`) — per-tenant
  round-robin with priority aging, deterministic and wall-clock-free;
* **admission control** (:mod:`repro.serve.server`) — bounded queues, a
  max-in-flight bound on unique simulations, and explicit ``overloaded``
  replies instead of unbounded buffering, all on one persistent
  ``ProcessPoolExecutor``.

See ``docs/serving.md`` for the protocol, the fairness/backpressure
semantics, and the ``TFLUX_SERVE_*`` knobs;
``benchmarks/bench_serve_throughput.py`` measures sustained jobs/sec at
1/4/16 concurrent clients.
"""

from repro.serve.client import BatchResult, ServeClient
from repro.serve.lru import MISS, LRUCache, SingleFlightLRU
from repro.serve.protocol import (
    WIRE_VERSION,
    WireError,
    job_from_wire,
    job_to_wire,
    outcome_from_wire,
    outcome_to_wire,
)
from repro.serve.scheduler import FairScheduler
from repro.serve.server import (
    ServeConfig,
    ServerHandle,
    TFluxServer,
    serve_in_thread,
)

__all__ = [
    "BatchResult",
    "ServeClient",
    "MISS",
    "LRUCache",
    "SingleFlightLRU",
    "WIRE_VERSION",
    "WireError",
    "job_from_wire",
    "job_to_wire",
    "outcome_from_wire",
    "outcome_to_wire",
    "FairScheduler",
    "ServeConfig",
    "ServerHandle",
    "TFluxServer",
    "serve_in_thread",
]
