"""Blocking client for ``tflux-serve`` (sockets + NDJSON, no asyncio).

The client side of the protocol is deliberately plain: a socket, a
buffered reader, one JSON object per line.  :class:`ServeClient` drives
one connection — multiple concurrent tenants are multiple clients
(threads or processes), which is exactly how the throughput benchmark
and the CI smoke use it.

Results stream: ``submit`` invokes ``on_result`` the moment each cell's
``result`` message arrives (completion order), then returns the batch
reassembled in submission order.
"""

from __future__ import annotations

import json
import socket
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.exec.pool import JobOutcome
from repro.serve.protocol import outcome_from_wire

__all__ = ["BatchResult", "ServeClient"]


@dataclass
class BatchResult:
    """What one submit produced.

    ``status`` is ``"done"`` (every job resolved), ``"overloaded"``
    (admission refused the whole batch — nothing ran) or ``"error"``
    (the batch was malformed).  ``outcomes`` is in submission order;
    a job that failed server-side leaves ``None`` there and a
    ``(fully-qualified exception, message)`` tuple in ``errors``.
    ``wire`` keeps the raw outcome JSON by index for bit-identical
    comparisons across clients.
    """

    batch_id: str
    status: str
    outcomes: list[Optional[JobOutcome]] = field(default_factory=list)
    errors: dict[int, tuple[str, str]] = field(default_factory=dict)
    wire: dict[int, dict[str, Any]] = field(default_factory=dict)
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "done" and not self.errors


class ServeClient:
    """One tenant's connection to a running ``tflux-serve``."""

    def __init__(
        self,
        address: "tuple[str, int] | str",
        tenant: str = "",
        timeout: Optional[float] = 300.0,
    ) -> None:
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.connect(address)
        else:
            self._sock = socket.create_connection(address)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self.welcome = self._read()
        if self.welcome.get("type") != "welcome":
            raise ConnectionError(f"unexpected greeting: {self.welcome!r}")
        self.tenant = tenant
        if tenant:
            self._write({"type": "hello", "tenant": tenant})

    # -- protocol I/O ---------------------------------------------------------
    def _write(self, message: dict[str, Any]) -> None:
        self._file.write(
            json.dumps(message, separators=(",", ":")).encode() + b"\n"
        )
        self._file.flush()

    def _read(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- API ------------------------------------------------------------------
    def submit(
        self,
        jobs: list[dict[str, Any]],
        batch_id: Optional[str] = None,
        priority: int = 0,
        on_result: Optional[Callable[[int, JobOutcome], None]] = None,
    ) -> BatchResult:
        """Submit one batch and stream its results until ``batch_done``.

        *jobs* are wire job dicts (see :func:`repro.serve.protocol.job_to_wire`).
        Blocks until the batch fully resolves (or is refused); every
        intermediate ``result`` fires ``on_result(index, outcome)`` as
        it arrives, which is how callers observe the incremental stream.
        """
        batch_id = batch_id or uuid.uuid4().hex[:12]
        self._write(
            {"type": "submit", "batch_id": batch_id, "jobs": jobs,
             "priority": priority}
        )
        result = BatchResult(batch_id=batch_id, status="pending")
        result.outcomes = [None] * len(jobs)
        while True:
            message = self._read()
            if message.get("batch_id") not in (None, batch_id):
                continue  # stale stream from a previous batch
            mtype = message["type"]
            if mtype == "accepted":
                continue
            if mtype == "overloaded":
                result.status = "overloaded"
                result.message = (
                    f"queued {message.get('queued')}/{message.get('limit')}"
                )
                return result
            if mtype == "error":
                result.status = "error"
                result.message = message.get("message", "")
                return result
            if mtype == "result":
                index = message["index"]
                outcome = outcome_from_wire(message["outcome"])
                result.wire[index] = message["outcome"]
                result.outcomes[index] = outcome
                if on_result is not None:
                    on_result(index, outcome)
            elif mtype == "job_error":
                result.errors[message["index"]] = tuple(message["error"])
            elif mtype == "batch_done":
                result.status = "done"
                return result

    def stats(self) -> dict[str, Any]:
        """The server's counter/LRU/queue snapshot."""
        self._write({"type": "stats"})
        while True:
            message = self._read()
            if message["type"] == "stats":
                return message

    def close(self) -> None:
        try:
            self._write({"type": "bye"})
        except (OSError, ValueError):
            pass
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
