"""``tflux-serve``: the long-running multi-tenant simulation server.

Architecture (one asyncio loop + one persistent process pool)::

    client conns ──admission──▶ FairScheduler ──dispatch──▶ SingleFlightLRU
      (NDJSON)    (bounded,      (per-tenant RR             │ hit ──────▶ stream
                   overloaded     + priority aging)         │ coalesce ─▶ stream
                   reply)                                   ▼ miss (leader)
                                                     disk ResultCache
                                                            ▼ miss
                                                 ProcessPoolExecutor.run_job

* **Admission** is all-or-nothing per batch against the scheduler's
  bounds; a refused batch gets an explicit ``overloaded`` reply instead
  of unbounded buffering.
* **Dispatch** pulls from the scheduler only while fewer than
  ``max_inflight`` *unique* simulations are running — LRU hits and
  coalesced duplicates consume no slot.  Classification (LRU → in-flight
  → disk → pool) is synchronous on the loop, so the in-flight bound is
  exact.
* **The pool is persistent**: one ``ProcessPoolExecutor`` created (and
  warmed) at :meth:`TFluxServer.start`, reused for every request —
  worker start-up is paid once per server, not once per batch
  (:func:`repro.exec.pool.run_jobs` spins a pool per call; the server
  explicitly does not).
* **Results stream**: each finished cell is written to its tenant the
  moment it resolves (``result`` messages in completion order, then
  ``batch_done``) — no wait-for-whole-batch.
* **Everything is counted** through :mod:`repro.obs`:
  ``serve.admitted/rejected/deduped/lru_hits/evictions/executed/completed``
  globally, the same set per tenant under ``serve.tenant.<name>.*``, and
  the disk cache's ``exec.cache.hits/misses/stores`` merged into every
  stats reply so in-memory and on-disk effectiveness are comparable in
  one place.

Dedup, LRU and streaming change *when* results arrive, never *what*
they are: an outcome is computed by the same :func:`repro.exec.pool.run_job`
a direct sweep uses, and the differential tests pin the streamed records
bit-identical to a pool run.

Knobs (environment, overridable per :class:`ServeConfig` field)::

    TFLUX_SERVE_WORKERS       worker processes          (default 1, 'auto' = cores)
    TFLUX_SERVE_LRU           in-memory LRU capacity    (default 512 outcomes)
    TFLUX_SERVE_MAX_INFLIGHT  unique running sims       (default 2x workers)
    TFLUX_SERVE_MAX_QUEUED    queued jobs per tenant    (default 256)
    TFLUX_SERVE_QUEUE_TOTAL   queued jobs, all tenants  (default 1024)
    TFLUX_SERVE_AGING         skips per +1 priority     (default 4)

plus ``TFLUX_CACHE_DIR`` for the on-disk layer, exactly as in
:mod:`repro.exec`.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import re
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional

from repro.exec.cache import ResultCache, cache_from_env, spec_digest
from repro.exec.pool import JobSpec, pool_context, run_job
from repro.obs import Counters
from repro.serve.lru import MISS, SingleFlightLRU
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    WIRE_VERSION,
    WireError,
    decode,
    encode,
    job_from_wire,
    outcome_to_wire,
)
from repro.serve.scheduler import FairScheduler

__all__ = ["ServeConfig", "TFluxServer", "ServerHandle", "serve_in_thread"]

#: Sentinel: "resolve the disk cache from the environment".
_ENV_CACHE = object()


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


@dataclass
class ServeConfig:
    """Server sizing; every field has a ``TFLUX_SERVE_*`` spelling."""

    workers: int = 1
    lru_capacity: int = 512
    #: Unique simulations allowed to run at once; 0 = ``2 * workers``
    #: (keeps the pool fed while results stream out).
    max_inflight: int = 0
    max_queued_per_tenant: int = 256
    max_queued_total: int = 1024
    aging_rounds: int = 4

    @classmethod
    def from_env(cls, **overrides: int) -> "ServeConfig":
        raw_workers = os.environ.get("TFLUX_SERVE_WORKERS", "").strip().lower()
        if raw_workers in ("auto", "max"):
            workers = os.cpu_count() or 1
        elif raw_workers:
            workers = max(1, int(raw_workers))
        else:
            workers = 1
        config = cls(
            workers=workers,
            lru_capacity=_env_int("TFLUX_SERVE_LRU", 512),
            max_inflight=_env_int("TFLUX_SERVE_MAX_INFLIGHT", 0),
            max_queued_per_tenant=_env_int("TFLUX_SERVE_MAX_QUEUED", 256),
            max_queued_total=_env_int("TFLUX_SERVE_QUEUE_TOTAL", 1024),
            aging_rounds=_env_int("TFLUX_SERVE_AGING", 4),
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config

    @property
    def effective_inflight(self) -> int:
        return self.max_inflight or 2 * self.workers


def _counter_key(tenant: str) -> str:
    """Tenant name as a counter-safe identifier (``repro.obs`` names are
    dotted identifiers; arbitrary tenant strings are sanitised)."""
    key = re.sub(r"\W", "_", tenant) or "anon"
    return key if key.isidentifier() else f"t_{key}"


class _Batch:
    """Bookkeeping for one admitted submit message."""

    __slots__ = ("conn", "batch_id", "remaining")

    def __init__(self, conn: "_Connection", batch_id: str, njobs: int) -> None:
        self.conn = conn
        self.batch_id = batch_id
        self.remaining = njobs


class _Job:
    """One admitted job: where it came from and what to run."""

    __slots__ = ("batch", "index", "spec", "digest")

    def __init__(self, batch: _Batch, index: int, spec: JobSpec, digest: str) -> None:
        self.batch = batch
        self.index = index
        self.spec = spec
        self.digest = digest


class _Connection:
    """Per-client state: identity plus an outgoing message queue.

    A dedicated writer task drains the queue so slow readers exert
    backpressure on their own stream without stalling the dispatcher.
    """

    _ids = itertools.count(1)

    def __init__(self) -> None:
        self.tenant = f"anon{next(self._ids)}"
        self.outq: "asyncio.Queue[Optional[dict[str, Any]]]" = asyncio.Queue()
        self.closed = False

    def send(self, message: dict[str, Any]) -> None:
        if not self.closed:
            self.outq.put_nowait(message)


class TFluxServer:
    """The asyncio simulation server (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        cache: "Optional[ResultCache] | object" = _ENV_CACHE,
    ) -> None:
        self.config = config or ServeConfig.from_env()
        self.cache = cache_from_env() if cache is _ENV_CACHE else cache
        self.counters = Counters()
        self.scheduler = FairScheduler(
            max_queued_per_tenant=self.config.max_queued_per_tenant,
            max_queued_total=self.config.max_queued_total,
            aging_rounds=self.config.aging_rounds,
        )
        self.lru = SingleFlightLRU(self.config.lru_capacity)
        #: Simulations actually handed to the pool (the single-flight
        #: acceptance number: equals unique specs under a dedup herd).
        self.executed = 0
        self._batches = itertools.count(1)
        self._wake = asyncio.Event()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix: Optional[str] = None,
    ) -> "TFluxServer":
        """Bind, warm the worker pool, and start dispatching."""
        self._executor = ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=pool_context()
        )
        # Warm-up: fork every worker now, so the first request pays no
        # start-up and later forks don't race a busy loop thread.
        self._executor.submit(os.getpid).result()
        if unix is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=unix, limit=MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=host, port=port, limit=MAX_LINE_BYTES
            )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    @property
    def address(self) -> Any:
        """The bound socket address (``(host, port)`` for TCP)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, cancel in-flight work, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(
            *([self._dispatcher] if self._dispatcher else []),
            *self._tasks,
            return_exceptions=True,
        )
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connection handling ---------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection()
        conn.send({"type": "welcome", "server": "tflux-serve", "wire": WIRE_VERSION})
        writer_task = asyncio.create_task(self._write_loop(conn, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    conn.send({"type": "error", "message": "message line too long"})
                    break
                if not line:
                    break
                try:
                    message = decode(line)
                except WireError as exc:
                    conn.send({"type": "error", "message": str(exc)})
                    continue
                mtype = message["type"]
                if mtype == "hello":
                    conn.tenant = str(message.get("tenant") or conn.tenant)
                elif mtype == "submit":
                    self._admit(conn, message)
                elif mtype == "stats":
                    conn.send(self.stats_message())
                elif mtype == "bye":
                    break
                else:
                    conn.send(
                        {"type": "error", "message": f"unknown message type {mtype!r}"}
                    )
        finally:
            conn.closed = True
            conn.outq.put_nowait(None)  # unblock the writer for shutdown
            try:
                await writer_task
            except asyncio.CancelledError:  # pragma: no cover - teardown race
                pass
            writer.close()

    async def _write_loop(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                message = await conn.outq.get()
                if message is None:
                    break
                writer.write(encode(message))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            conn.closed = True

    # -- admission -------------------------------------------------------------
    def _admit(self, conn: _Connection, message: dict[str, Any]) -> None:
        batch_id = str(message.get("batch_id") or f"batch{next(self._batches)}")
        jobs_wire = message.get("jobs")
        if not isinstance(jobs_wire, list) or not jobs_wire:
            conn.send(
                {"type": "error", "batch_id": batch_id,
                 "message": "submit needs a non-empty 'jobs' list"}
            )
            return
        try:
            priority = int(message.get("priority", 0))
            specs = [job_from_wire(job) for job in jobs_wire]
        except (WireError, TypeError, ValueError) as exc:
            conn.send({"type": "error", "batch_id": batch_id, "message": str(exc)})
            return
        tenant_key = _counter_key(conn.tenant)
        if not self.scheduler.can_accept(conn.tenant, len(specs)):
            self.counters.inc("serve.rejected", len(specs))
            self.counters.inc(f"serve.tenant.{tenant_key}.rejected", len(specs))
            conn.send(
                {
                    "type": "overloaded",
                    "batch_id": batch_id,
                    "queued": self.scheduler.pending_total,
                    "limit": self.scheduler.max_queued_total,
                    "tenant_queued": self.scheduler.pending(conn.tenant),
                    "tenant_limit": self.scheduler.max_queued_per_tenant,
                }
            )
            return
        batch = _Batch(conn, batch_id, len(specs))
        for index, spec in enumerate(specs):
            job = _Job(batch, index, spec, spec_digest(spec))
            admitted = self.scheduler.submit(conn.tenant, job, priority)
            assert admitted  # can_accept covered the whole batch
        self.counters.inc("serve.admitted", len(specs))
        self.counters.inc(f"serve.tenant.{tenant_key}.admitted", len(specs))
        conn.send({"type": "accepted", "batch_id": batch_id, "jobs": len(specs)})
        self._wake.set()

    # -- dispatch --------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            self._pump()

    def _pump(self) -> None:
        """Drain the scheduler while unique-simulation slots are free.

        Classification is synchronous, so the in-flight bound is exact
        and hits/coalesces never occupy a slot.
        """
        while self.lru.inflight < self.config.effective_inflight:
            entry = self.scheduler.next()
            if entry is None:
                return
            tenant, job = entry
            tenant_key = _counter_key(tenant)
            cached = self.lru.lookup(job.digest)
            if cached is not MISS:
                self.counters.inc("serve.lru_hits")
                self.counters.inc(f"serve.tenant.{tenant_key}.lru_hits")
                self._deliver(tenant_key, job, cached, None)
                continue
            fut, leader = self.lru.claim(job.digest)
            fut.add_done_callback(
                lambda f, tenant_key=tenant_key, job=job: self._deliver(
                    tenant_key, job, f.result() if f.exception() is None else None,
                    f.exception(),
                )
            )
            if leader:
                task = asyncio.create_task(self._compute(job.digest, job.spec))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            else:
                self.counters.inc("serve.deduped")
                self.counters.inc(f"serve.tenant.{tenant_key}.deduped")

    async def _compute(self, digest: str, spec: JobSpec) -> None:
        """Leader path: disk cache, else the persistent pool; resolve or
        reject the flight (failures are never cached)."""
        try:
            outcome = self.cache.get(digest) if self.cache is not None else None
            if outcome is None:
                loop = asyncio.get_running_loop()
                outcome = await loop.run_in_executor(self._executor, run_job, spec)
                self.executed += 1
                self.counters.inc("serve.executed")
                if self.cache is not None:
                    self.cache.put(digest, outcome)
        except asyncio.CancelledError:
            self.lru.reject(digest, ConnectionAbortedError("server shutting down"))
            raise
        except Exception as exc:
            self.lru.reject(digest, exc)
        else:
            self.lru.resolve(digest, outcome)
        finally:
            self._wake.set()

    # -- delivery --------------------------------------------------------------
    def _deliver(
        self,
        tenant_key: str,
        job: _Job,
        outcome: Any,
        error: Optional[BaseException],
    ) -> None:
        batch = job.batch
        if error is not None:
            qualname = f"{type(error).__module__}.{type(error).__qualname__}"
            batch.conn.send(
                {
                    "type": "job_error",
                    "batch_id": batch.batch_id,
                    "index": job.index,
                    "error": [qualname, str(error)],
                }
            )
        else:
            batch.conn.send(
                {
                    "type": "result",
                    "batch_id": batch.batch_id,
                    "index": job.index,
                    "outcome": outcome_to_wire(outcome),
                }
            )
        self.counters.inc("serve.completed")
        self.counters.inc(f"serve.tenant.{tenant_key}.completed")
        batch.remaining -= 1
        if batch.remaining == 0:
            batch.conn.send({"type": "batch_done", "batch_id": batch.batch_id})

    # -- observability ---------------------------------------------------------
    def stats_counters(self) -> Counters:
        """Cumulative counters + point-in-time gauges, one registry.

        Includes the LRU's ``serve.lru_*``/``serve.evictions`` and the
        disk cache's ``exec.cache.*`` so in-memory dedup and on-disk
        memoisation are comparable side by side.
        """
        snapshot = Counters()
        snapshot.merge(self.counters)
        lru = self.lru.stats()
        snapshot.inc("serve.evictions", lru["evictions"])
        snapshot.inc("serve.lru_size", lru["size"])
        snapshot.inc("serve.queue_depth", self.scheduler.pending_total)
        snapshot.inc("serve.inflight", lru["inflight"])
        if self.cache is not None:
            self.cache.publish_counters(snapshot)
        return snapshot

    def stats_message(self) -> dict[str, Any]:
        return {
            "type": "stats",
            "counters": self.stats_counters().as_dict(),
            "executed": self.executed,
            "lru": self.lru.stats(),
            "queue_depth": self.scheduler.pending_total,
            "tenants": self.scheduler.tenants(),
            "workers": self.config.workers,
        }


# -- embedding helper ----------------------------------------------------------

class ServerHandle:
    """A server running on its own thread/loop (tests, benchmarks)."""

    def __init__(self, server: TFluxServer, address: Any,
                 loop: asyncio.AbstractEventLoop, thread: threading.Thread) -> None:
        self.server = server
        self.address = address
        self._loop = loop
        self._thread = thread

    def stop(self, timeout: float = 10.0) -> None:
        async def _shutdown() -> None:
            await self.server.aclose()
            asyncio.get_running_loop().stop()

        self._loop.call_soon_threadsafe(asyncio.ensure_future, _shutdown())
        self._thread.join(timeout)


def serve_in_thread(
    config: Optional[ServeConfig] = None,
    cache: "Optional[ResultCache] | object" = _ENV_CACHE,
    unix: Optional[str] = None,
) -> ServerHandle:
    """Start a :class:`TFluxServer` on a fresh background event loop.

    Returns once the socket is bound; ``handle.address`` is connectable
    immediately.  Exceptions during start-up re-raise in the caller.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = TFluxServer(config=config, cache=cache)

        async def _start() -> None:
            try:
                await server.start(unix=unix)
                box["server"] = server
                box["address"] = server.address
                box["loop"] = loop
            except BaseException as exc:  # surface bind/pool errors
                box["error"] = exc
                raise
            finally:
                started.set()

        try:
            loop.run_until_complete(_start())
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_main, name="tflux-serve", daemon=True)
    thread.start()
    started.wait()
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["address"], box["loop"], thread)
