"""In-memory LRU + single-flight coalescing for the job frontier.

The serving layer (:mod:`repro.serve.server`) answers most traffic out
of memory: a bounded least-recently-used map of recent
:class:`~repro.exec.pool.JobOutcome`\\ s keyed by
:func:`~repro.exec.cache.spec_digest` sits *above* the on-disk
:class:`~repro.exec.cache.ResultCache`, so a thundering herd of
identical requests costs one simulation and — after the first
completion — zero disk reads.

Two pieces, composable and separately testable:

* :class:`LRUCache` — a thread-safe bounded mapping with strict LRU
  eviction (``get`` refreshes recency) and hit/miss/eviction counters.
* :class:`SingleFlightLRU` — the LRU plus *single-flight* semantics:
  concurrent requests for the same missing key coalesce onto one
  in-flight computation instead of racing duplicates.  The sync
  primitives (:meth:`~SingleFlightLRU.lookup` /
  :meth:`~SingleFlightLRU.claim` / :meth:`~SingleFlightLRU.resolve` /
  :meth:`~SingleFlightLRU.reject`) let the server account for pool
  slots *exactly* (a claim is synchronous, so the dispatcher's
  max-in-flight bound never overshoots); the async convenience
  :meth:`~SingleFlightLRU.get_or_compute` wraps them for embedders and
  the property tests.

Failures are never cached: a rejected flight propagates its exception
to every coalesced waiter and the next request recomputes.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Iterator

__all__ = ["MISS", "LRUCache", "SingleFlightLRU"]

#: Sentinel distinguishing "cached None" from "not cached".
MISS = object()


class LRUCache:
    """Thread-safe bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency, ``put`` inserts/updates at the
    most-recent end and evicts from the least-recent end beyond
    *capacity*.  Counters (``hits``/``misses``/``evictions``) are plain
    ints, published by the owner (the convention of :mod:`repro.obs`).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: Any) -> bool:
        """Non-refreshing membership probe (recency order untouched)."""
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> list[Any]:
        """Keys from least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __iter__(self) -> Iterator[Any]:
        return iter(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache({len(self)}/{self.capacity}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


class SingleFlightLRU:
    """An :class:`LRUCache` whose misses coalesce onto one computation.

    The flight table maps key → ``asyncio.Future``; the *first* claimer
    of a missing key becomes the leader (it must later
    :meth:`resolve` or :meth:`reject` the key), every other claimer gets
    the same future.  All sync methods must be called on the event-loop
    thread; the underlying LRU is additionally thread-safe so read-only
    observers (stats threads, tests) may probe it from outside.
    """

    def __init__(self, capacity: int) -> None:
        self.lru = LRUCache(capacity)
        self._flights: dict[Any, asyncio.Future] = {}
        #: Claims that joined an existing flight instead of launching one.
        self.coalesced = 0
        #: Flights actually launched (leader claims).
        self.launched = 0

    # -- sync primitives (exact accounting for the dispatcher) ---------------
    @property
    def inflight(self) -> int:
        """Number of keys currently being computed."""
        return len(self._flights)

    def lookup(self, key: Any) -> Any:
        """The cached value, or :data:`MISS` (recency refreshed on hit)."""
        return self.lru.get(key, MISS)

    def claim(self, key: Any) -> tuple[asyncio.Future, bool]:
        """Join or open the flight for *key*: ``(future, is_leader)``.

        The leader owns completion; a non-leader must only await.
        """
        fut = self._flights.get(key)
        if fut is not None:
            self.coalesced += 1
            return fut, False
        fut = asyncio.get_running_loop().create_future()
        self._flights[key] = fut
        self.launched += 1
        return fut, True

    def resolve(self, key: Any, value: Any) -> None:
        """Leader completed: cache *value* and wake every waiter."""
        self.lru.put(key, value)
        fut = self._flights.pop(key)
        if not fut.done():
            fut.set_result(value)

    def reject(self, key: Any, exc: BaseException) -> None:
        """Leader failed: propagate to waiters, cache nothing."""
        fut = self._flights.pop(key)
        if not fut.done():
            fut.set_exception(exc)

    # -- async convenience ----------------------------------------------------
    async def get_or_compute(
        self, key: Any, compute: Callable[[], Awaitable[Any]]
    ) -> Any:
        """The value for *key*: LRU hit, coalesced flight, or *compute*.

        N concurrent calls for one missing key run *compute* exactly
        once; the result lands in the LRU and is returned to all N.
        The shared future is shielded so one waiter's cancellation
        cannot kill the flight for the others.
        """
        value = self.lookup(key)
        if value is not MISS:
            return value
        fut, leader = self.claim(key)
        if not leader:
            return await asyncio.shield(fut)
        try:
            value = await compute()
        except BaseException as exc:
            self.reject(key, exc)
            raise
        self.resolve(key, value)
        return value

    def stats(self) -> dict[str, int]:
        """A plain snapshot for stats replies and tests."""
        return {
            "size": len(self.lru),
            "capacity": self.lru.capacity,
            "hits": self.lru.hits,
            "misses": self.lru.misses,
            "evictions": self.lru.evictions,
            "inflight": self.inflight,
            "coalesced": self.coalesced,
            "launched": self.launched,
        }
