"""``tflux-serve`` / ``tflux-submit`` — the serving layer's CLIs.

Examples::

    tflux-serve --port 7077 --workers auto --cache-dir ~/.cache/tflux
    tflux-serve --unix /tmp/tflux.sock --workers 4 --lru 1024

    tflux-submit trapez --connect 127.0.0.1:7077 --kernels 2,4,8 --unroll 2,8
    tflux-submit mmult --unix /tmp/tflux.sock --tenant alice --size small \
        --count 3 --stats --json results.json

Both are also runnable uninstalled::

    python -m repro.serve.cli serve --port 0
    python -m repro.serve.cli submit trapez --connect HOST:PORT

``tflux-serve`` prints ``listening on HOST:PORT`` (or the socket path)
once bound — scripts wait for that line.  ``tflux-submit`` prints one
row per streamed result in arrival order, a summary, and optionally the
server's counter snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import Any, Optional

__all__ = ["main", "main_serve", "main_submit"]


def _address(args: argparse.Namespace) -> "tuple[str, int] | str":
    if args.unix:
        return args.unix
    host, _, port = args.connect.rpartition(":")
    return (host or "127.0.0.1", int(port))


def main_serve(argv: Optional[list[str]] = None) -> int:
    from repro.exec import ENV_CACHE_DIR
    from repro.serve.server import ServeConfig, TFluxServer

    parser = argparse.ArgumentParser(
        prog="tflux-serve",
        description="Run the multi-tenant TFlux simulation server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077, help="0 = any free port")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="listen on a Unix socket instead of TCP")
    parser.add_argument("--workers", default=None,
                        help="worker processes (overrides TFLUX_SERVE_WORKERS; "
                        "'auto' = all cores)")
    parser.add_argument("--lru", type=int, default=None,
                        help="in-memory LRU capacity (outcomes)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="unique simulations in flight (0 = 2x workers)")
    parser.add_argument("--max-queued", type=int, default=None,
                        help="queued jobs per tenant before 'overloaded'")
    parser.add_argument("--queue-total", type=int, default=None,
                        help="queued jobs across all tenants")
    parser.add_argument("--aging", type=int, default=None,
                        help="dispatch skips per +1 effective priority")
    parser.add_argument("--cache-dir", default=None,
                        help=f"on-disk result cache (overrides {ENV_CACHE_DIR})")
    args = parser.parse_args(argv)

    if args.workers is not None:
        os.environ["TFLUX_SERVE_WORKERS"] = str(args.workers)
    if args.cache_dir is not None:
        os.environ[ENV_CACHE_DIR] = os.path.expanduser(args.cache_dir)
    overrides = {
        name: value
        for name, value in (
            ("lru_capacity", args.lru),
            ("max_inflight", args.max_inflight),
            ("max_queued_per_tenant", args.max_queued),
            ("max_queued_total", args.queue_total),
            ("aging_rounds", args.aging),
        )
        if value is not None
    }
    config = ServeConfig.from_env(**overrides)

    async def _run() -> None:
        server = TFluxServer(config=config)
        await server.start(host=args.host, port=args.port, unix=args.unix)
        where = args.unix if args.unix else "%s:%d" % server.address[:2]
        print(f"tflux-serve: listening on {where} "
              f"(workers={config.workers}, lru={config.lru_capacity}, "
              f"inflight={config.effective_inflight})", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("tflux-serve: bye")
    return 0


def main_submit(argv: Optional[list[str]] = None) -> int:
    from repro.serve.client import ServeClient
    from repro.serve.protocol import job_to_wire

    parser = argparse.ArgumentParser(
        prog="tflux-submit",
        description="Submit a job batch to a running tflux-serve",
    )
    parser.add_argument("benchmark")
    parser.add_argument("--connect", default="127.0.0.1:7077", metavar="HOST:PORT")
    parser.add_argument("--unix", default=None, metavar="PATH")
    parser.add_argument("--tenant", default="")
    parser.add_argument("--platform", default="hard",
                        choices=("hard", "soft", "cell", "dist"))
    parser.add_argument("--size", default="small",
                        choices=("small", "medium", "large"))
    parser.add_argument("--kernels", default="0",
                        help="comma-separated kernel counts (0 = platform max)")
    parser.add_argument("--unroll", default="1",
                        help="comma-separated unroll factors")
    parser.add_argument("--count", type=int, default=1,
                        help="repeat the grid N times (dedup/LRU exercise)")
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument("--verify", action="store_true",
                        help="functionally verify each run against the oracle")
    parser.add_argument("--stats", action="store_true",
                        help="print the server's counter snapshot afterwards")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="dump streamed outcomes (wire form) to FILE")
    args = parser.parse_args(argv)

    try:
        kernel_counts = [int(k) for k in args.kernels.split(",")]
        unrolls = [int(u) for u in args.unroll.split(",")]
    except ValueError:
        print("tflux-submit: error: --kernels/--unroll take comma-separated "
              "integers", file=sys.stderr)
        return 2
    jobs = [
        job_to_wire(
            args.benchmark,
            platform=args.platform,
            size=args.size,
            nkernels=nk,
            unroll=u,
            verify=args.verify,
        )
        for _ in range(args.count)
        for nk in kernel_counts
        for u in unrolls
    ]

    try:
        client = ServeClient(_address(args), tenant=args.tenant)
    except (OSError, ConnectionError) as exc:
        print(f"tflux-submit: error: cannot connect: {exc}", file=sys.stderr)
        return 2
    with client:
        arrival: list[int] = []

        def _on_result(index: int, outcome: Any) -> None:
            arrival.append(index)
            label = jobs[index]
            print(f"  [{len(arrival):>3d}/{len(jobs)}] job {index}: "
                  f"nk={label.get('nkernels', 0)} unroll={label.get('unroll', 1)} "
                  f"cycles={outcome.cycles:,d}")

        batch = client.submit(jobs, priority=args.priority, on_result=_on_result)
        if batch.status == "overloaded":
            print(f"tflux-submit: server overloaded ({batch.message}); retry later",
                  file=sys.stderr)
            return 3
        if batch.status == "error":
            print(f"tflux-submit: rejected: {batch.message}", file=sys.stderr)
            return 2
        for index, error in sorted(batch.errors.items()):
            print(f"tflux-submit: job {index} failed: {error[0]}: {error[1]}",
                  file=sys.stderr)
        print(f"{args.benchmark.upper()}: {len(jobs) - len(batch.errors)}/"
              f"{len(jobs)} jobs resolved (batch {batch.batch_id})")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(
                    {"batch_id": batch.batch_id, "jobs": jobs,
                     "outcomes": [batch.wire.get(i) for i in range(len(jobs))]},
                    fh, indent=1, sort_keys=True,
                )
            print(f"wrote {args.json}")
        if args.stats:
            stats = client.stats()
            for name, value in sorted(stats["counters"].items()):
                print(f"  {name} = {value}")
        return 1 if batch.errors else 0


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.serve.cli {serve,submit} ...`` dispatcher."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("serve", "submit"):
        print("usage: python -m repro.serve.cli {serve,submit} [options]",
              file=sys.stderr)
        return 2
    return (main_serve if argv[0] == "serve" else main_submit)(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
