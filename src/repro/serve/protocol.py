"""The line-delimited-JSON wire protocol of ``tflux-serve``.

One message per line, UTF-8 JSON, newline-terminated — readable with a
telnet session and parseable from any language.  The full message
catalogue (and the fairness/backpressure semantics behind it) is
documented in ``docs/serving.md``; the shapes in brief:

Client → server::

    {"type": "hello",  "tenant": "alice"}
    {"type": "submit", "batch_id": "b1", "priority": 0, "jobs": [JOB, ...]}
    {"type": "stats"}
    {"type": "bye"}

Server → client::

    {"type": "welcome",    "server": "tflux-serve", "wire": 1}
    {"type": "accepted",   "batch_id": "b1", "jobs": N}
    {"type": "overloaded", "batch_id": "b1", "queued": n, "limit": m}
    {"type": "result",     "batch_id": "b1", "index": i, "outcome": OUTCOME}
    {"type": "job_error",  "batch_id": "b1", "index": i, "error": [cls, msg]}
    {"type": "batch_done", "batch_id": "b1"}
    {"type": "stats",      "counters": {...}, ...}
    {"type": "error",      "message": "..."}

``JOB`` is a declarative job description (benchmark, platform, size
label, kernel count, unroll, ...) that the server turns into a
:class:`~repro.exec.pool.JobSpec` via the benchmark/platform registries
— a program object never crosses the wire, preserving the single-run
invariant exactly as the process pool does.  ``OUTCOME`` is the JSON
form of a :class:`~repro.exec.pool.JobOutcome` whose ``record`` is
``RunRecord.to_json_dict()`` — the schema-versioned telemetry payload,
bit-identical round-tripped, never program state.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exec.pool import JobOutcome, JobSpec

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "encode",
    "decode",
    "job_from_wire",
    "job_to_wire",
    "outcome_from_wire",
    "outcome_to_wire",
]

#: Bump on incompatible message-shape changes (advertised in ``welcome``).
WIRE_VERSION = 1

#: Upper bound on one message line (a large batch or a span-carrying
#: outcome is far below this; a runaway line is a protocol error).
MAX_LINE_BYTES = 16 * 1024 * 1024


class WireError(ValueError):
    """A message that cannot be decoded into a valid request."""


def encode(message: dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode(line: bytes) -> dict[str, Any]:
    """Parse one protocol line into a message dict."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireError(f"bad JSON: {exc}") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise WireError("message must be an object with a string 'type'")
    return message


# -- job descriptions ----------------------------------------------------------

_JOB_DEFAULTS = {
    "platform": "hard",
    "size": "small",
    "nkernels": 0,  # 0 = platform max
    "unroll": 1,
    "max_threads": 4096,
    "verify": False,
    "mode": "execute",
    "tsu_capacity": None,
    "exact_memory": False,
    "allow_stealing": False,
    "collect_spans": False,
    "capture_errors": False,
    "check": "",
    # dist-only extras
    "nodes": 2,
    "topology": "mesh",
    "cluster": 0,
}


def _build_platform(wire: dict[str, Any]):
    from repro.net.topology import FatTree, OversubscribedSpine
    from repro.platforms import TFluxCell, TFluxDist, TFluxHard, TFluxSoft

    name = wire.get("platform", _JOB_DEFAULTS["platform"])
    simple = {"hard": TFluxHard, "soft": TFluxSoft, "cell": TFluxCell}
    if name in simple:
        return simple[name]()
    if name != "dist":
        raise WireError(f"unknown platform {name!r}")
    topologies = {
        "mesh": None,
        "fattree": FatTree(pod_size=8),
        "spine": OversubscribedSpine(pod_size=8),
    }
    topology = wire.get("topology", "mesh")
    if topology not in topologies:
        raise WireError(f"unknown topology {topology!r}")
    try:
        return TFluxDist(
            nnodes=int(wire.get("nodes", _JOB_DEFAULTS["nodes"])),
            topology=topologies[topology],
            cluster_size=int(wire.get("cluster", 0)) or None,
        )
    except ValueError as exc:  # DirectoryCapacityError included
        raise WireError(str(exc)) from None


def job_from_wire(wire: dict[str, Any]) -> JobSpec:
    """Turn a declarative wire job into a picklable :class:`JobSpec`.

    Raises :class:`WireError` on any unknown benchmark/platform/size or
    malformed field — admission rejects the batch before anything runs.
    """
    import repro.apps  # benchmark registry

    if not isinstance(wire, dict):
        raise WireError("job must be an object")
    unknown = set(wire) - set(_JOB_DEFAULTS) - {"bench"}
    if unknown:
        raise WireError(f"unknown job fields: {sorted(unknown)}")
    bench = wire.get("bench")
    if bench not in repro.apps.BENCHMARKS:
        raise WireError(f"unknown benchmark {bench!r}")
    platform = _build_platform(wire)
    label = wire.get("size", _JOB_DEFAULTS["size"])
    sizes = repro.apps.problem_sizes(bench, platform.target)
    if label not in sizes:
        raise WireError(f"unknown size {label!r} (have {sorted(sizes)})")
    mode = wire.get("mode", "execute")
    if mode not in ("execute", "sequential", "evaluate"):
        raise WireError(f"unknown mode {mode!r}")
    check = wire.get("check", "")
    if check not in ("", "races"):
        raise WireError(f"unknown check {check!r} (expected '' or 'races')")
    tsu_capacity = wire.get("tsu_capacity")
    try:
        return JobSpec(
            platform=platform,
            bench=bench,
            size=sizes[label],
            nkernels=int(wire.get("nkernels", 0)) or platform.max_kernels,
            unroll=int(wire.get("unroll", 1)),
            max_threads=int(wire.get("max_threads", _JOB_DEFAULTS["max_threads"])),
            verify=bool(wire.get("verify", False)),
            mode=mode,
            tsu_capacity=None if tsu_capacity is None else int(tsu_capacity),
            exact_memory=bool(wire.get("exact_memory", False)),
            allow_stealing=bool(wire.get("allow_stealing", False)),
            collect_spans=bool(wire.get("collect_spans", False)),
            capture_errors=bool(wire.get("capture_errors", False)),
            check=check,
        )
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed job field: {exc}") from None


def job_to_wire(
    bench: str,
    *,
    platform: str = "hard",
    size: str = "small",
    nkernels: int = 0,
    unroll: int = 1,
    **extras: Any,
) -> dict[str, Any]:
    """Client-side helper: a wire job dict with defaults elided."""
    wire: dict[str, Any] = {"bench": bench}
    for key, value in dict(
        platform=platform, size=size, nkernels=nkernels, unroll=unroll, **extras
    ).items():
        if key not in _JOB_DEFAULTS:
            raise WireError(f"unknown job field {key!r}")
        if value != _JOB_DEFAULTS[key]:
            wire[key] = value
    return wire


# -- outcomes ------------------------------------------------------------------

def outcome_to_wire(outcome: JobOutcome) -> dict[str, Any]:
    """The JSON form of a :class:`JobOutcome` (timing only, env-free)."""
    return {
        "cycles": outcome.cycles,
        "region_cycles": outcome.region_cycles,
        "seq_cycles": outcome.seq_cycles,
        "error": list(outcome.error) if outcome.error else None,
        "record": outcome.result.to_json_dict() if outcome.result else None,
    }


def outcome_from_wire(wire: dict[str, Any]) -> JobOutcome:
    """Inverse of :func:`outcome_to_wire` — bit-identical round trip
    (pinned by the serve differential tests)."""
    from repro.obs import RunRecord

    record = wire.get("record")
    error = wire.get("error")
    return JobOutcome(
        cycles=wire["cycles"],
        region_cycles=wire["region_cycles"],
        seq_cycles=wire.get("seq_cycles"),
        result=RunRecord.from_json_dict(record) if record else None,
        error=tuple(error) if error else None,
    )
