"""Line-granular cross-node ownership: who must forward what to whom.

In TFluxDist every node is a TFluxSoft-style shared-memory machine, but
*between* nodes there is no coherence — a DThread scheduled on node B that
reads lines last written by a DThread on node A must have those lines
forwarded over the network.  The apps already declare exactly what every
DThread touches (:class:`~repro.sim.accesses.AccessSummary`), so the owner
map replays those declarations at cache-line granularity:

* a **write** makes the writing node the owner of the line and invalidates
  every other node's copy;
* a **read** of a line owned elsewhere (and not already copied here) pulls
  the line from its owner — the map returns per-owner byte totals that the
  caller prices through :meth:`repro.net.fabric.Network.pull` — and
  records the copy so re-reads are free until the next remote write.

Lines never written by any DThread (owner ``-1``) are program inputs
materialised by the prologue; TFluxDist replicates those to every node at
load time, so reading them is free.  With one node nothing is ever
remote, which keeps the 1-node differential exact.

State is vectorised NumPy per region (an ``int8`` owner and a ``uint64``
copy-set bitmask per line), following :mod:`repro.sim.fastcache`.  One
word is exactly the node-presence width of the two-level sharer
directory (:mod:`repro.sim.capability`), so the copy set covers every
representable machine — up to :data:`~repro.sim.capability.MAX_NODES`
nodes — without a second level.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.sim.accesses import AccessSummary, Region
from repro.sim.capability import check_nodes

__all__ = ["RegionOwnerMap"]


class RegionOwnerMap:
    """Per-line writer tracking across the nodes of one TFluxDist run."""

    def __init__(self, regions: Iterable[Region], line_size: int, nnodes: int) -> None:
        if line_size <= 0:
            raise ValueError(f"line size must be positive, got {line_size}")
        check_nodes(nnodes, what="RegionOwnerMap")
        self.line_size = line_size
        self.nnodes = nnodes
        self._owner: Dict[str, np.ndarray] = {}
        self._copies: Dict[str, np.ndarray] = {}
        for region in regions:
            nlines = region.lines(line_size)
            self._owner[region.name] = np.full(nlines, -1, dtype=np.int8)
            self._copies[region.name] = np.zeros(nlines, dtype=np.uint64)

    def access(self, node: int, summary: AccessSummary) -> Dict[int, int]:
        """Apply *summary* as executed on *node*; return pull sizes.

        The result maps owner node → bytes that must be forwarded to
        *node* before the DThread can run.  Ops are replayed in summary
        order, so a thread that writes then re-reads its own output pulls
        nothing.
        """
        if not 0 <= node < self.nnodes:
            raise ValueError(f"node {node} outside 0..{self.nnodes - 1}")
        pulls: Dict[int, int] = {}
        mybit = np.uint64(1 << node)
        for op in summary:
            owner = self._owner.get(op.region.name)
            if owner is None:
                # Region declared after map construction (never happens
                # for built programs, whose env is frozen at build time).
                nlines = op.region.lines(self.line_size)
                owner = self._owner[op.region.name] = np.full(nlines, -1, dtype=np.int8)
                self._copies[op.region.name] = np.zeros(nlines, dtype=np.uint64)
            copies = self._copies[op.region.name]
            lines = op.line_indices(self.line_size)
            idx = (
                slice(lines.start, lines.stop)
                if isinstance(lines, range)
                else np.asarray(lines, dtype=np.intp)
            )
            if op.is_write:
                owner[idx] = node
                copies[idx] = mybit
            else:
                own = owner[idx]
                remote = (own >= 0) & (own != node) & ((copies[idx] & mybit) == 0)
                if remote.any():
                    srcs, counts = np.unique(own[remote], return_counts=True)
                    for src, count in zip(srcs.tolist(), counts.tolist()):
                        pulls[src] = pulls.get(src, 0) + count * self.line_size
                    copies[idx] |= np.where(remote, mybit, np.uint64(0))
        return pulls

    def lines_owned_by(self, node: int) -> int:
        """Diagnostic: lines whose last writer is *node*."""
        return int(sum((o == node).sum() for o in self._owner.values()))
