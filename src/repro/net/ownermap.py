"""Line-granular cross-node ownership: who must forward what to whom.

In TFluxDist every node is a TFluxSoft-style shared-memory machine, but
*between* nodes there is no coherence — a DThread scheduled on node B that
reads lines last written by a DThread on node A must have those lines
forwarded over the network.  The apps already declare exactly what every
DThread touches (:class:`~repro.sim.accesses.AccessSummary`), so the owner
map replays those declarations at cache-line granularity:

* a **write** makes the writing node the owner of the line and invalidates
  every other node's copy;
* a **read** of a line owned elsewhere (and not already copied here) pulls
  the line from its owner — the map returns per-owner byte totals that the
  caller prices through :meth:`repro.net.fabric.Network.pull` — and
  records the copy so re-reads are free until the next remote write.

Lines never written by any DThread (owner ``-1``) are program inputs
materialised by the prologue; TFluxDist replicates those to every node at
load time, so reading them is free.  With one node nothing is ever
remote, which keeps the 1-node differential exact.

State is vectorised NumPy per region (an ``int8`` owner and a ``uint64``
copy-set bitmask per line), following :mod:`repro.sim.fastcache`.  One
word is exactly the node-presence width of the two-level sharer
directory (:mod:`repro.sim.capability`), so the copy set covers every
representable machine — up to :data:`~repro.sim.capability.MAX_NODES`
nodes — without a second level.

The geometry lives in :mod:`repro.core.regions` (the shared region
algebra): sweeps become line-index vectors through
:func:`~repro.core.regions.op_line_index` and the per-line state arrays
are :class:`~repro.core.regions.LineTable` rows — this module only
replays the ownership protocol over them.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.core.regions import LineTable, op_line_index
from repro.sim.accesses import AccessSummary, Region
from repro.sim.capability import check_nodes

__all__ = ["RegionOwnerMap"]


class RegionOwnerMap:
    """Per-line writer tracking across the nodes of one TFluxDist run."""

    def __init__(self, regions: Iterable[Region], line_size: int, nnodes: int) -> None:
        check_nodes(nnodes, what="RegionOwnerMap")
        self.line_size = line_size
        self.nnodes = nnodes
        self._owner = LineTable(line_size, np.int8, -1)
        self._copies = LineTable(line_size, np.uint64, 0)
        for region in regions:
            self._owner.add(region)
            self._copies.add(region)

    def access(self, node: int, summary: AccessSummary) -> Dict[int, int]:
        """Apply *summary* as executed on *node*; return pull sizes.

        The result maps owner node → bytes that must be forwarded to
        *node* before the DThread can run.  Ops are replayed in summary
        order, so a thread that writes then re-reads its own output pulls
        nothing.
        """
        if not 0 <= node < self.nnodes:
            raise ValueError(f"node {node} outside 0..{self.nnodes - 1}")
        pulls: Dict[int, int] = {}
        mybit = np.uint64(1 << node)
        for op in summary:
            # Rows materialise lazily for regions declared after map
            # construction (never happens for built programs, whose env
            # is frozen at build time).
            owner = self._owner.row(op.region)
            copies = self._copies.row(op.region)
            idx = op_line_index(op, self.line_size)
            if op.is_write:
                owner[idx] = node
                copies[idx] = mybit
            else:
                own = owner[idx]
                remote = (own >= 0) & (own != node) & ((copies[idx] & mybit) == 0)
                if remote.any():
                    srcs, counts = np.unique(own[remote], return_counts=True)
                    for src, count in zip(srcs.tolist(), counts.tolist()):
                        pulls[src] = pulls.get(src, 0) + count * self.line_size
                    copies[idx] |= np.where(remote, mybit, np.uint64(0))
        return pulls

    def lines_owned_by(self, node: int) -> int:
        """Diagnostic: lines whose last writer is *node*."""
        return int(sum((o == node).sum() for o in self._owner.rows()))
