"""Typed messages and tunable parameters of the simulated network.

Every piece of inter-node TSU traffic is one of a small closed set of
message kinds, so the network can account (and the tests can assert)
exactly what crossed a link and why.  Sizes are explicit: a message pays
for its header plus a payload sized from what it actually carries —
Ready-Count updates are a few words, an Inlet broadcast carries the
block's metadata, a data forward carries cache lines.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["MsgKind", "Message", "NetParams", "UPDATE_BYTES", "INLET_ENTRY_BYTES"]

#: Wire size of one remote Ready-Count update (thread id + decrement).
UPDATE_BYTES = 16
#: Wire size of one DThread entry in an Inlet metadata broadcast.
INLET_ENTRY_BYTES = 16


class MsgKind(enum.Enum):
    """What a message carries between two nodes' TSU shards."""

    #: Post-processing decrements for consumers whose SM lives remotely.
    READY_UPDATE = "ready_update"
    #: Bulk operand forwarding (data plane; accounted, not event-driven).
    DATA_FORWARD = "data_forward"
    #: A block's Inlet completed: remote shards learn the block is live.
    INLET_BCAST = "inlet_bcast"
    #: A block's Outlet completed: remote shards advance to the next block.
    OUTLET_BCAST = "outlet_bcast"
    #: The last Outlet ran: remote nodes must drain and exit.
    TERMINATE = "terminate"
    #: A node's acknowledgement of TERMINATE (closes the barrier).
    ACK = "ack"


@dataclass(frozen=True)
class Message:
    """One typed transfer between two nodes."""

    kind: MsgKind
    src: int
    dst: int
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message to self (node {self.src})")
        if self.payload_bytes < 0:
            raise ValueError("negative payload")


@dataclass(frozen=True)
class NetParams:
    """Cycle/byte parameters of the inter-node fabric.

    Defaults are commodity-cluster magnitudes relative to the paper's
    Xeon clock: ~0.15 µs one-way latency and tens of Gbit/s of link
    bandwidth.  ``bytes_per_cycle`` may be fractional (0.5 = two cycles
    per byte); ``0`` disables bandwidth accounting entirely (infinitely
    fat links).  As with the TSU cost tables, only the *ratio* to DThread
    granularity matters — ``benchmarks/bench_dist_scaling.py`` sweeps it.
    """

    link_latency_cycles: int = 400
    bytes_per_cycle: float = 16.0
    nic_overhead_cycles: int = 120
    message_header_bytes: int = 64

    def __post_init__(self) -> None:
        if self.link_latency_cycles < 0 or self.nic_overhead_cycles < 0:
            raise ValueError("latencies must be non-negative")
        if self.bytes_per_cycle < 0 or self.message_header_bytes < 0:
            raise ValueError("sizes/bandwidth must be non-negative")

    @classmethod
    def zero_cost(cls) -> "NetParams":
        """A free, infinitely fast network.

        The differential anchor: TFluxDist with one node and a zero-cost
        network must be bit-identical to TFluxSoft
        (``tests/test_dist_differential.py``).
        """
        return cls(
            link_latency_cycles=0,
            bytes_per_cycle=0.0,
            nic_overhead_cycles=0,
            message_header_bytes=0,
        )

    def serialize_cycles(self, nbytes: int) -> int:
        """Cycles to push *nbytes* through one link at line rate."""
        if self.bytes_per_cycle <= 0 or nbytes <= 0:
            return 0
        return math.ceil(nbytes / self.bytes_per_cycle)
