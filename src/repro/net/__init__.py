"""repro.net — the simulated multi-node message-passing network.

The paper scales DDM to the cores behind one chip's TSU; §4.1 points past
that ("for systems with very large number of CPUs it may be beneficial to
have multiple TSU Groups").  This package takes that scaling axis
*off-chip*: several commodity multicore nodes cooperating on one
Synchronization Graph, connected by a point-to-point network whose NIC
and link occupancy are modelled on the DES engine's
:class:`~repro.sim.engine.Resource` primitives.

Split of concerns (mirroring :mod:`repro.sim.interconnect`'s precedent —
DES-level queueing for control traffic, analytic accounting for bulk
data):

* **control plane** — typed :class:`~repro.net.message.Message` records
  (remote Ready-Count updates, block Inlet/Outlet broadcasts, the
  termination barrier's TERMINATE/ACK pair) travel as DES processes
  through per-node NIC TX resources and per-directed-link resources,
  paying overhead, serialisation and propagation latency;
* **data plane** — cross-node forwarding of DThread operands, sized from
  each app's declared :class:`~repro.sim.accesses.AccessSummary` through
  the line-granular :class:`~repro.net.ownermap.RegionOwnerMap`, is
  priced analytically against per-node NIC RX ingest clocks (FIFO
  bandwidth contention without per-line DES events).

:class:`~repro.tsu.dist.DistTSUAdapter` builds the TFluxDist platform on
top of this; ``net.*`` counters surface all traffic through
:mod:`repro.obs`.
"""

from repro.net.message import Message, MsgKind, NetParams
from repro.net.fabric import Network
from repro.net.ownermap import RegionOwnerMap
from repro.net.topology import FatTree, FullMesh, OversubscribedSpine, Topology

__all__ = [
    "Message",
    "MsgKind",
    "NetParams",
    "Network",
    "RegionOwnerMap",
    "Topology",
    "FullMesh",
    "FatTree",
    "OversubscribedSpine",
]
