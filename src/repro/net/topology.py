"""Cluster topologies: which links a message crosses between two nodes.

The original TFluxDist fabric was a full mesh — every directed (src, dst)
pair owned a private link, so the only contention was at the NIC ports.
That is the right model for a handful of nodes on a crossbar, but it
cannot exhibit the one effect that bounds cluster-scale DDM: *bisection
bandwidth*.  A :class:`Topology` names the links of the fabric and maps
each (src, dst) pair to the ordered list of links a message crosses, so
:class:`~repro.net.fabric.Network` can price every hop — store-and-forward
per-hop latency for control messages, FIFO serialisation through *shared*
links for both planes — without knowing the wiring.

Three wirings are provided:

* :class:`FullMesh` — one dedicated link per directed pair, one hop.
  Exactly the historical fabric: with this topology (the default) every
  cycle count is bit-identical to the pre-topology ``Network``.
* :class:`FatTree` — nodes grouped into pods of ``pod_size`` behind an
  edge switch; ``uplinks`` parallel links per pod reach the spine.
  Intra-pod traffic crosses 2 hops (up, down) on dedicated node links;
  inter-pod traffic crosses 4 (up, pod uplink, peer pod downlink, down)
  and *shares* the pod's uplinks — a full fat-tree (``uplinks ==
  pod_size``) keeps full bisection bandwidth.
* :class:`OversubscribedSpine` — a :class:`FatTree` whose uplink count is
  divided by an oversubscription factor (the classic 4:1 datacenter
  spine).  Inter-pod pulls queue on the few uplinks, so D1's wide sweeps
  saturate exactly when the modelled bisection bandwidth runs out.

Link identities are small hashable tuples (``("up", 3)``, ``("spup", 0,
1)``); the ``Network`` lazily instantiates one DES resource and one
analytic FIFO clock per identity.  Topology objects are engine-free,
immutable and picklable — platforms embed them, and the exec cache hashes
them into run keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.capability import check_nodes

__all__ = ["Topology", "FullMesh", "FatTree", "OversubscribedSpine", "LinkId"]

#: A link identity: a small hashable tuple naming one directed resource.
LinkId = Tuple


@dataclass(frozen=True)
class Topology:
    """Base wiring contract; subclasses define the link structure."""

    def validate(self, nnodes: int) -> None:
        """Reject node counts this wiring (or the directory) cannot host."""
        check_nodes(nnodes, what=self.describe())

    def control_path(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        """Ordered links a control message occupies from *src* to *dst*."""
        raise NotImplementedError

    def data_path(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        """The *shared* links a bulk transfer serialises through.

        Dedicated first/last-hop links are omitted — the data plane
        already models the receiver's RX ingest port, which those links
        cannot out-queue.  Only links several node pairs contend for
        (pod uplinks) appear here.
        """
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        """Store-and-forward hop count (propagation latencies paid)."""
        return len(self.control_path(src, dst))

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FullMesh(Topology):
    """One dedicated directed link per (src, dst) pair — the historical
    fabric.  One hop, no shared links, no queueing beyond the NICs."""

    def control_path(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        return ((src, dst),)

    def data_path(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        return ()

    def describe(self) -> str:
        return "fullmesh"


@dataclass(frozen=True)
class FatTree(Topology):
    """Two-level Clos: pods of *pod_size* nodes, *uplinks* links to the
    spine per pod (``None`` → ``pod_size``: full bisection bandwidth)."""

    pod_size: int = 8
    uplinks: int | None = None

    def __post_init__(self) -> None:
        if self.pod_size < 1:
            raise ValueError(f"pod_size must be >= 1, got {self.pod_size}")
        if self.uplinks is not None and self.uplinks < 1:
            raise ValueError(f"uplinks must be >= 1, got {self.uplinks}")

    @property
    def _uplinks(self) -> int:
        return self.pod_size if self.uplinks is None else self.uplinks

    def _pod(self, node: int) -> int:
        return node // self.pod_size

    def _uplink_of(self, src: int, dst: int) -> int:
        # Deterministic ECMP: spread flows over the pod's parallel
        # uplinks by flow identity, as datacenter fabrics hash 5-tuples.
        return (src + dst) % self._uplinks

    def control_path(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        if src == dst:
            return ()
        spod, dpod = self._pod(src), self._pod(dst)
        if spod == dpod:
            return (("up", src), ("down", dst))
        u = self._uplink_of(src, dst)
        return (("up", src), ("spup", spod, u), ("spdn", dpod, u), ("down", dst))

    def data_path(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        spod, dpod = self._pod(src), self._pod(dst)
        if spod == dpod:
            return ()
        u = self._uplink_of(src, dst)
        return (("spup", spod, u), ("spdn", dpod, u))

    def describe(self) -> str:
        return f"fattree(pod={self.pod_size},up={self._uplinks})"


@dataclass(frozen=True)
class OversubscribedSpine(FatTree):
    """A fat-tree whose spine is oversubscribed *oversubscription*:1 —
    each pod gets ``max(1, pod_size // oversubscription)`` uplinks."""

    oversubscription: int = 4

    def __post_init__(self) -> None:
        if self.oversubscription < 1:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
        if self.uplinks is not None:
            raise ValueError("OversubscribedSpine derives uplinks; do not set it")
        super().__post_init__()

    @property
    def _uplinks(self) -> int:
        return max(1, self.pod_size // self.oversubscription)

    def describe(self) -> str:
        return f"spine(pod={self.pod_size},oversub={self.oversubscription})"
