"""Point-to-point fabric: NIC + link occupancy on the DES engine.

One :class:`Network` connects the N nodes of a TFluxDist machine with a
full mesh of directed links.  The model follows the split established by
:mod:`repro.sim.interconnect`:

* **control messages** (:meth:`Network.transmit`) are DES processes.  A
  message first occupies the sender's NIC TX port (fixed per-message
  overhead plus serialisation at line rate), then the directed link for
  its serialisation time, then propagates for the link latency.  Both the
  NIC and each link are FIFO :class:`~repro.sim.engine.Resource`\\ s, so
  bursts of remote Ready-Count updates queue and the contention shows up
  in cycle counts — with the same uncontended fast path (``try_acquire``
  + ``release_at``) the system bus uses, so cheap runs stay cheap.
* **bulk data** (:meth:`Network.pull`) is accounted analytically: the
  destination's RX ingest is a FIFO clock, not an event source.  A
  DThread that must pull operand lines from remote owners stalls for
  the link latency plus its position in the RX ingest queue — bandwidth
  contention without per-line DES events, mirroring how the cache models
  price ordinary load/store traffic.

The wiring between the nodes is a :class:`~repro.net.topology.Topology`:
it maps each (src, dst) pair to the ordered links crossed, the control
plane occupies one DES resource per link with the propagation latency
paid per hop (store-and-forward), and the data plane serialises through
an analytic FIFO clock per *shared* link — so a fat-tree's pod uplinks
congest while the default :class:`~repro.net.topology.FullMesh`
reproduces the historical single-link cycle counts exactly.

All traffic lands in ``net.*`` counters via :meth:`publish_counters`,
including per-hop congestion: ``net.hops`` (total link crossings) and
``net.link_queue_cycles`` (cycles spent queued behind other traffic at
NICs and shared links).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Mapping, Optional

from repro.net.message import Message, MsgKind, NetParams
from repro.net.topology import FullMesh, LinkId, Topology
from repro.sim.engine import Engine, Resource, fastpath_enabled

__all__ = ["Network"]


class Network:
    """*nnodes* nodes wired by a :class:`Topology` (default full mesh)."""

    def __init__(
        self,
        engine: Engine,
        nnodes: int,
        params: NetParams,
        topology: Optional[Topology] = None,
    ) -> None:
        if nnodes < 1:
            raise ValueError(f"need at least one node, got {nnodes}")
        self.engine = engine
        self.nnodes = nnodes
        self.params = params
        self.topology = topology if topology is not None else FullMesh()
        self.topology.validate(nnodes)
        self._fast = fastpath_enabled()
        self._nic_tx: list[Resource] = [
            Resource(engine, capacity=1, name=f"nic-tx:{n}") for n in range(nnodes)
        ]
        # Link resources are created lazily: a contiguous placement on a
        # chain-shaped graph only ever uses a few of the possible links.
        self._links: Dict[LinkId, Resource] = {}
        #: Analytic FIFO clocks for the data plane's shared links (pod
        #: uplinks): the time each next becomes free.
        self._link_free: Dict[LinkId, float] = {}
        #: Per-node RX ingest clock for the analytic data plane: the time
        #: at which the node's NIC RX port next becomes free.
        self._rx_free: list[float] = [0.0] * nnodes

        # -- counters (plain ints on the hot path; see repro.obs) --------
        self.messages = 0
        self.msg_by_kind: Dict[str, int] = {}
        self.control_bytes = 0
        self.nic_busy_cycles = 0
        self.link_busy_cycles = 0
        self.bytes_forwarded = 0
        self.data_pulls = 0
        self.data_stall_cycles = 0
        self.hops = 0
        self.link_queue_cycles = 0

    # -- control plane ----------------------------------------------------
    def _link(self, key: LinkId) -> Resource:
        link = self._links.get(key)
        if link is None:
            link = Resource(self.engine, capacity=1, name=f"link:{key}")
            self._links[key] = link
        return link

    def _occupy(self, resource: Resource, hold: int) -> Generator:
        """Hold *resource* for *hold* cycles (SystemBus-style fast path)."""
        if hold <= 0:
            return
        if self._fast and resource.try_acquire():
            resource.release_at(self.engine.now + hold)
            yield hold
            return
        queued_at = self.engine.now
        grant = resource.request()
        yield grant
        self.link_queue_cycles += int(self.engine.now - queued_at)
        try:
            yield hold
        finally:
            resource.release()

    def transmit(
        self,
        msg: Message,
        on_deliver: Optional[Callable[[Message], None]] = None,
    ) -> None:
        """Send *msg*; *on_deliver* runs at the destination on arrival.

        Fire-and-forget from the sender's perspective (DDM Ready-Count
        updates need no reply); callers that want an acknowledgement send
        an explicit :attr:`~repro.net.message.MsgKind.ACK` back from
        their ``on_deliver``.
        """
        if not (0 <= msg.src < self.nnodes and 0 <= msg.dst < self.nnodes):
            raise ValueError(f"message {msg.src}->{msg.dst} outside {self.nnodes} nodes")
        self.engine.process(
            self._transmit_proc(msg, on_deliver),
            name=f"net:{msg.kind.value}:{msg.src}->{msg.dst}",
        )

    def _transmit_proc(
        self, msg: Message, on_deliver: Optional[Callable[[Message], None]]
    ) -> Generator:
        params = self.params
        size = params.message_header_bytes + msg.payload_bytes
        serialize = params.serialize_cycles(size)
        nic_hold = params.nic_overhead_cycles + serialize
        yield from self._occupy(self._nic_tx[msg.src], nic_hold)
        # Store-and-forward: each hop re-serialises onto its link and pays
        # the propagation latency.  A FullMesh path is one link — exactly
        # the historical occupy-then-propagate sequence.
        path = self.topology.control_path(msg.src, msg.dst)
        for key in path:
            yield from self._occupy(self._link(key), serialize)
            if params.link_latency_cycles > 0:
                yield params.link_latency_cycles
        self.messages += 1
        kind = msg.kind.value
        self.msg_by_kind[kind] = self.msg_by_kind.get(kind, 0) + 1
        self.control_bytes += size
        self.nic_busy_cycles += nic_hold
        self.link_busy_cycles += serialize * len(path)
        self.hops += len(path)
        if on_deliver is not None:
            on_deliver(msg)

    # -- data plane -------------------------------------------------------
    def pull(self, dst: int, per_src_bytes: Mapping[int, int]) -> int:
        """Cycles node *dst* stalls pulling operand bytes from remote owners.

        Each source's transfer serialises through *dst*'s NIC RX in FIFO
        order against earlier pulls (the ingest clock ``_rx_free``); on
        the way there it also serialises through any *shared* fabric
        links on its path (a fat-tree's pod uplinks) against all other
        traffic crossing them — the topology's bisection bandwidth.
        Dedicated-per-pair links (the whole FullMesh) never queue, so
        only the latency of the *first* hop chain and the ingest of the
        *total* matter there, exactly the historical model.
        """
        total = 0
        now = self.engine.now
        link_done = now
        max_hops = 1
        queued = 0
        for src, nbytes in per_src_bytes.items():
            if nbytes <= 0:
                continue
            if not 0 <= src < self.nnodes or src == dst:
                raise ValueError(f"bad pull source {src} for node {dst}")
            total += nbytes
            self.data_pulls += 1
            self.msg_by_kind[MsgKind.DATA_FORWARD.value] = (
                self.msg_by_kind.get(MsgKind.DATA_FORWARD.value, 0) + 1
            )
            hops = self.topology.hops(src, dst)
            if hops > max_hops:
                max_hops = hops
            self.hops += hops
            shared = self.topology.data_path(src, dst)
            if shared:
                ser = self.params.serialize_cycles(nbytes)
                t = now
                for key in shared:
                    free = self._link_free.get(key, 0.0)
                    start = free if free > t else t
                    queued += int(start - t)
                    t = start + ser
                    self._link_free[key] = t
                if t > link_done:
                    link_done = t
        if total == 0:
            return 0
        self.bytes_forwarded += total
        serialize = self.params.serialize_cycles(total)
        start = now if self._rx_free[dst] <= now else self._rx_free[dst]
        end = start + serialize
        if link_done > end:
            # The RX port cannot finish ingesting before the last shared
            # link on the way has drained the transfer.
            end = link_done
        self._rx_free[dst] = end
        stall = int(end - now) + max_hops * self.params.link_latency_cycles
        self.data_stall_cycles += stall
        self.link_queue_cycles += queued
        return stall

    # -- reporting --------------------------------------------------------
    def publish_counters(self, counters) -> None:
        net = counters.scope("net")
        net.inc("messages", self.messages)
        net.inc("control_bytes", self.control_bytes)
        net.inc("nic_busy_cycles", self.nic_busy_cycles)
        net.inc("link_busy_cycles", self.link_busy_cycles)
        net.inc("bytes_forwarded", self.bytes_forwarded)
        net.inc("data_pulls", self.data_pulls)
        net.inc("data_stall_cycles", self.data_stall_cycles)
        net.inc("hops", self.hops)
        net.inc("link_queue_cycles", self.link_queue_cycles)
        msg = net.scope("msg")
        for kind, count in sorted(self.msg_by_kind.items()):
            msg.inc(kind, count)
