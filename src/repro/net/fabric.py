"""Point-to-point fabric: NIC + link occupancy on the DES engine.

One :class:`Network` connects the N nodes of a TFluxDist machine with a
full mesh of directed links.  The model follows the split established by
:mod:`repro.sim.interconnect`:

* **control messages** (:meth:`Network.transmit`) are DES processes.  A
  message first occupies the sender's NIC TX port (fixed per-message
  overhead plus serialisation at line rate), then the directed link for
  its serialisation time, then propagates for the link latency.  Both the
  NIC and each link are FIFO :class:`~repro.sim.engine.Resource`\\ s, so
  bursts of remote Ready-Count updates queue and the contention shows up
  in cycle counts — with the same uncontended fast path (``try_acquire``
  + ``release_at``) the system bus uses, so cheap runs stay cheap.
* **bulk data** (:meth:`Network.pull`) is accounted analytically: the
  destination's RX ingest is a FIFO clock, not an event source.  A
  DThread that must pull operand lines from remote owners stalls for
  the link latency plus its position in the RX ingest queue — bandwidth
  contention without per-line DES events, mirroring how the cache models
  price ordinary load/store traffic.

All traffic lands in ``net.*`` counters via :meth:`publish_counters`.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Mapping, Optional, Tuple

from repro.net.message import Message, MsgKind, NetParams
from repro.sim.engine import Engine, Resource, fastpath_enabled

__all__ = ["Network"]


class Network:
    """A full mesh of directed links between *nnodes* nodes."""

    def __init__(self, engine: Engine, nnodes: int, params: NetParams) -> None:
        if nnodes < 1:
            raise ValueError(f"need at least one node, got {nnodes}")
        self.engine = engine
        self.nnodes = nnodes
        self.params = params
        self._fast = fastpath_enabled()
        self._nic_tx: list[Resource] = [
            Resource(engine, capacity=1, name=f"nic-tx:{n}") for n in range(nnodes)
        ]
        # Directed links are created lazily: a contiguous placement on a
        # chain-shaped graph only ever uses a few of the n*(n-1) pairs.
        self._links: Dict[Tuple[int, int], Resource] = {}
        #: Per-node RX ingest clock for the analytic data plane: the time
        #: at which the node's NIC RX port next becomes free.
        self._rx_free: list[float] = [0.0] * nnodes

        # -- counters (plain ints on the hot path; see repro.obs) --------
        self.messages = 0
        self.msg_by_kind: Dict[str, int] = {}
        self.control_bytes = 0
        self.nic_busy_cycles = 0
        self.link_busy_cycles = 0
        self.bytes_forwarded = 0
        self.data_pulls = 0
        self.data_stall_cycles = 0

    # -- control plane ----------------------------------------------------
    def _link(self, src: int, dst: int) -> Resource:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Resource(self.engine, capacity=1, name=f"link:{src}->{dst}")
            self._links[key] = link
        return link

    def _occupy(self, resource: Resource, hold: int) -> Generator:
        """Hold *resource* for *hold* cycles (SystemBus-style fast path)."""
        if hold <= 0:
            return
        if self._fast and resource.try_acquire():
            resource.release_at(self.engine.now + hold)
            yield hold
            return
        grant = resource.request()
        yield grant
        try:
            yield hold
        finally:
            resource.release()

    def transmit(
        self,
        msg: Message,
        on_deliver: Optional[Callable[[Message], None]] = None,
    ) -> None:
        """Send *msg*; *on_deliver* runs at the destination on arrival.

        Fire-and-forget from the sender's perspective (DDM Ready-Count
        updates need no reply); callers that want an acknowledgement send
        an explicit :attr:`~repro.net.message.MsgKind.ACK` back from
        their ``on_deliver``.
        """
        if not (0 <= msg.src < self.nnodes and 0 <= msg.dst < self.nnodes):
            raise ValueError(f"message {msg.src}->{msg.dst} outside {self.nnodes} nodes")
        self.engine.process(
            self._transmit_proc(msg, on_deliver),
            name=f"net:{msg.kind.value}:{msg.src}->{msg.dst}",
        )

    def _transmit_proc(
        self, msg: Message, on_deliver: Optional[Callable[[Message], None]]
    ) -> Generator:
        params = self.params
        size = params.message_header_bytes + msg.payload_bytes
        serialize = params.serialize_cycles(size)
        nic_hold = params.nic_overhead_cycles + serialize
        yield from self._occupy(self._nic_tx[msg.src], nic_hold)
        yield from self._occupy(self._link(msg.src, msg.dst), serialize)
        if params.link_latency_cycles > 0:
            yield params.link_latency_cycles
        self.messages += 1
        kind = msg.kind.value
        self.msg_by_kind[kind] = self.msg_by_kind.get(kind, 0) + 1
        self.control_bytes += size
        self.nic_busy_cycles += nic_hold
        self.link_busy_cycles += serialize
        if on_deliver is not None:
            on_deliver(msg)

    # -- data plane -------------------------------------------------------
    def pull(self, dst: int, per_src_bytes: Mapping[int, int]) -> int:
        """Cycles node *dst* stalls pulling operand bytes from remote owners.

        Each source's transfer serialises through *dst*'s NIC RX in FIFO
        order against earlier pulls (the ingest clock ``_rx_free``); the
        pulls from distinct sources ride distinct links, so only the
        latency of the *first* and the ingest of the *total* matter.
        """
        total = 0
        for src, nbytes in per_src_bytes.items():
            if nbytes <= 0:
                continue
            if not 0 <= src < self.nnodes or src == dst:
                raise ValueError(f"bad pull source {src} for node {dst}")
            total += nbytes
            self.data_pulls += 1
            self.msg_by_kind[MsgKind.DATA_FORWARD.value] = (
                self.msg_by_kind.get(MsgKind.DATA_FORWARD.value, 0) + 1
            )
        if total == 0:
            return 0
        self.bytes_forwarded += total
        now = self.engine.now
        serialize = self.params.serialize_cycles(total)
        start = now if self._rx_free[dst] <= now else self._rx_free[dst]
        end = start + serialize
        self._rx_free[dst] = end
        stall = int(end - now) + self.params.link_latency_cycles
        self.data_stall_cycles += stall
        return stall

    # -- reporting --------------------------------------------------------
    def publish_counters(self, counters) -> None:
        net = counters.scope("net")
        net.inc("messages", self.messages)
        net.inc("control_bytes", self.control_bytes)
        net.inc("nic_busy_cycles", self.nic_busy_cycles)
        net.inc("link_busy_cycles", self.link_busy_cycles)
        net.inc("bytes_forwarded", self.bytes_forwarded)
        net.inc("data_pulls", self.data_pulls)
        net.inc("data_stall_cycles", self.data_stall_cycles)
        msg = net.scope("msg")
        for kind, count in sorted(self.msg_by_kind.items()):
            msg.inc(kind, count)
