"""TFLUX_FASTPATH on/off differential suite.

The event-coalesced fast path through the DES protocol stack
(``repro.sim.engine.Resource.try_acquire`` + the adapter plans in
``sim/mmi.py``, ``sim/interconnect.py``, ``tsu/software.py``) is a pure
event-count optimisation: it must never change *what* is simulated.
These tests pin the contract on every simulated platform:

* bit-identical total and region cycle counts;
* identical counters — excluding the ``engine.*`` namespace, the one
  scope that is *supposed* to change (dispatched/scheduled event counts
  and coalescing statistics);
* byte-identical functional output and identical span multisets;
* and the point of it all: the fast path dispatches strictly fewer
  engine events on protocol-bound runs, never more.

Fixed paper programs run first; a hypothesis strategy then feeds random
fork/join DAGs through the same check, so protocol interleavings no
benchmark happens to produce still keep the two schedules married.
"""

import os
from collections import Counter as Multiset

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.apps import get_benchmark, problem_sizes
from repro.core import ProgramBuilder
from repro.core.dynamic import Subflow
from repro.obs import Tracer
from repro.platforms.cellbe import TFluxCell
from repro.platforms.hard import TFluxHard
from repro.platforms.soft import TFluxSoft
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.engine import ENV_FASTPATH
from repro.tsu.multigroup import MultiGroupHardwareAdapter

NKERNELS = 4


def _platform(key):
    if key == "hard":
        p = TFluxHard()
        return p.machine, p.adapter_factory()
    if key == "soft":
        p = TFluxSoft()
        return p.machine, p.adapter_factory()
    if key == "cell":
        p = TFluxCell()
        return p.machine, p.adapter_factory()
    if key == "multigroup":
        p = TFluxHard()
        return p.machine, (
            lambda engine, tsu: MultiGroupHardwareAdapter(engine, tsu, n_groups=2)
        )
    raise KeyError(key)


PLATFORMS = ("hard", "soft", "cell", "multigroup")


def _with_fastpath(enabled, fn):
    """Run *fn* with TFLUX_FASTPATH forced on/off (read at model build)."""
    old = os.environ.get(ENV_FASTPATH)
    os.environ[ENV_FASTPATH] = "1" if enabled else "0"
    try:
        return fn()
    finally:
        if old is None:
            del os.environ[ENV_FASTPATH]
        else:
            os.environ[ENV_FASTPATH] = old


# -- program builders (fresh per run: programs are single-use) -----------------
def build_trapez(target):
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", target)["small"]
    return bench.build(size, unroll=8, max_threads=64), None


def build_blocked(target):
    """A three-stage pipeline wide enough to split into several blocks."""
    n = 12
    b = ProgramBuilder("blocked")
    b.env.alloc("a", n)
    b.env.alloc("b", n)
    b.env.alloc("c", n)
    t1 = b.thread(
        "s1", body=lambda env, i: env.array("a").__setitem__(i, i + 1), contexts=n
    )
    t2 = b.thread(
        "s2",
        body=lambda env, i: env.array("b").__setitem__(i, env.array("a")[i] * 2),
        contexts=n,
    )
    t3 = b.thread(
        "s3",
        body=lambda env, i: env.array("c").__setitem__(i, env.array("b")[i] + 1),
        contexts=n,
    )
    red = b.thread(
        "reduce", body=lambda env, _: env.set("total", float(env.array("c").sum()))
    )
    b.depends(t1, t2)
    b.depends(t2, t3)
    b.depends(t3, red, "all")
    return b.build(), 6


def build_dynamic(target):
    """Spawn tree + conditional tail: the dynamic resolve path must be
    coalescing-safe on every platform."""
    b = ProgramBuilder("dynamic")
    b.env.alloc("leaves", 8)
    b.env.alloc("out", 2)

    def make_node(lo, hi):
        def body(env, _ctx):
            if hi - lo == 1:
                env.array("leaves")[lo] = lo + 1
                return None
            mid = (lo + hi) // 2
            sf = Subflow(f"split[{lo}:{hi}]")
            sf.thread(f"node[{lo}:{mid}]", body=make_node(lo, mid))
            sf.thread(f"node[{mid}:{hi}]", body=make_node(mid, hi))
            return sf

        return body

    t_root = b.thread("node[root]", body=make_node(0, 8))
    t_pick = b.thread("pick", body=lambda env, _ctx: 2)
    t_a = b.thread("a", body=lambda env, _c: env.array("out").__setitem__(0, 1))
    t_b = b.thread("b", body=lambda env, _c: env.array("out").__setitem__(1, 2))
    b.depends(t_root, t_pick)
    b.cond(t_pick, t_a, 1)
    b.cond(t_pick, t_b, 2)
    return b.build(), None


PROGRAMS = {
    "trapez": build_trapez,
    "blocked": build_blocked,
    "dynamic": build_dynamic,
}

_TARGET = {"hard": "S", "soft": "N", "cell": "C", "multigroup": "S"}


def run_once(platform_key, program_key, fast, nkernels=NKERNELS):
    machine, factory = _platform(platform_key)

    def go():
        prog, cap = PROGRAMS[program_key](_TARGET[platform_key])
        return SimulatedRuntime(
            prog,
            machine,
            nkernels=nkernels,
            adapter_factory=factory,
            tsu_capacity=cap,
            tracer=Tracer(),
        ).run()

    return _with_fastpath(fast, go)


# -- fingerprints --------------------------------------------------------------
def env_fingerprint(env):
    fp = {}
    for name in env.names():
        value = env[name]
        fp[name] = value.tobytes() if isinstance(value, np.ndarray) else value
    return fp


def nonengine_counters(result):
    return {
        k: v
        for k, v in result.counters.as_dict().items()
        if not k.startswith("engine.")
    }


def span_multiset(result):
    return Multiset((s.kind, s.name) for s in result.spans)


def assert_schedules_married(fast, slow):
    """The full fast-vs-eager contract for one (platform, program) pair."""
    assert fast.cycles == slow.cycles
    assert fast.region_cycles == slow.region_cycles
    assert nonengine_counters(fast) == nonengine_counters(slow)
    assert env_fingerprint(fast.env) == env_fingerprint(slow.env)
    assert span_multiset(fast) == span_multiset(slow)
    assert [(k.dthreads, k.fetches, k.waits) for k in fast.kernels] == [
        (k.dthreads, k.fetches, k.waits) for k in slow.kernels
    ]
    assert fast.counters["engine.events"] <= slow.counters["engine.events"]


# -- fixed paper programs ------------------------------------------------------
@pytest.mark.parametrize("platform_key", PLATFORMS)
@pytest.mark.parametrize("program_key", sorted(PROGRAMS))
def test_fastpath_bit_identical(platform_key, program_key):
    fast = run_once(platform_key, program_key, fast=True)
    slow = run_once(platform_key, program_key, fast=False)
    assert_schedules_married(fast, slow)


def test_fastpath_actually_coalesces():
    """On the protocol-bound hard platform the fast path must save real
    events (not merely tie) and account for each collapsed ladder."""
    fast = run_once("hard", "trapez", fast=True)
    slow = run_once("hard", "trapez", fast=False)
    assert fast.counters["engine.events"] < slow.counters["engine.events"]
    assert (
        fast.counters["engine.coalesced_commands"]
        + fast.counters["engine.coalesced_queries"]
        > 0
    )
    assert slow.counters["engine.coalesced_commands"] == 0
    assert slow.counters["engine.coalesced_queries"] == 0


def test_fastpath_default_is_on(monkeypatch):
    monkeypatch.delenv(ENV_FASTPATH, raising=False)
    prog, _ = build_trapez("S")
    run = TFluxHard().execute(prog, nkernels=2)
    assert run.counters["engine.coalesced_queries"] > 0


# -- random DAGs ---------------------------------------------------------------
@st.composite
def dag_programs(draw):
    """A random fork/join pipeline: stage widths, dep kinds, capacity,
    and optionally a dynamically spawned last stage."""
    nstages = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.integers(min_value=1, max_value=6)) for _ in range(nstages)]
    reduce_tail = draw(st.booleans())
    spawn = draw(st.booleans())
    cap = draw(st.sampled_from([None, 4, 8]))
    nkernels = draw(st.integers(min_value=1, max_value=4))
    return widths, reduce_tail, spawn, cap, nkernels


def build_dag(widths, reduce_tail, spawn=False):
    b = ProgramBuilder("dag")
    for j, w in enumerate(widths):
        b.env.alloc(f"a{j}", w)
    if spawn:
        b.env.alloc("sp", widths[-1])

    last_stage = len(widths) - 1

    def stage_body(j):
        def body(env, i):
            if j == 0:
                env.array("a0")[i] = float(i + 1)
            else:
                env.array(f"a{j}")[i] = float(env.array(f"a{j-1}").sum()) + i
            if spawn and j == last_stage:
                # Every instance of the last stage spawns one dynamic
                # worker — several subflows land in one block round.
                sf = Subflow(f"sp[{i}]")
                sf.thread(
                    f"sp[{i}]",
                    body=lambda env, _c, i=i: env.array("sp").__setitem__(
                        i, float(i + 100)
                    ),
                )
                return sf
            return None

        return body

    threads = []
    for j, w in enumerate(widths):
        t = b.thread(f"s{j}", body=stage_body(j), contexts=w)
        if threads:
            # Cross-stage widths differ in general: join on the whole
            # predecessor stage.
            b.depends(threads[-1], t, "all")
        threads.append(t)
    if reduce_tail:
        last = len(widths) - 1
        red = b.thread(
            "reduce",
            body=lambda env, _: env.set(
                "total", float(env.array(f"a{last}").sum())
            ),
        )
        b.depends(threads[-1], red, "all")
    return b.build()


@pytest.mark.parametrize("platform_key", PLATFORMS)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=dag_programs())
# Hypothesis's falsifying example for the pre-fix multigroup divergence
# (ROADMAP item 1): with 2 TSU groups and 3 kernels, an intergroup
# Ready-Count transfer landing in the coalescing window made one kernel's
# final EXIT fetch take an extra eager round (334 vs 340 cycles).  Pinned
# so the shared in-flight gate in sim/mmi.py can never regress silently.
@example(params=([1, 6], False, False, 4, 3))
# The spawning variant of the same shape: every last-stage instance
# ships a Subflow through the dynamic resolve path while the coalescing
# window is open.
@example(params=([1, 6], False, True, 4, 3))
# Falsifier for the lazy-release equality bug: two multigroup devices
# finish their TSU accesses on the same cycle a sibling kernel's bus
# hold expires; `Resource._expire_lazy` treating an exactly-at-now lazy
# deadline as already free let the coalesced reply jump same-cycle FIFO
# arbitration and steal the next ready fetch from the kernel the eager
# schedule gives it to (same cycles, swapped per-kernel waits).
@example(params=([3, 2], False, False, None, 4))
def test_fastpath_bit_identical_random_dags(platform_key, params):
    widths, reduce_tail, spawn, cap, nkernels = params
    machine, factory = _platform(platform_key)
    if platform_key == "multigroup":
        nkernels = max(nkernels, 2)  # need >= n_groups kernels

    def go():
        return SimulatedRuntime(
            build_dag(widths, reduce_tail, spawn),
            machine,
            nkernels=nkernels,
            adapter_factory=factory,
            tsu_capacity=cap,
            tracer=Tracer(),
        ).run()

    fast = _with_fastpath(True, go)
    slow = _with_fastpath(False, go)
    assert_schedules_married(fast, slow)
