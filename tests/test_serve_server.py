"""End-to-end tests for the tflux-serve server (real sockets, in-thread).

The load-bearing properties: streamed outcomes are bit-identical to a
direct :func:`repro.exec.run_job`, a dedup herd costs exactly one
simulation per unique spec, admission refuses (never buffers) past the
bounds, and failures surface as ``job_error`` without poisoning any
cache.
"""

import json
import threading

import pytest

from repro.exec import ResultCache, run_job
from repro.serve import ServeClient, ServeConfig, job_to_wire, serve_in_thread
from repro.serve.protocol import job_from_wire, outcome_to_wire

#: Two distinct cheap cells (trapez small) — the workhorse grid.
GRID = [
    job_to_wire("trapez", nkernels=2, unroll=1),
    job_to_wire("trapez", nkernels=2, unroll=2),
]


@pytest.fixture
def spawn():
    handles = []

    def _spawn(cache=None, unix=None, **kw):
        config_kw = dict(workers=1, lru_capacity=32)
        config_kw.update(kw)
        handle = serve_in_thread(
            config=ServeConfig(**config_kw), cache=cache, unix=unix
        )
        handles.append(handle)
        return handle

    yield _spawn
    for handle in handles:
        handle.stop()


def test_streamed_records_bit_identical_to_direct_run(spawn):
    """The serving stack changes when results arrive, never what they
    are: the wire outcome equals outcome_to_wire(run_job(spec)) byte for
    byte, RunRecord payload included."""
    handle = spawn()
    with ServeClient(handle.address, tenant="diff") as client:
        batch = client.submit(GRID)
    assert batch.ok
    for i, wire_job in enumerate(GRID):
        direct = outcome_to_wire(run_job(job_from_wire(wire_job)))
        served = batch.wire[i]
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )


def test_results_stream_incrementally(spawn):
    handle = spawn()
    seen = []
    with ServeClient(handle.address) as client:
        batch = client.submit(GRID, on_result=lambda i, o: seen.append(i))
    assert sorted(seen) == [0, 1]  # every result streamed before batch_done
    assert all(o is not None for o in batch.outcomes)


def test_dedup_two_tenants_one_simulation_per_unique_spec(spawn):
    """Two tenants race the same grid: total simulations equals unique
    specs; every duplicate is a coalesced flight or an LRU hit.  The
    invariant holds however the race interleaves."""
    handle = spawn()
    batches = {}

    def tenant(name):
        with ServeClient(handle.address, tenant=name) as client:
            batches[name] = client.submit(GRID)

    threads = [threading.Thread(target=tenant, args=(n,)) for n in ("alice", "bob")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert batches["alice"].ok and batches["bob"].ok
    # Bit-identical across tenants, index by index.
    for i in range(len(GRID)):
        assert batches["alice"].wire[i] == batches["bob"].wire[i]

    with ServeClient(handle.address) as client:
        stats = client.stats()
    unique, total = len(GRID), 2 * len(GRID)
    assert stats["executed"] == unique
    counters = stats["counters"]
    assert counters["serve.admitted"] == total
    assert (
        counters.get("serve.deduped", 0) + counters.get("serve.lru_hits", 0)
        == total - unique
    )
    # Per-tenant accounting rode along.
    assert counters["serve.tenant.alice.completed"] == len(GRID)
    assert counters["serve.tenant.bob.completed"] == len(GRID)


def test_overloaded_reply_instead_of_buffering(spawn):
    handle = spawn(max_queued_total=2, max_queued_per_tenant=2)
    with ServeClient(handle.address, tenant="greedy") as client:
        batch = client.submit([GRID[0]] * 3)  # 3 > global bound of 2
        assert batch.status == "overloaded"
        assert all(o is None for o in batch.outcomes)  # nothing ran
        # A batch that fits is accepted on the same connection.
        assert client.submit([GRID[0]]).ok
        stats = client.stats()
    assert stats["counters"]["serve.rejected"] == 3
    assert stats["counters"]["serve.tenant.greedy.rejected"] == 3


def test_malformed_batch_rejected_whole(spawn):
    handle = spawn()
    with ServeClient(handle.address) as client:
        batch = client.submit([GRID[0], {"bench": "no-such-bench"}])
        assert batch.status == "error"
        assert "no-such-bench" in batch.message
        batch = client.submit([{"bench": "trapez", "bogus_field": 1}])
        assert batch.status == "error"
        stats = client.stats()
    assert stats["executed"] == 0  # admission is all-or-nothing


class _BrokenCache:
    """A disk layer that fails on read — drives the job_error path."""

    def __init__(self):
        self.hits = self.misses = self.stores = 0

    def get(self, digest):
        raise RuntimeError("disk exploded")

    def put(self, digest, value):  # pragma: no cover - never reached
        pass

    def publish_counters(self, counters, prefix="exec.cache"):
        pass


def test_job_failure_streams_job_error_and_is_not_cached(spawn):
    handle = spawn(cache=_BrokenCache())
    with ServeClient(handle.address) as client:
        batch = client.submit([GRID[0]])
        assert batch.status == "done" and not batch.ok
        cls, msg = batch.errors[0]
        assert cls == "builtins.RuntimeError" and "disk exploded" in msg
        # The failure was rejected from the flight table, not cached:
        # resubmitting fails again (a cached failure would succeed).
        assert not batch.outcomes[0]
        assert not client.submit([GRID[0]]).ok
        stats = client.stats()
    assert stats["executed"] == 0
    assert stats["lru"]["size"] == 0


def test_disk_cache_survives_server_restart(spawn, tmp_path):
    first = spawn(cache=ResultCache(tmp_path))
    with ServeClient(first.address) as client:
        assert client.submit(GRID).ok
        stats = client.stats()
    assert stats["counters"]["exec.cache.stores"] == len(GRID)
    assert stats["counters"]["exec.cache.misses"] == len(GRID)

    second = spawn(cache=ResultCache(tmp_path))  # fresh LRU, same disk
    with ServeClient(second.address) as client:
        assert client.submit(GRID).ok
        stats = client.stats()
    assert stats["executed"] == 0  # everything answered from disk
    assert stats["counters"]["exec.cache.hits"] == len(GRID)


def test_unix_socket_transport(spawn, tmp_path):
    path = str(tmp_path / "tflux.sock")
    handle = spawn(unix=path)
    with ServeClient(path, tenant="sock") as client:
        batch = client.submit([GRID[0]])
    assert batch.ok


def test_stats_message_shape(spawn):
    handle = spawn()
    with ServeClient(handle.address, tenant="observer") as client:
        client.submit([GRID[0]])
        stats = client.stats()
    assert stats["workers"] == 1
    assert stats["queue_depth"] == 0
    assert "observer" in stats["tenants"]
    lru = stats["lru"]
    assert lru["capacity"] == 32 and lru["size"] == 1 and lru["inflight"] == 0
    # Gauges ride in the counter registry for one-stop scraping.
    assert "serve.lru_size" in stats["counters"]
    assert "serve.queue_depth" in stats["counters"]
