"""Cross-cutting integration tests: one program, every execution path.

The paper's core claim is virtualization — identical DDM programs run on
all platforms.  These tests push the same workloads through the
sequential oracle, the three simulated platforms, the native threaded
runtime, and the preprocessor pipeline, asserting bit-identical results.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import get_benchmark, problem_sizes
from repro.frontend import DDM
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft
from repro.preprocessor import compile_to_program
from repro.runtime.native import NativeRuntime
from repro.tsu.policy import round_robin_placement

ALL_PLATFORMS = [TFluxHard, TFluxSoft, TFluxCell]


def stencil_ddm():
    """A 1-D heat-diffusion step chain: stages with halo dependencies."""
    n, steps = 64, 4
    ddm = DDM("heat")
    rng = np.random.default_rng(11)
    ddm.env.adopt("u0", rng.standard_normal(n))
    for s in range(1, steps + 1):
        ddm.env.alloc(f"u{s}", n)

    chunks = 8
    width = n // chunks
    prev_t = None
    for s in range(1, steps + 1):
        def body(env, i, s=s):
            src = env.array(f"u{s - 1}")
            dst = env.array(f"u{s}")
            lo, hi = i * width, (i + 1) * width
            for j in range(lo, hi):
                left = src[max(j - 1, 0)]
                right = src[min(j + 1, n - 1)]
                dst[j] = 0.25 * left + 0.5 * src[j] + 0.25 * right

        def halo(c):
            return [x for x in (c - 1, c, c + 1) if 0 <= x < chunks]

        deps = [] if prev_t is None else [(prev_t, halo)]
        prev_t = ddm.thread(contexts=chunks, depends=deps, name=f"step{s}")(body)
    return ddm.build()


def heat_oracle():
    n, steps = 64, 4
    rng = np.random.default_rng(11)
    u = rng.standard_normal(n)
    for _ in range(steps):
        nxt = np.empty_like(u)
        for j in range(n):
            left = u[max(j - 1, 0)]
            right = u[min(j + 1, n - 1)]
            nxt[j] = 0.25 * left + 0.5 * u[j] + 0.25 * right
        u = nxt
    return u


def test_heat_sequential_matches_oracle():
    env = stencil_ddm().run_sequential()
    np.testing.assert_allclose(env.array("u4"), heat_oracle(), rtol=1e-12)


@pytest.mark.parametrize("platform_cls", ALL_PLATFORMS)
def test_heat_on_every_platform(platform_cls):
    platform = platform_cls()
    res = platform.execute(stencil_ddm(), nkernels=min(4, platform.max_kernels))
    np.testing.assert_allclose(res.env.array("u4"), heat_oracle(), rtol=1e-12)


def test_heat_native():
    res = NativeRuntime(stencil_ddm(), nkernels=4).run()
    np.testing.assert_allclose(res.env.array("u4"), heat_oracle(), rtol=1e-12)


def test_heat_multiblock_everywhere():
    for platform_cls in ALL_PLATFORMS:
        platform = platform_cls()
        res = platform.execute(stencil_ddm(), nkernels=3, tsu_capacity=10)
        np.testing.assert_allclose(res.env.array("u4"), heat_oracle(), rtol=1e-12)


@pytest.mark.parametrize("name", ["trapez", "qsort", "fft"])
def test_apps_identical_across_platforms(name):
    """The same benchmark produces byte-identical shared arrays on every
    platform (deterministic bodies)."""
    bench = get_benchmark(name)
    results = []
    for platform_cls in ALL_PLATFORMS:
        platform = platform_cls()
        size = problem_sizes(name, platform.target)["small"]
        prog = bench.build(size, unroll=16, max_threads=128)
        res = platform.execute(prog, nkernels=3)
        bench.verify(res.env, size)
        results.append(res)


def test_preprocessed_program_everywhere():
    src = """
#pragma ddm startprogram name(everywhere)
#pragma ddm var double acc[6]
#pragma ddm var double out
#pragma ddm thread 1 context(6)
  acc[CTX] = CTX * 1.5;
#pragma ddm endthread
#pragma ddm thread 2 depends(1 all)
  int i;
  out = 0;
  for (i = 0; i < 6; i++) out = out + acc[i];
#pragma ddm endthread
#pragma ddm endprogram
"""
    expected = sum(i * 1.5 for i in range(6))
    for platform_cls in ALL_PLATFORMS:
        platform = platform_cls()
        res = platform.execute(compile_to_program(src), nkernels=2)
        assert res.env.get("out") == expected
    res = NativeRuntime(compile_to_program(src), nkernels=2).run()
    assert res.env.get("out") == expected


@settings(max_examples=10, deadline=None)
@given(
    nchunks=st.integers(min_value=1, max_value=24),
    nkernels=st.integers(min_value=1, max_value=8),
    cap=st.integers(min_value=3, max_value=30),
    rr=st.booleans(),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_random_reduction_everywhere(nchunks, nkernels, cap, rr, seed):
    """Random (fan-out, reduce) programs give the oracle result on the
    simulated platform for arbitrary kernel counts, block capacities, and
    placements."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(nchunks)

    def build():
        ddm = DDM("rand")
        ddm.env.adopt("vals", values.copy())
        ddm.env.alloc("parts", nchunks)

        @ddm.thread(contexts=nchunks)
        def work(env, i):
            env.array("parts")[i] = env.array("vals")[i] * 2.0

        @ddm.thread(depends=[(work, "all")])
        def reduce(env, _):
            env.set("total", float(env.array("parts").sum()))

        return ddm.build()

    from repro.runtime.simdriver import SimulatedRuntime
    from repro.sim.machine import BAGLE_27
    from repro.tsu.policy import contiguous_placement

    placement = round_robin_placement if rr else contiguous_placement
    res = SimulatedRuntime(
        build(), BAGLE_27, nkernels=nkernels, tsu_capacity=cap,
        placement=placement,
    ).run()
    assert res.env.get("total") == pytest.approx(values.sum() * 2.0)


def test_native_matches_simulated_on_qsort():
    bench = get_benchmark("qsort")
    size = problem_sizes("qsort", "S")["small"]
    sim = TFluxHard().execute(bench.build(size, unroll=16, max_threads=64), nkernels=4)
    nat = NativeRuntime(bench.build(size, unroll=16, max_threads=64), nkernels=4).run()
    np.testing.assert_array_equal(sim.env.array("data"), nat.env.array("data"))
