"""Tests for DThread templates, contexts, and the Synchronization Graph."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import CTX_ALL, context_range, normalize_context
from repro.core.dthread import DThreadTemplate, ThreadKind
from repro.core.graph import GraphError, SynchronizationGraph


# -- contexts -----------------------------------------------------------
def test_normalize_scalar():
    assert normalize_context(3) == 3


def test_normalize_singleton_tuple_collapses():
    assert normalize_context((5,)) == 5


def test_normalize_tuple():
    assert normalize_context((1, 2)) == (1, 2)


def test_context_range_1d():
    assert context_range(3) == [0, 1, 2]


def test_context_range_2d():
    assert context_range(2, 2) == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_context_range_empty():
    assert context_range() == [0]


def test_ctx_all_singleton():
    from repro.core.context import _All

    assert _All() is CTX_ALL


# -- templates -----------------------------------------------------------
def test_template_defaults():
    t = DThreadTemplate(tid=1, name="t")
    assert t.ninstances == 1
    assert t.kind == ThreadKind.APPLICATION
    assert t.compute_cost(None, 0) > 0
    assert len(t.access_summary(None, 0)) == 0


def test_template_duplicate_contexts_rejected():
    with pytest.raises(ValueError):
        DThreadTemplate(tid=1, name="t", contexts=[0, 0])


def test_template_negative_tid_rejected():
    with pytest.raises(ValueError):
        DThreadTemplate(tid=-1, name="t")


def test_template_empty_contexts_rejected():
    with pytest.raises(ValueError):
        DThreadTemplate(tid=1, name="t", contexts=[])


def test_template_run_executes_body():
    hits = []
    t = DThreadTemplate(tid=1, name="t", body=lambda env, ctx: hits.append(ctx))
    t.run(None, 7)
    assert hits == [7]


# -- graph construction -----------------------------------------------------
def simple_graph():
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a", contexts=range(4)))
    g.add_template(DThreadTemplate(tid=2, name="b", contexts=range(4)))
    g.add_template(DThreadTemplate(tid=3, name="reduce"))
    g.add_arc(1, 2, "same")
    g.add_arc(2, 3, "all")
    return g


def test_duplicate_template_rejected():
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a"))
    with pytest.raises(GraphError):
        g.add_template(DThreadTemplate(tid=1, name="b"))


def test_arc_unknown_template_rejected():
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a"))
    with pytest.raises(GraphError):
        g.add_arc(1, 99)


def test_self_arc_rejected():
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a"))
    with pytest.raises(GraphError):
        g.add_arc(1, 1)


def test_cycle_detected():
    g = SynchronizationGraph()
    for tid, name in [(1, "a"), (2, "b"), (3, "c")]:
        g.add_template(DThreadTemplate(tid=tid, name=name))
    g.add_arc(1, 2)
    g.add_arc(2, 3)
    g.add_arc(3, 1)
    with pytest.raises(GraphError, match="cycle"):
        g.validate()


def test_dag_validates():
    simple_graph().validate()


# -- expansion ------------------------------------------------------------
def test_expand_same_mapping():
    g = simple_graph()
    eg = g.expand()
    assert eg.ninstances == 9  # 4 + 4 + 1
    eg.check_invariants()
    # a[i] feeds b[i]
    for i in range(4):
        src = eg.iid_of(1, i)
        dst = eg.iid_of(2, i)
        assert eg.consumers[src] == [dst]
        assert eg.ready_counts[dst] == 1


def test_expand_all_mapping_reduction():
    g = simple_graph()
    eg = g.expand()
    red = eg.iid_of(3, 0)
    assert eg.ready_counts[red] == 4
    for i in range(4):
        assert red in eg.consumers[eg.iid_of(2, i)]


def test_expand_entry_instances():
    eg = simple_graph().expand()
    assert sorted(eg.entry) == [eg.iid_of(1, i) for i in range(4)]


def test_expand_callable_mapping_tree():
    """A two-level binary merge tree as in the paper's QSORT (§6.1.2)."""
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="sort", contexts=range(4)))
    g.add_template(DThreadTemplate(tid=2, name="merge1", contexts=range(2)))
    g.add_template(DThreadTemplate(tid=3, name="merge2"))
    g.add_arc(1, 2, mapping=lambda ctx: [ctx // 2])
    g.add_arc(2, 3, "all")
    eg = g.expand()
    eg.check_invariants()
    for i in range(2):
        assert eg.ready_counts[eg.iid_of(2, i)] == 2
    assert eg.ready_counts[eg.iid_of(3, 0)] == 2


def test_expand_bad_mapping_target_rejected():
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a", contexts=range(2)))
    g.add_template(DThreadTemplate(tid=2, name="b", contexts=range(2)))
    g.add_arc(1, 2, mapping=lambda ctx: [ctx + 5])
    with pytest.raises(GraphError, match="nonexistent"):
        g.expand()


def test_expand_unknown_string_mapping_rejected():
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a"))
    g.add_template(DThreadTemplate(tid=2, name="b"))
    g.add_arc(1, 2, mapping="bogus")
    with pytest.raises(GraphError):
        g.expand()


@settings(max_examples=30, deadline=None)
@given(
    widths=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_layered_graph_expansion_invariants(widths, seed):
    """Random layered DAGs expand with consistent ready counts."""
    import random

    rng = random.Random(seed)
    g = SynchronizationGraph()
    for layer, w in enumerate(widths):
        g.add_template(DThreadTemplate(tid=layer + 1, name=f"L{layer}", contexts=range(w)))
    for layer in range(len(widths) - 1):
        mapping = rng.choice(["same", "all"])
        if mapping == "same" and widths[layer] != widths[layer + 1]:
            mapping = "all"
        g.add_arc(layer + 1, layer + 2, mapping)
    eg = g.expand()
    eg.check_invariants()
    assert eg.ninstances == sum(widths)
    # Entry fringe is exactly the first layer.
    assert sorted(eg.entry) == [eg.iid_of(1, i) for i in range(widths[0])]
