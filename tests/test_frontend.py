"""Tests for the decorator front-end."""

import numpy as np
import pytest

from repro.frontend import DDM
from repro.platforms import TFluxHard


def test_basic_decorator_program():
    ddm = DDM("basic")
    ddm.env.alloc("parts", 4)

    @ddm.thread(contexts=4)
    def work(env, i):
        env.array("parts")[i] = i + 1

    @ddm.thread(depends=[(work, "all")])
    def total(env, _):
        env.set("total", float(env.array("parts").sum()))

    env = ddm.build().run_sequential()
    assert env.get("total") == 10.0


def test_bare_dependence_defaults_to_same():
    ddm = DDM("pipe")
    ddm.env.alloc("a", 4)
    ddm.env.alloc("b", 4)

    @ddm.thread(contexts=4)
    def stage1(env, i):
        env.array("a")[i] = i

    @ddm.thread(contexts=4, depends=[stage1])
    def stage2(env, i):
        env.array("b")[i] = env.array("a")[i] * 2

    env = ddm.build().run_sequential()
    np.testing.assert_array_equal(env.array("b"), [0, 2, 4, 6])


def test_callable_mapping():
    ddm = DDM("tree")
    ddm.env.alloc("leaf", 4)
    ddm.env.alloc("pair", 2)

    @ddm.thread(contexts=4)
    def leaf(env, i):
        env.array("leaf")[i] = 1.0

    @ddm.thread(contexts=2, depends=[(leaf, lambda c: [c // 2])])
    def pair(env, i):
        env.array("pair")[i] = env.array("leaf")[2 * i] + env.array("leaf")[2 * i + 1]

    env = ddm.build().run_sequential()
    np.testing.assert_array_equal(env.array("pair"), [2.0, 2.0])


def test_prologue_epilogue_decorators():
    ddm = DDM("pe")
    order = []

    @ddm.prologue
    def setup(env):
        order.append("pro")

    @ddm.thread()
    def mid(env, _):
        order.append("mid")

    @ddm.epilogue
    def teardown(env):
        order.append("epi")

    ddm.build().run_sequential()
    assert order == ["pro", "mid", "epi"]


def test_unknown_producer_rejected():
    ddm = DDM("bad")

    def not_registered(env, _):
        pass

    with pytest.raises(ValueError, match="not a registered"):
        @ddm.thread(depends=[not_registered])
        def consumer(env, _):
            pass


def test_thread_after_build_rejected():
    ddm = DDM("late")

    @ddm.thread()
    def t(env, _):
        pass

    ddm.build()
    with pytest.raises(RuntimeError):
        @ddm.thread()
        def too_late(env, _):
            pass


def test_build_idempotent():
    ddm = DDM("idem")

    @ddm.thread()
    def t(env, _):
        env.set("x", 1)

    assert ddm.build() is ddm.build()


def test_template_attribute_exposed():
    ddm = DDM("attr")

    @ddm.thread(contexts=3)
    def t(env, _):
        pass

    assert t.template.ninstances == 3


def test_decorated_program_on_platform():
    ddm = DDM("plat")
    ddm.env.alloc("out", 8)

    @ddm.thread(contexts=8, cost=lambda e, c: 1000)
    def work(env, i):
        env.array("out")[i] = i * i

    res = TFluxHard().execute(ddm.build(), nkernels=4)
    np.testing.assert_array_equal(res.env.array("out"), [i * i for i in range(8)])


def test_cost_and_accesses_passed_through():
    from repro.sim.accesses import AccessSummary

    ddm = DDM("costed")
    arr = ddm.env.alloc("arr", 16)
    reg = ddm.env.region("arr")

    @ddm.thread(
        contexts=2,
        cost=lambda env, i: 12345,
        accesses=lambda env, i: AccessSummary().write(reg, offset=i * 64, count=8),
    )
    def work(env, i):
        env.array("arr")[i * 8:(i + 1) * 8] = i

    prog = ddm.build()
    tmpl = work.template
    assert tmpl.compute_cost(prog.env, 0) == 12345
    assert len(tmpl.access_summary(prog.env, 1)) == 1
