"""Maintenance-layer tests for the on-disk ResultCache.

Covers the in-memory index (no directory re-walk per ``len``/``stats``),
``prune`` by age and by size, counter publication, the ``tflux-cache``
CLI, and — because servers and sweeps share one ``TFLUX_CACHE_DIR`` —
two processes racing put/get on a single tree.
"""

import json
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.exec import ResultCache, pool_context
from repro.exec.cachecli import main as cache_cli
from repro.obs import Counters


def _digest(i: int) -> str:
    return f"{i:02x}{'cafe' * 15}"  # unique two-char shard per entry


def _fill(cache: ResultCache, n: int, payload: int = 64) -> list[str]:
    digests = [_digest(i) for i in range(n)]
    for d in digests:
        cache.put(d, ("payload", d, "x" * payload))
    return digests


# -- index ---------------------------------------------------------------------
def test_len_and_stats_come_from_the_index(tmp_path):
    writer = ResultCache(tmp_path)
    _fill(writer, 2)
    reader = ResultCache(tmp_path)
    assert len(reader) == 2  # first touch scans the tree once
    writer.put(_digest(7), ("payload",))
    assert len(reader) == 2  # stale by design: no re-glob per call
    assert reader.stats(refresh=True)["entries"] == 3
    assert len(reader) == 3


def test_put_keeps_own_index_current(tmp_path):
    cache = ResultCache(tmp_path)
    assert len(cache) == 0
    for i in range(3):
        cache.put(_digest(i), i)
        assert len(cache) == i + 1  # no refresh needed for own writes


def test_stats_reports_on_disk_bytes(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 3)
    on_disk = sum(p.stat().st_size for p in tmp_path.glob("*/*.pkl"))
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] == on_disk


# -- prune ---------------------------------------------------------------------
def test_prune_by_age(tmp_path):
    cache = ResultCache(tmp_path)
    digests = _fill(cache, 3)
    old = time.time() - 7200
    for d in digests[:2]:
        os.utime(cache._path(d), (old, old))
    report = cache.prune(max_age=3600)
    assert report["removed"] == 2 and report["remaining"] == 1
    assert cache.get(digests[2]) is not None
    assert cache.get(digests[0]) is None


def test_prune_by_bytes_evicts_oldest_first(tmp_path):
    cache = ResultCache(tmp_path)
    digests = _fill(cache, 4)
    for rank, d in enumerate(digests):
        mtime = 1_000_000 + rank  # digests[0] oldest .. digests[3] newest
        os.utime(cache._path(d), (mtime, mtime))
    entry = cache._path(digests[0]).stat().st_size
    report = cache.prune(max_bytes=2 * entry)
    assert report["removed"] == 2
    assert report["remaining_bytes"] <= 2 * entry
    assert cache.get(digests[0]) is None and cache.get(digests[1]) is None
    assert cache.get(digests[2]) is not None and cache.get(digests[3]) is not None


def test_prune_removes_empty_shards_and_sees_foreign_writes(tmp_path):
    writer = ResultCache(tmp_path)
    digests = _fill(writer, 2)
    other = ResultCache(tmp_path)
    len(other)  # build a (soon stale) index
    writer.put(_digest(9), "late")
    # prune rescans: the foreign write is governed despite the stale index.
    report = other.prune(max_bytes=0)
    assert report["removed"] == 3 and report["remaining"] == 0
    assert not any(tmp_path.glob("*/")), "empty shard dirs are swept"
    assert writer.get(digests[0]) is None


def test_prune_without_bounds_is_a_rescan_noop(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 2)
    report = cache.prune()
    assert report == {
        "removed": 0,
        "freed_bytes": 0,
        "remaining": 2,
        "remaining_bytes": report["remaining_bytes"],
    }


def test_prune_on_missing_root(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    assert cache.prune(max_bytes=0)["removed"] == 0


# -- counters ------------------------------------------------------------------
def test_publish_counters(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_digest(0), ("v",))
    cache.get(_digest(0))
    cache.get(_digest(1))  # miss
    counters = Counters()
    cache.publish_counters(counters)
    assert counters["exec.cache.hits"] == 1
    assert counters["exec.cache.misses"] == 1
    assert counters["exec.cache.stores"] == 1
    cache.publish_counters(counters, prefix="other.scope")
    assert counters["other.scope.hits"] == 1


# -- CLI -----------------------------------------------------------------------
def test_cli_stats_and_prune(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    _fill(cache, 3)
    assert cache_cli(["--dir", str(tmp_path), "stats", "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["entries"] == 3 and info["bytes"] > 0

    assert cache_cli(["--dir", str(tmp_path), "prune", "--max-bytes", "0",
                      "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["removed"] == 3 and report["remaining"] == 0

    assert cache_cli(["--dir", str(tmp_path), "stats"]) == 0
    assert "0 entries" in capsys.readouterr().out


def test_cli_env_dir_and_errors(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("TFLUX_CACHE_DIR", str(tmp_path))
    _fill(ResultCache(tmp_path), 1)
    assert cache_cli(["stats"]) == 0
    assert "1 entries" in capsys.readouterr().out
    assert cache_cli(["prune"]) == 2  # prune needs a bound
    monkeypatch.setenv("TFLUX_CACHE_DIR", "")
    assert cache_cli(["stats"]) == 2  # no directory anywhere
    capsys.readouterr()


# -- cross-process sharing -----------------------------------------------------
def _hammer(root: str, seed: int) -> int:
    """Worker: interleave puts and gets against a shared tree; any get
    must observe either nothing or a complete, valid entry."""
    cache = ResultCache(root)
    rng = random.Random(seed)
    digests = [_digest(i) for i in range(6)]
    for _ in range(150):
        d = rng.choice(digests)
        if rng.random() < 0.5:
            cache.put(d, ("payload", d))
        else:
            value = cache.get(d)
            assert value is None or value == ("payload", d)
    return cache.stores


def test_two_processes_share_one_cache_dir(tmp_path):
    """Two processes race put/get on one TFLUX_CACHE_DIR while the
    parent prunes concurrently: no torn reads, no crashes (atomic
    replace + rescanning prune tolerate each other)."""
    with ProcessPoolExecutor(max_workers=2, mp_context=pool_context()) as pool:
        futures = [pool.submit(_hammer, str(tmp_path), seed) for seed in (1, 2)]
        parent = ResultCache(tmp_path)
        while not all(f.done() for f in futures):
            parent.prune(max_bytes=10_000)
        assert sum(f.result() for f in futures) > 0
    # The tree is still a healthy cache afterwards.
    survivor = ResultCache(tmp_path)
    assert survivor.stats(refresh=True)["entries"] == len(survivor)
