"""Tests for bus, MMI, machine configs, main memory, and core stats."""

import pytest

from repro.sim.cpu import Core, CoreStats
from repro.sim.engine import Engine
from repro.sim.interconnect import SystemBus
from repro.sim.machine import BAGLE_27, CELL_PS3, X86_9_SIM, XEON_8
from repro.sim.memory import MainMemory
from repro.sim.mmi import MemoryMappedInterface
from repro.sim.accesses import RegionSpace


# -- SystemBus ------------------------------------------------------------
def test_bus_serialises_transactions():
    eng = Engine()
    bus = SystemBus(eng, cycles_per_transaction=10)
    done = []

    def user(tag):
        yield from bus.transfer()
        done.append((eng.now, tag))

    eng.process(user("a"))
    eng.process(user("b"))
    eng.run()
    assert done == [(10, "a"), (20, "b")]
    assert bus.transactions == 2
    assert bus.busy_cycles == 20


def test_bus_payload_extends_occupancy():
    eng = Engine()
    bus = SystemBus(eng, cycles_per_transaction=2)

    def user():
        yield from bus.transfer(payload_cycles=8)

    eng.process(user())
    eng.run()
    assert eng.now == 10


# -- MMI --------------------------------------------------------------------
def test_mmi_query_roundtrip_cost():
    eng = Engine()
    bus = SystemBus(eng, cycles_per_transaction=2)
    mmi = MemoryMappedInterface(eng, bus, tsu_processing_cycles=4, l1_access_cycles=2)

    def proc():
        value = yield from mmi.query(lambda: "reply")
        return (eng.now, value)

    p = eng.process(proc())
    eng.run()
    # bus (2) + access (2+4) + reply bus (2) = 10.
    assert p.value == (10, "reply")
    assert mmi.queries == 1


def test_mmi_command_is_posted():
    eng = Engine()
    bus = SystemBus(eng)
    mmi = MemoryMappedInterface(eng, bus)
    hits = []

    def proc():
        yield from mmi.command(lambda: hits.append(eng.now))

    eng.process(proc())
    eng.run()
    assert len(hits) == 1
    assert mmi.commands == 1


def test_mmi_port_contention():
    """Two simultaneous queries serialise at the single TSU port."""
    eng = Engine()
    bus = SystemBus(eng, cycles_per_transaction=1)
    mmi = MemoryMappedInterface(eng, bus, tsu_processing_cycles=50)
    times = []

    def proc():
        yield from mmi.query(lambda: None)
        times.append(eng.now)

    eng.process(proc())
    eng.process(proc())
    eng.run()
    assert times[1] - times[0] >= 50


# -- machine configs -------------------------------------------------------------
def test_machine_kernel_budgets():
    assert BAGLE_27.max_kernels == 27
    assert XEON_8.max_kernels == 7  # OS only; TSU core subtracted by platform
    assert X86_9_SIM.max_kernels == 8
    assert CELL_PS3.cell.n_spes == 6


def test_xeon_l2_pairing():
    groups = XEON_8.l2_groups()
    assert groups == [0, 0, 1, 1, 2, 2, 3, 3]


def test_bagle_private_l2s():
    assert BAGLE_27.l2_groups() == list(range(28))


def test_machine_memory_system_factories():
    space = RegionSpace()
    space.region("r", 4096)
    fast = BAGLE_27.memory_system(space)
    exact = BAGLE_27.memory_system(space, exact=True)
    from repro.sim.cache import CoherentMemorySystem
    from repro.sim.fastcache import FastMemorySystem

    assert isinstance(fast, FastMemorySystem)
    assert isinstance(exact, CoherentMemorySystem)


def test_with_cores_preserves_caches():
    smaller = BAGLE_27.with_cores(8)
    assert smaller.ncores == 8
    assert smaller.l1 == BAGLE_27.l1
    assert smaller.l2 == BAGLE_27.l2


def test_paper_cache_parameters():
    """§6.1.1 / §6.2.1 parameters encoded exactly."""
    assert BAGLE_27.l1.size == 32 * 1024
    assert BAGLE_27.l1.assoc == 4
    assert BAGLE_27.l1.read_latency == 2
    assert BAGLE_27.l1.write_latency == 0
    assert BAGLE_27.l2.size == 2 * 1024 * 1024
    assert BAGLE_27.l2.read_latency == 20
    assert XEON_8.l1.read_latency == 3
    assert XEON_8.l2.size == 4 * 1024 * 1024
    assert XEON_8.l2.read_latency == 14
    assert CELL_PS3.dram_bytes == 256 << 20
    assert CELL_PS3.cell.local_store_bytes == 256 * 1024


# -- MainMemory ------------------------------------------------------------------
def test_main_memory_allocation():
    mem = MainMemory(capacity=1000, line_size=64)
    a = mem.allocate(400)
    b = mem.allocate(500)
    assert (a, b) == (0, 400)
    assert mem.free_bytes() == 100
    with pytest.raises(MemoryError):
        mem.allocate(200)


def test_main_memory_traffic():
    mem = MainMemory(capacity=1 << 20, line_size=64)
    mem.record_read(100)  # 2 lines
    mem.record_write(64)
    assert mem.lines_read == 2
    assert mem.lines_written == 1
    assert mem.traffic_bytes == 192


# -- Core stats --------------------------------------------------------------------
def test_core_stats_accounting():
    core = Core(0)
    core.charge_compute(100)
    core.charge_memory(50)
    core.charge_runtime(25)
    core.charge_idle(25)
    core.finished_dthread()
    s = core.stats
    assert s.busy_cycles == 175
    assert s.total_cycles == 200
    assert s.utilisation() == 0.875
    assert s.dthreads_executed == 1


def test_core_stats_empty():
    assert CoreStats().utilisation() == 0.0


def test_runtime_enforces_physical_memory():
    """A program whose shared arrays exceed the machine's DRAM must be
    rejected up front (the PS3 has only 256 MB)."""
    import dataclasses

    from repro.core import ProgramBuilder
    from repro.runtime.simdriver import SimulatedRuntime

    tiny = dataclasses.replace(BAGLE_27, dram_bytes=1 << 20)  # 1 MB machine
    b = ProgramBuilder("big")
    b.env.alloc("huge", (1 << 18,))  # 2 MB of float64
    b.thread("t", body=lambda env, _: None)
    with pytest.raises(MemoryError):
        SimulatedRuntime(b.build(), tiny, nkernels=1)
