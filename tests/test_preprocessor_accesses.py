"""Access clauses on ``#pragma ddm thread`` and the --check-deps pass.

The Couillard-style front end: ``reads(...)``/``writes(...)`` clauses
declare per-instance footprints, the back end emits them as
``AccessSummary`` functions, and arc-less programs get their
synchronization graph *derived* (``b.auto_depends()``) instead of
hand-declared.  ``ddmcpp --check-deps`` diagnoses declared graphs
against the derived one.
"""

import numpy as np
import pytest

from repro.preprocessor import DDMSyntaxError, compile_to_program, emit_module
from repro.preprocessor.cli import main as ddmcpp_main

DERIVED = """
#pragma ddm startprogram name(derived_reduction)
#pragma ddm var double parts[8]
#pragma ddm var double total[1]
#pragma ddm thread 1 context(8) writes(parts[CTX])
parts[CTX] = CTX * 2.0;
#pragma ddm endthread
#pragma ddm thread 2 reads(parts) writes(total[0])
int i;
total[0] = 0.0;
for (i = 0; i < 8; i = i + 1) { total[0] = total[0] + parts[i]; }
#pragma ddm endthread
#pragma ddm endprogram
"""


def test_derived_pragma_program_runs():
    prog = compile_to_program(DERIVED)
    # The deriver found the write->read arc: thread 2 waits for all 8
    # producers, so sequential execution is already dataflow-correct.
    assert len(prog.graph.arcs) == 1
    arc = prog.graph.arcs[0]
    assert (arc.producer, arc.consumer, arc.mapping) == (1, 2, "all")
    env = prog.run_sequential()
    assert env.array("total")[0] == sum(i * 2.0 for i in range(8))


def test_derived_pragma_emission_shape():
    module = emit_module(DERIVED)
    assert "from repro.sim.accesses import AccessSummary" in module
    assert "def _acc_thread_1(env, CTX):" in module
    assert "accesses=_acc_thread_1" in module
    assert "b.auto_depends()" in module


def test_clause_free_programs_emit_no_access_machinery():
    src = """
#pragma ddm startprogram name(plain)
#pragma ddm var double a[4]
#pragma ddm thread 1 context(4)
a[CTX] = CTX;
#pragma ddm endthread
#pragma ddm thread 2 depends(1 all)
a[0] = a[0] + 1.0;
#pragma ddm endthread
#pragma ddm endprogram
"""
    module = emit_module(src)
    assert "AccessSummary" not in module
    assert "auto_depends" not in module
    assert "_acc_thread" not in module


def test_range_clause_and_elem_sizes():
    src = """
#pragma ddm startprogram name(ranges)
#pragma ddm var float a[16]
#pragma ddm var char flags[16]
#pragma ddm thread 1 context(4) writes(a[CTX * 4 .. CTX * 4 + 4])
int i;
for (i = CTX * 4; i < CTX * 4 + 4; i = i + 1) { a[i] = i; }
#pragma ddm endthread
#pragma ddm thread 2 context(4) reads(a[CTX * 4 .. CTX * 4 + 4]) writes(flags[CTX])
flags[CTX] = 1;
#pragma ddm endthread
#pragma ddm endprogram
"""
    prog = compile_to_program(src)
    arc = prog.graph.arcs[0]
    # Disjoint float ranges (4 bytes/elem): the derived arc is "same",
    # not a barrier — the clause arithmetic respected the elem size.
    assert (arc.producer, arc.consumer, arc.mapping) == (1, 2, "same")
    env = prog.run_sequential()
    np.testing.assert_array_equal(
        env.array("a"), np.arange(16, dtype=np.float32)
    )


@pytest.mark.parametrize(
    "clause, message",
    [
        ("reads(nosuch)", "unknown shared variable"),
        ("writes(scalar)", "require an array"),
        ("reads(m[CTX])", "1-D array"),
        ("reads(a[])", "empty index"),
        ("reads(a[1 .. 2 .. 3])", "more than one"),
    ],
)
def test_malformed_clauses_rejected(clause, message):
    src = f"""
#pragma ddm startprogram name(bad)
#pragma ddm var double a[4]
#pragma ddm var double scalar
#pragma ddm var double m[2][2]
#pragma ddm thread 1 {clause}
a[0] = 1.0;
#pragma ddm endthread
#pragma ddm endprogram
"""
    with pytest.raises(DDMSyntaxError, match=message):
        compile_to_program(src)


def test_subflow_access_clauses_rejected():
    src = """
#pragma ddm startprogram name(sf)
#pragma ddm var double a[4]
#pragma ddm thread 1
a[0] = 1.0;
#pragma ddm endthread
#pragma ddm subflow name(kid)
#pragma ddm thread 1 reads(a)
a[1] = a[0];
#pragma ddm endthread
#pragma ddm endsubflow
#pragma ddm endprogram
"""
    with pytest.raises(DDMSyntaxError, match="not supported inside subflows"):
        emit_module(src)


# -- the --check-deps diagnosis pass -------------------------------------------
def _write(tmp_path, text):
    path = tmp_path / "prog.ddm"
    path.write_text(text)
    return str(path)


def test_check_deps_clean(tmp_path, capsys):
    assert ddmcpp_main([_write(tmp_path, DERIVED), "--check-deps"]) == 0
    assert "deps: clean" in capsys.readouterr().out


def test_check_deps_flags_redundant_arc(tmp_path, capsys):
    src = """
#pragma ddm startprogram name(redundant)
#pragma ddm var double a[4]
#pragma ddm var double b[4]
#pragma ddm thread 1 context(4) writes(a[CTX])
a[CTX] = CTX;
#pragma ddm endthread
#pragma ddm thread 2 context(4) depends(1 same) reads(b[CTX]) writes(b[CTX])
b[CTX] = b[CTX] + 1.0;
#pragma ddm endthread
#pragma ddm endprogram
"""
    # The declared arc orders threads that never touch common data:
    # diagnosed as redundant (a warning — exit stays 0).
    assert ddmcpp_main([_write(tmp_path, src), "--check-deps"]) == 0
    out = capsys.readouterr().out
    assert "redundant arc thread_1 -> thread_2" in out


def test_check_deps_flags_missing_dependence(tmp_path, capsys):
    src = """
#pragma ddm startprogram name(missing)
#pragma ddm var double a[4]
#pragma ddm var double b[4]
#pragma ddm thread 1 context(4) writes(a[CTX])
a[CTX] = CTX;
#pragma ddm endthread
#pragma ddm thread 2 context(4) depends(1 same) reads(a[CTX]) writes(b[CTX])
b[CTX] = a[CTX] * 2.0;
#pragma ddm endthread
#pragma ddm thread 3 reads(b)
int i;
for (i = 0; i < 4; i = i + 1) { }
#pragma ddm endthread
#pragma ddm endprogram
"""
    # Thread 3 reads what thread 2 writes but declares no arc (and the
    # program declares other arcs, so no auto-derivation kicked in):
    # that conflict has no ordering path — an error, exit 1.
    assert ddmcpp_main([_write(tmp_path, src), "--check-deps"]) == 1
    out = capsys.readouterr().out
    assert "missing dependence" in out
    assert "thread_2" in out and "thread_3" in out
