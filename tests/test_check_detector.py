"""The dynamic race detector end to end (repro.check).

Four layers of evidence:

* **cleanliness** — every shipped app (all seven builders, static and
  dynamic) and every ``examples/ddm`` program comes out of ``run_checked``
  with zero findings, while still computing its verified result;
* **detection** — seeded faults are caught: undeclared writes (with a
  usable ``writes(...)`` suggestion), unordered array writers, scalar
  races at per-name offsets, and the two ``tests/data`` CI fixtures
  through the real ``ddmcpp --check-races`` frontend (exit status 1);
* **property** — random access-annotated programs (the same generator
  shape as the deps-derivation suite): an injected out-of-footprint
  write is always reported as exactly one undeclared access, and on
  arc-free programs the dynamic race verdict agrees with the static
  ``check_deps`` missing-dependence verdict;
* **gating** — ``JobSpec.check`` runs the detector before simulation,
  publishes ``check.*`` counters, participates in the cache digest, and
  round-trips the serve wire protocol.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_benchmark
from repro.apps.common import ProblemSize
from repro.check import RaceCheckError, instrument, run_checked
from repro.core import ProgramBuilder, check_deps
from repro.core.dynamic import Subflow
from repro.exec.pool import run_job, spec_digest
from repro.preprocessor.backend import compile_to_program
from repro.preprocessor.cli import main as ddmcpp_main
from repro.serve.protocol import WireError, job_from_wire, job_to_wire
from repro.sim.accesses import AccessSummary

DATA = Path(__file__).parent / "data"
EXAMPLES = Path(__file__).parent.parent / "examples" / "ddm"

#: Scaled-down sizes so the recorded sweep stays fast (same shape as the
#: deps-derivation suite; quad/qsort_rec run their real "small").
SIZES = {
    "trapez": ProblemSize("trapez", "S", "t", {"k": 12}),
    "mmult": ProblemSize("mmult", "S", "t", {"n": 32}),
    "fft": ProblemSize("fft", "S", "t", {"n": 32}),
    "qsort": ProblemSize("qsort", "S", "t", {"n": 2048}),
    "susan": ProblemSize("susan", "S", "t", {"w": 36, "h": 36}),
}


# -- every shipped app is clean ------------------------------------------------
@pytest.mark.parametrize(
    "bench_name", ["trapez", "mmult", "fft", "qsort", "susan", "quad", "qsort_rec"]
)
def test_apps_record_clean(bench_name):
    from repro.apps import problem_sizes

    bench = get_benchmark(bench_name)
    size = SIZES.get(bench_name) or problem_sizes(bench_name)["small"]
    prog = bench.build(size, unroll=2)
    session = instrument(prog)
    env = prog.run_sequential()
    report = session.report()
    assert report.ok, report.format()
    assert report.instances_recorded > 0
    assert report.ops_recorded > 0
    bench.verify(env, size)  # recording never changed what the app computed


@pytest.mark.parametrize(
    "example", sorted(EXAMPLES.glob("*.ddm")), ids=lambda p: p.stem
)
def test_examples_record_clean(example):
    report = run_checked(compile_to_program(example.read_text()))
    assert report.ok, report.format()


# -- seeded faults are caught --------------------------------------------------
def _setitem(name, index, value):
    def body(env, _ctx):
        env.array(name)[index] = value

    return body


def test_unordered_writers_race():
    b = ProgramBuilder("racy")
    b.env.alloc("a", 4)
    b.thread("w1", body=_setitem("a", slice(0, 2), 1.0))
    b.thread("w2", body=_setitem("a", slice(1, 3), 2.0))
    report = run_checked(b.build())
    (finding,) = report.findings
    assert finding.kind == "race"
    assert finding.access == "write/write"
    assert finding.intervals == ((8, 16),)  # only the overlapping element
    assert {n.split("[")[0] for n in finding.instances} == {"w1", "w2"}
    assert finding.suggestion == "writes(a[1 .. 2])"
    assert "race:" in report.format()


def test_arc_orders_the_same_writers_clean():
    b = ProgramBuilder("ordered")
    b.env.alloc("a", 4)
    t1 = b.thread("w1", body=_setitem("a", slice(0, 2), 1.0))
    t2 = b.thread("w2", body=_setitem("a", slice(1, 3), 2.0))
    b.depends(t1, t2)
    assert run_checked(b.build()).ok


def test_scalar_race_is_per_name():
    def setter(value):
        return lambda env, _ctx: env.set("s", value)

    b = ProgramBuilder("scalar-race")
    b.thread("s1", body=setter(1.0))
    b.thread("s2", body=setter(2.0))
    report = run_checked(b.build())
    (finding,) = report.findings
    assert finding.kind == "race"
    assert finding.region == "scalar 's'"
    assert finding.suggestion == ""  # no clause syntax for scalars
    assert "add an arc ordering them" in finding.describe()

    b = ProgramBuilder("scalar-clean")
    b.thread("s1", body=lambda env, _ctx: env.set("s", 1.0))
    b.thread("s2", body=lambda env, _ctx: env.set("t", 2.0))
    assert run_checked(b.build()).ok  # distinct names, distinct offsets


def test_undeclared_write_names_the_bytes():
    b = ProgramBuilder("undeclared")
    b.env.alloc("a", 4)
    reg = b.env.region("a")

    def body(env, _ctx):
        arr = env.array("a")
        arr[0] = 1.0
        arr[2] = 2.0  # not in the declaration

    b.thread(
        "t",
        body=body,
        accesses=lambda env, _ctx: AccessSummary().write(reg, offset=0, count=1),
    )
    report = run_checked(b.build())
    (finding,) = report.findings
    assert finding.kind == "undeclared"
    assert finding.access == "write"
    assert finding.intervals == ((16, 24),)
    assert finding.suggestion == "writes(a[2 .. 3])"


def test_opaque_templates_are_noted_not_judged():
    b = ProgramBuilder("opaque")
    b.env.alloc("a", 2)
    b.thread("t", body=_setitem("a", 0, 1.0))  # no accesses= declaration
    report = run_checked(b.build())
    assert report.ok
    assert report.opaque_templates == ["t"]
    assert "not judged" in report.format()


# -- subflow epochs: spawn edges order, siblings race --------------------------
def test_spawn_edge_orders_parent_before_children():
    b = ProgramBuilder("spawny")
    b.env.alloc("a", 2)

    def parent(env, _ctx):
        env.array("a")[0] = 1.0
        sf = Subflow("kids")
        sf.thread(
            "kid",
            body=lambda env, _ctx: env.array("a").__setitem__(
                1, env.array("a")[0] + 1.0
            ),
        )
        return sf

    b.thread("parent", body=parent)
    report = run_checked(b.build())
    assert report.ok, report.format()


def test_sibling_subflow_writers_race():
    b = ProgramBuilder("siblings")
    b.env.alloc("a", 2)

    def parent(env, _ctx):
        sf = Subflow("kids")
        sf.thread("k1", body=_setitem("a", 0, 1.0))
        sf.thread("k2", body=_setitem("a", 0, 2.0))
        return sf

    b.thread("parent", body=parent)
    report = run_checked(b.build())
    (finding,) = report.findings
    assert finding.kind == "race"
    assert {n.split("[")[0] for n in finding.instances} == {"k1", "k2"}


# -- the CI fixtures through the real frontend ---------------------------------
def test_fixture_undeclared_write_exits_nonzero(capsys):
    assert ddmcpp_main([str(DATA / "undeclared_write.ddm"), "--check-races"]) == 1
    out = capsys.readouterr().out
    assert "undeclared write" in out
    assert "writes(b[" in out  # suggests the clause to add


def test_fixture_racy_writers_exits_nonzero(capsys):
    assert ddmcpp_main([str(DATA / "racy_writers.ddm"), "--check-races"]) == 1
    out = capsys.readouterr().out
    assert "race:" in out
    assert "write/write" in out


def test_both_audits_compose_in_one_invocation(capsys):
    # The README shows --check-deps --check-races together: the static
    # audit is clean here, the dynamic one fails, the exit code is 1.
    rc = ddmcpp_main(
        [str(DATA / "undeclared_write.ddm"), "--check-deps", "--check-races"]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "deps:" in out
    assert "undeclared write" in out


def test_fixtures_pass_plain_ddmcpp(capsys):
    # The faults are dynamic: both fixtures are valid DDM programs.
    for name in ("undeclared_write.ddm", "racy_writers.ddm"):
        assert ddmcpp_main([str(DATA / name), "--run"]) == 0
    capsys.readouterr()


# -- property: fault injection over random annotated programs ------------------
def _draw_specs(data):
    slot = st.integers(0, 7)
    ntmpl = data.draw(st.integers(2, 5), label="ntemplates")
    return [
        (
            sorted(data.draw(st.sets(slot, max_size=3), label=f"reads{t}")),
            sorted(data.draw(st.sets(slot, max_size=3), label=f"writes{t}")),
        )
        for t in range(ntmpl)
    ]


def _build_random(specs, auto, inject_into=None):
    """One random annotated program (9 slots; slot 8 is never declared,
    so an injected write to it is out of every footprint)."""
    b = ProgramBuilder("prop")
    b.env.alloc("a", 9)
    reg = b.env.region("a")

    def make(reads, writes, stamp, inject):
        def body(env, _ctx):
            arr = env.array("a")
            acc = sum(float(arr[i]) for i in reads)
            for i in writes:
                arr[i] = arr[i] * 2.0 + acc + stamp
            if inject:
                arr[8] = stamp

        def accesses(env, _ctx):
            s = AccessSummary()
            for i in reads:
                s.read(reg, offset=i * 8, count=1)
            for i in writes:
                s.write(reg, offset=i * 8, count=1)
            return s

        return body, accesses

    for t, (reads, writes) in enumerate(specs):
        body, accesses = make(reads, writes, t + 1, inject=(t == inject_into))
        b.thread(f"t{t}", body=body, accesses=accesses)
    if auto:
        b.auto_depends()
    return b.build()


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_injected_undeclared_write_always_caught(data):
    """With derived arcs the program is race-free; the one write outside
    every declared footprint must be the single finding."""
    specs = _draw_specs(data)
    victim = data.draw(st.integers(0, len(specs) - 1), label="victim")
    report = run_checked(_build_random(specs, auto=True, inject_into=victim))
    (finding,) = report.findings
    assert finding.kind == "undeclared"
    assert finding.access == "write"
    assert finding.instances[0].startswith(f"t{victim}[")
    assert finding.intervals == ((64, 72),)
    assert finding.suggestion == "writes(a[8 .. 9])"


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_dynamic_verdict_matches_static_on_arcfree_programs(data):
    """On a program with no arcs every instance pair is concurrent, so
    the two checkers judge the same conflicts: races exist exactly when
    ``check_deps`` finds missing dependences, every statically missing
    pair is also reported as a race, and every extra dynamic pair is a
    true declared-footprint conflict (the static deriver coalesces
    write-after-write chains through intervening readers; the dynamic
    sweep keeps the last writer as well)."""
    specs = _draw_specs(data)
    static = check_deps(_build_random(specs, auto=False))
    missing = {
        frozenset((dep.producer, dep.consumer)) for dep in static.missing
    }
    report = run_checked(_build_random(specs, auto=False))
    assert not report.undeclared
    race_pairs = {
        frozenset(name.split("[")[0] for name in f.instances)
        for f in report.races
    }
    assert missing <= race_pairs
    assert bool(race_pairs) == bool(missing)
    footprint = {
        f"t{t}": (set(reads), set(writes))
        for t, (reads, writes) in enumerate(specs)
    }
    for pair in race_pairs:
        a, b = sorted(pair)
        ra, wa = footprint[a]
        rb, wb = footprint[b]
        assert (wa & (rb | wb)) or (wb & (ra | wa)), (a, b)


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_derived_programs_always_record_clean(data):
    """auto_depends orders every conflict: the dynamic detector must
    agree (its happens-before is the same expanded-graph edge set)."""
    specs = _draw_specs(data)
    report = run_checked(_build_random(specs, auto=True))
    assert report.ok, report.format()


# -- gating: JobSpec.check, counters, wire protocol ----------------------------
def test_checked_job_publishes_counters_and_keeps_cycles():
    plain = job_from_wire({"bench": "trapez", "nkernels": 4})
    checked = job_from_wire({"bench": "trapez", "nkernels": 4, "check": "races"})
    assert spec_digest(plain) != spec_digest(checked)  # distinct cache keys
    out_plain = run_job(plain)
    out_checked = run_job(checked)
    assert out_checked.cycles == out_plain.cycles  # gate never touches timing
    counters = out_checked.result.counters
    assert counters["check.runs"] == 1
    assert counters["check.instances_recorded"] > 0
    assert counters["check.findings_undeclared"] == 0
    assert counters["check.findings_race"] == 0
    assert "check.runs" not in out_plain.result.counters


def test_wire_round_trips_check_and_rejects_unknown():
    wire = job_to_wire("trapez", check="races")
    assert wire == {"bench": "trapez", "check": "races"}
    assert job_from_wire(wire).check == "races"
    assert job_from_wire({"bench": "trapez"}).check == ""
    with pytest.raises(WireError, match="unknown check"):
        job_from_wire({"bench": "trapez", "check": "deps"})


def test_race_check_error_carries_the_report():
    b = ProgramBuilder("racy")
    b.env.alloc("a", 2)
    b.thread("w1", body=_setitem("a", 0, 1.0))
    b.thread("w2", body=_setitem("a", 0, 2.0))
    report = run_checked(b.build())
    err = RaceCheckError(report)
    assert err.report is report
    assert "race:" in str(err)
