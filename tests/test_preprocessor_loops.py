"""Tests for the ``#pragma ddm for thread`` loop directive."""

import numpy as np
import pytest

from repro.preprocessor import DDMSyntaxError, compile_to_program, emit_module


def loop_source(header="for thread 1 unroll(8)", loop="for (i = 0; i < 100; i++)"):
    return f"""
#pragma ddm startprogram name(loops)
#pragma ddm var double a[100]
#pragma ddm var double total
#pragma ddm {header}
  int i;
  {loop} {{
    a[i] = i * 2.0;
  }}
#pragma ddm endfor
#pragma ddm thread 2 depends(1 all)
  int i;
  total = 0;
  for (i = 0; i < 100; i++) total = total + a[i];
#pragma ddm endthread
#pragma ddm endprogram
"""


def test_loop_thread_splits_iterations():
    prog = compile_to_program(loop_source())
    assert prog.ninstances == 14  # ceil(100/8) + reducer
    env = prog.run_sequential()
    np.testing.assert_array_equal(env.array("a"), np.arange(100) * 2.0)
    assert env.get("total") == sum(i * 2.0 for i in range(100))


def test_loop_thread_default_unroll_one():
    prog = compile_to_program(loop_source(header="for thread 1"))
    assert prog.ninstances == 101


def test_loop_thread_unroll_larger_than_trip():
    prog = compile_to_program(loop_source(header="for thread 1 unroll(1000)"))
    assert prog.ninstances == 2  # single instance + reducer
    env = prog.run_sequential()
    assert env.get("total") == sum(i * 2.0 for i in range(100))


def test_loop_thread_with_step():
    src = """
#pragma ddm startprogram name(stepped)
#pragma ddm var double a[100]
#pragma ddm for thread 1 unroll(4)
  int i;
  for (i = 0; i < 100; i += 3) {
    a[i] = 1;
  }
#pragma ddm endfor
#pragma ddm endprogram
"""
    prog = compile_to_program(src)
    env = prog.run_sequential()
    expected = np.zeros(100)
    expected[::3] = 1
    np.testing.assert_array_equal(env.array("a"), expected)


def test_loop_thread_le_bound():
    src = loop_source(loop="for (i = 0; i <= 99; i++)")
    env = compile_to_program(src).run_sequential()
    assert env.get("total") == sum(i * 2.0 for i in range(100))


def test_loop_thread_parallel_on_platform():
    from repro.platforms import TFluxHard

    prog = compile_to_program(loop_source())
    res = TFluxHard().execute(prog, nkernels=6)
    assert res.env.get("total") == sum(i * 2.0 for i in range(100))


def test_loop_thread_non_canonical_rejected():
    src = loop_source(loop="for (i = 0; i < 100; i = i * 2 + 1)")
    with pytest.raises(DDMSyntaxError, match="canonical"):
        compile_to_program(src)


def test_loop_thread_nonconstant_bound_rejected():
    src = loop_source(loop="for (i = 0; i < n_items; i++)")
    with pytest.raises(DDMSyntaxError, match="constant"):
        compile_to_program(src)


def test_loop_thread_descending_rejected():
    src = loop_source(loop="for (i = 100; i > 0; i--)")
    with pytest.raises(DDMSyntaxError):
        compile_to_program(src)


def test_loop_thread_extra_statements_rejected():
    src = """
#pragma ddm startprogram name(bad)
#pragma ddm var double a[10]
#pragma ddm for thread 1
  int i;
  a[0] = 1;
  for (i = 0; i < 10; i++) a[i] = i;
#pragma ddm endfor
#pragma ddm endprogram
"""
    with pytest.raises(DDMSyntaxError, match="one for loop"):
        compile_to_program(src)


def test_endthread_on_for_thread_rejected():
    src = loop_source().replace("#pragma ddm endfor", "#pragma ddm endthread")
    with pytest.raises(DDMSyntaxError, match="endfor"):
        compile_to_program(src)


def test_endfor_without_for_rejected():
    src = """
#pragma ddm startprogram name(bad)
#pragma ddm thread 1
  ;
#pragma ddm endfor
#pragma ddm endprogram
"""
    with pytest.raises(DDMSyntaxError, match="endfor"):
        compile_to_program(src)


def test_loop_thread_emitted_module_compiles():
    code = emit_module(loop_source())
    compile(code, "<generated>", "exec")
    assert "contexts=13" in code


def test_loop_thread_with_map_consumer():
    """Loop-thread producing into a mapped consumer tree."""
    src = """
#pragma ddm startprogram name(looptree)
#pragma ddm var double a[16]
#pragma ddm var double pair[8]
#pragma ddm for thread 1 unroll(2)
  int i;
  for (i = 0; i < 16; i++) {
    a[i] = i;
  }
#pragma ddm endfor
#pragma ddm thread 2 context(8) depends(1 map(CTX))
  pair[CTX] = a[2 * CTX] + a[2 * CTX + 1];
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    np.testing.assert_array_equal(
        env.array("pair"), [2 * i + (2 * i + 1) for i in range(8)]
    )


def test_loop_thread_keeps_initialized_declarations():
    """Regression: declarations with initializers preceding the loop must
    be emitted, not dropped."""
    src = """
#pragma ddm startprogram name(decls)
#pragma ddm var double a[8]
#pragma ddm for thread 1 unroll(4)
  int i;
  double scale = 0.5;
  for (i = 0; i < 8; i++) {
    a[i] = scale * i;
  }
#pragma ddm endfor
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    np.testing.assert_array_equal(env.array("a"), np.arange(8) * 0.5)


def test_continue_in_canonical_loop_nested_in_noncanonical():
    """Regression: continue inside a canonical inner loop is legal even
    when the outer loop uses the while-transform."""
    src = """
#pragma ddm startprogram name(nest)
#pragma ddm var int x
#pragma ddm thread 1
  int i, j;
  x = 0;
  for (i = 1; i < 10; i = i * 2) {
    for (j = 0; j < 4; j++) {
      if (j == 2) continue;
      x = x + 1;
    }
  }
#pragma ddm endfor
#pragma ddm endthread
#pragma ddm endprogram
"""
    src = src.replace("#pragma ddm endfor\n", "")  # plain thread body
    env = compile_to_program(src).run_sequential()
    # outer i = 1,2,4,8 (4 iterations) x inner 3 counted js = 12.
    assert env.get("x") == 12
