"""TFluxDist(1 node, zero-cost network) ≡ TFluxSoft differential suite.

The distributed adapter (``repro/tsu/dist.py``) claims to be the
software-TSU protocol sharded across nodes — costs only, the TSU Group
state machine never forked.  The sharpest way to pin that claim is the
degenerate case: with one node and a free network, every code path must
collapse to exactly :class:`~repro.tsu.software.SoftwareTSUAdapter`, and
the two platforms must produce **bit-identical** simulations:

* identical total and region cycle counts;
* identical counters — excluding the ``net.*`` namespace, which only
  TFluxDist publishes (and which must be all-zero traffic at one node);
* byte-identical functional output, identical span multisets, identical
  per-kernel schedules.

Fixed paper programs run first; the same hypothesis fork/join DAG
strategy as ``test_fastpath_differential.py`` then feeds random
interleavings through the check.  A second group pins the multi-node
*functional* contract: whatever the node count and network cost, results
and scheduling counters never change — only time does.
"""

from collections import Counter as Multiset

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import get_benchmark, problem_sizes
from repro.core import ProgramBuilder
from repro.net import NetParams
from repro.obs import Tracer
from repro.platforms.dist import TFluxDist
from repro.platforms.soft import TFluxSoft
from repro.tsu.policy import round_robin_placement

NKERNELS = 4


# -- program builders (fresh per run: programs are single-use) -----------------
def build_trapez():
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "N")["small"]
    return bench.build(size, unroll=8, max_threads=64), None


def build_blocked():
    """A three-stage pipeline wide enough to split into several blocks."""
    n = 12
    b = ProgramBuilder("blocked")
    b.env.alloc("a", n)
    b.env.alloc("b", n)
    b.env.alloc("c", n)
    t1 = b.thread(
        "s1", body=lambda env, i: env.array("a").__setitem__(i, i + 1), contexts=n
    )
    t2 = b.thread(
        "s2",
        body=lambda env, i: env.array("b").__setitem__(i, env.array("a")[i] * 2),
        contexts=n,
    )
    t3 = b.thread(
        "s3",
        body=lambda env, i: env.array("c").__setitem__(i, env.array("b")[i] + 1),
        contexts=n,
    )
    red = b.thread(
        "reduce", body=lambda env, _: env.set("total", float(env.array("c").sum()))
    )
    b.depends(t1, t2)
    b.depends(t2, t3)
    b.depends(t3, red, "all")
    return b.build(), 6


PROGRAMS = {"trapez": build_trapez, "blocked": build_blocked}


# -- fingerprints --------------------------------------------------------------
def env_fingerprint(env):
    fp = {}
    for name in env.names():
        value = env[name]
        fp[name] = value.tobytes() if isinstance(value, np.ndarray) else value
    return fp


def nonnet_counters(result):
    return {
        k: v
        for k, v in result.counters.as_dict().items()
        if not k.startswith("net.")
    }


def span_multiset(result):
    return Multiset((s.kind, s.name) for s in result.spans)


def assert_bit_identical(dist, soft):
    """The full one-node contract for one program."""
    assert dist.cycles == soft.cycles
    assert dist.region_cycles == soft.region_cycles
    assert nonnet_counters(dist) == nonnet_counters(soft)
    assert env_fingerprint(dist.env) == env_fingerprint(soft.env)
    assert span_multiset(dist) == span_multiset(soft)
    assert [(k.dthreads, k.fetches, k.waits) for k in dist.kernels] == [
        (k.dthreads, k.fetches, k.waits) for k in soft.kernels
    ]
    # One node, nothing remote: the network must have stayed silent.
    assert dist.counters["net.messages"] == 0
    assert dist.counters["net.bytes_forwarded"] == 0
    assert dist.counters["net.remote_updates"] == 0


def run_pair(program_key, nkernels=NKERNELS, **execute_kw):
    prog, cap = PROGRAMS[program_key]()
    dist = TFluxDist(nnodes=1, net=NetParams.zero_cost()).execute(
        prog, nkernels=nkernels, tsu_capacity=cap, tracer=Tracer(), **execute_kw
    )
    prog, cap = PROGRAMS[program_key]()
    soft = TFluxSoft().execute(
        prog, nkernels=nkernels, tsu_capacity=cap, tracer=Tracer(), **execute_kw
    )
    return dist, soft


# -- fixed paper programs ------------------------------------------------------
@pytest.mark.parametrize("program_key", sorted(PROGRAMS))
@pytest.mark.parametrize("nkernels", (1, 4, 6))
def test_one_node_bit_identical(program_key, nkernels):
    dist, soft = run_pair(program_key, nkernels=nkernels)
    assert_bit_identical(dist, soft)


def test_one_node_bit_identical_round_robin():
    dist, soft = run_pair("blocked", placement=round_robin_placement)
    assert_bit_identical(dist, soft)


def test_one_node_nonzero_network_is_still_identical():
    """With one node no message is ever sent, so even an expensive
    network must not change a single cycle."""
    prog, cap = PROGRAMS["blocked"]()
    dist = TFluxDist(nnodes=1).execute(
        prog, nkernels=NKERNELS, tsu_capacity=cap, tracer=Tracer()
    )
    prog, cap = PROGRAMS["blocked"]()
    soft = TFluxSoft().execute(
        prog, nkernels=NKERNELS, tsu_capacity=cap, tracer=Tracer()
    )
    assert_bit_identical(dist, soft)


# -- random DAGs ---------------------------------------------------------------
@st.composite
def dag_programs(draw):
    """A random fork/join pipeline: stage widths, dep kinds, capacity."""
    nstages = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.integers(min_value=1, max_value=6)) for _ in range(nstages)]
    reduce_tail = draw(st.booleans())
    cap = draw(st.sampled_from([None, 4, 8]))
    nkernels = draw(st.integers(min_value=1, max_value=4))
    return widths, reduce_tail, cap, nkernels


def build_dag(widths, reduce_tail):
    b = ProgramBuilder("dag")
    for j, w in enumerate(widths):
        b.env.alloc(f"a{j}", w)

    def stage_body(j):
        if j == 0:
            return lambda env, i: env.array("a0").__setitem__(i, float(i + 1))
        return lambda env, i: env.array(f"a{j}").__setitem__(
            i, float(env.array(f"a{j-1}").sum()) + i
        )

    threads = []
    for j, w in enumerate(widths):
        t = b.thread(f"s{j}", body=stage_body(j), contexts=w)
        if threads:
            b.depends(threads[-1], t, "all")
        threads.append(t)
    if reduce_tail:
        last = len(widths) - 1
        red = b.thread(
            "reduce",
            body=lambda env, _: env.set(
                "total", float(env.array(f"a{last}").sum())
            ),
        )
        b.depends(threads[-1], red, "all")
    return b.build()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=dag_programs())
def test_one_node_bit_identical_random_dags(params):
    widths, reduce_tail, cap, nkernels = params
    dist = TFluxDist(nnodes=1, net=NetParams.zero_cost()).execute(
        build_dag(widths, reduce_tail),
        nkernels=nkernels,
        tsu_capacity=cap,
        tracer=Tracer(),
    )
    soft = TFluxSoft().execute(
        build_dag(widths, reduce_tail),
        nkernels=nkernels,
        tsu_capacity=cap,
        tracer=Tracer(),
    )
    assert_bit_identical(dist, soft)


# -- multi-node: time changes, results never do --------------------------------
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    params=dag_programs(),
    nnodes=st.sampled_from([2, 3, 4]),
    zero_cost=st.booleans(),
)
def test_multi_node_functional_invariance(params, nnodes, zero_cost):
    """Sharding + network cost are timing-only: functional output and
    scheduling decisions match the single-node run for any node count."""
    widths, reduce_tail, cap, nkernels = params
    nkernels = max(nkernels, nnodes)
    net = NetParams.zero_cost() if zero_cost else NetParams()
    one = TFluxDist(nnodes=1, net=net).execute(
        build_dag(widths, reduce_tail), nkernels=nkernels, tsu_capacity=cap
    )
    many = TFluxDist(nnodes=nnodes, net=net).execute(
        build_dag(widths, reduce_tail), nkernels=nkernels, tsu_capacity=cap
    )
    assert env_fingerprint(many.env) == env_fingerprint(one.env)
    assert many.counters["tsu.dispatched"] == one.counters["tsu.dispatched"]
    assert many.counters["tsu.post_updates"] == one.counters["tsu.post_updates"]
    assert many.nnodes == nnodes and one.nnodes == 1
