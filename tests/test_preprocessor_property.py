"""Property-based tests: random C programs through the preprocessor.

Random arithmetic expression trees are rendered both as DDM C source
(fed through the full lexer → parser → codegen → exec pipeline) and
evaluated directly with C semantics in Python.  The two must agree —
a strong end-to-end check on the whole tool-chain.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.preprocessor import compile_to_program
from repro.preprocessor.shim import cdiv, cmod


# -- random C expression trees over one variable -----------------------------
class Node:
    """(text, value) pairs built bottom-up with C semantics."""

    def __init__(self, text: str, value: int) -> None:
        self.text = text
        self.value = value


def leaves(rng) -> Node:
    v = int(rng.integers(-20, 21))
    if v < 0:
        return Node(f"(0 - {-v})", v)
    return Node(str(v), v)


_BIN_OPS = ["+", "-", "*", "/", "%"]


def combine(rng, a: Node, b: Node) -> Node:
    op = _BIN_OPS[int(rng.integers(0, len(_BIN_OPS)))]
    if op in ("/", "%") and b.value == 0:
        op = "+"
    if op == "+":
        return Node(f"({a.text} + {b.text})", a.value + b.value)
    if op == "-":
        return Node(f"({a.text} - {b.text})", a.value - b.value)
    if op == "*":
        return Node(f"({a.text} * {b.text})", a.value * b.value)
    if op == "/":
        return Node(f"({a.text} / {b.text})", cdiv(a.value, b.value))
    return Node(f"({a.text} % {b.text})", cmod(a.value, b.value))


def random_expr(rng, depth: int) -> Node:
    if depth <= 0:
        return leaves(rng)
    a = random_expr(rng, depth - 1)
    b = random_expr(rng, depth - 1)
    return combine(rng, a, b)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), depth=st.integers(1, 4))
def test_random_expressions_roundtrip(seed, depth):
    rng = np.random.default_rng(seed)
    exprs = [random_expr(rng, depth) for _ in range(3)]
    body = "\n".join(f"  r{i} = {e.text};" for i, e in enumerate(exprs))
    vars_ = "\n".join(f"#pragma ddm var int r{i}" for i in range(3))
    src = f"""
#pragma ddm startprogram name(randexpr)
{vars_}
#pragma ddm thread 1
{body}
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    for i, e in enumerate(exprs):
        assert env.get(f"r{i}") == e.value, (
            f"expr {e.text} -> {env.get(f'r{i}')} != {e.value}"
        )


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    unroll=st.integers(min_value=1, max_value=16),
    step=st.integers(min_value=1, max_value=5),
    scale=st.integers(min_value=-3, max_value=3),
)
def test_random_loop_threads_cover_iteration_space(n, unroll, step, scale):
    """Loop-threads must touch exactly the C loop's iteration set."""
    src = f"""
#pragma ddm startprogram name(randloop)
#pragma ddm var int a[{n}]
#pragma ddm for thread 1 unroll({unroll})
  int i;
  for (i = 0; i < {n}; i += {step}) {{
    a[i] = i * {scale} + 1;
  }}
#pragma ddm endfor
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    expected = np.zeros(n, dtype=np.int64)
    for i in range(0, n, step):
        expected[i] = i * scale + 1
    np.testing.assert_array_equal(env.array("a"), expected)


@settings(max_examples=15, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=10),
    fan=st.integers(min_value=1, max_value=4),
)
def test_random_fanout_dependences(width, fan):
    """Producer with `width` contexts feeding a consumer through map()."""
    consumers = max(1, width // fan)
    src = f"""
#pragma ddm startprogram name(randdag)
#pragma ddm var double src[{width}]
#pragma ddm var double dst[{consumers}]
#pragma ddm thread 1 context({width})
  src[CTX] = CTX + 1;
#pragma ddm endthread
#pragma ddm thread 2 context({consumers}) depends(1 map(min(CTX / {fan}, {consumers - 1})))
  int i;
  double acc = 0;
  for (i = 0; i < {width}; i++) acc = acc + src[i];
  dst[CTX] = acc;
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    total = sum(range(1, width + 1))
    np.testing.assert_array_equal(env.array("dst"), [total] * consumers)
