"""repro.obs: the unified counter registry and probe/span protocol.

The contract under test: every backend (simulated hard/soft/cell, native
threads, sequential baseline) publishes its accounting into one typed
:class:`Counters` registry and emits spans through one :class:`Probe`
interface, and the resulting telemetry survives the exporters and the
exec pool/cache boundary intact.
"""

import json
import pickle

import pytest

from repro.apps import problem_sizes
from repro.core import ProgramBuilder
from repro.obs import (
    NULL_PROBE,
    Counters,
    Span,
    Tracer,
    check_no_overlap,
    spans_from_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft
from repro.runtime.native import NativeRuntime
from repro.tsu.policy import round_robin_placement


def _sum_program(nchunks=16):
    b = ProgramBuilder("psum")
    b.env.alloc("parts", nchunks)

    def work(env, i):
        env.array("parts")[i] = (i + 1) ** 2

    def total(env, _):
        env.set("total", float(env.array("parts").sum()))

    t1 = b.thread("work", body=work, contexts=nchunks)
    t2 = b.thread("total", body=total)
    b.depends(t1, t2, "all")
    return b.build()


# -- the counter registry ------------------------------------------------------
class TestCounters:
    def test_basic_increment_and_read(self):
        c = Counters()
        c.inc("tsu.fetches")
        c.inc("tsu.fetches", 4)
        assert c["tsu.fetches"] == 5
        assert c.get("tsu.waits") == 0
        assert "tsu.fetches" in c and "tsu.waits" not in c
        with pytest.raises(KeyError):
            c["tsu.waits"]

    def test_name_validation(self):
        c = Counters()
        for bad in ("", "a..b", "a b", "1x.y", "tsu."):
            with pytest.raises((TypeError, ValueError)):
                c.inc(bad)
        with pytest.raises(TypeError):
            c.inc(None)

    def test_value_validation(self):
        c = Counters()
        with pytest.raises(TypeError):
            c.inc("x", True)  # bool counts are always a bug
        with pytest.raises(TypeError):
            c.inc("x", 1.5)

    def test_scopes_nest(self):
        c = Counters()
        tsu = c.scope("tsu")
        tsu.inc("fetches", 3)
        tsu.scope("port").inc("stalls", 2)
        assert c["tsu.fetches"] == 3
        assert c["tsu.port.stalls"] == 2

    def test_merge_sums_by_name(self):
        a = Counters({"tsu.fetches": 2, "tub.pushes": 1})
        b = Counters({"tsu.fetches": 3, "mmi.queries": 7})
        a.merge(b)
        assert a == {"tsu.fetches": 5, "tub.pushes": 1, "mmi.queries": 7}
        a.merge({"tub.pushes": 9})
        assert a["tub.pushes"] == 10

    def test_namespace_strips_prefix(self):
        c = Counters({"tsu.fetches": 1, "tsu.waits": 2, "tub.pushes": 3})
        assert c.namespace("tsu") == {"fetches": 1, "waits": 2}

    def test_items_sorted_and_as_dict(self):
        c = Counters({"b.y": 2, "a.x": 1})
        assert c.items() == [("a.x", 1), ("b.y", 2)]
        assert list(c) == ["a.x", "b.y"]
        assert c.as_dict() == {"a.x": 1, "b.y": 2}

    def test_equality_with_counters_and_dict(self):
        assert Counters({"a.b": 1}) == Counters({"a.b": 1})
        assert Counters({"a.b": 1}) == {"a.b": 1}
        assert Counters({"a.b": 1}) != {"a.b": 2}

    def test_pickle_round_trip(self):
        c = Counters({"tsu.fetches": 42, "dma.bytes_imported": 1 << 40})
        assert pickle.loads(pickle.dumps(c)) == c


# -- the probe protocol --------------------------------------------------------
def test_null_probe_discards():
    NULL_PROBE.record(0, "t", "thread", 0, 10)
    assert NULL_PROBE.spans == []


def test_check_no_overlap_catches_overlap():
    good = [Span(0, "a", "thread", 0, 5), Span(0, "b", "thread", 5, 9)]
    check_no_overlap(good)
    bad = good + [Span(0, "c", "thread", 4, 6)]
    with pytest.raises(AssertionError):
        check_no_overlap(bad)
    # Overlap on *different* kernels is fine (that's parallelism).
    check_no_overlap([Span(0, "a", "thread", 0, 5), Span(1, "b", "thread", 0, 5)])


# -- every platform emits through the shared probe -----------------------------
@pytest.mark.parametrize("platform_cls", [TFluxHard, TFluxSoft, TFluxCell])
def test_simulated_platforms_emit_disjoint_spans(platform_cls):
    platform = platform_cls()
    tracer = Tracer()
    result = platform.execute(_sum_program(16), nkernels=4, tracer=tracer)
    assert result.env.get("total") == sum((i + 1) ** 2 for i in range(16))
    assert result.spans == tracer.spans
    kinds = {s.kind for s in tracer.spans}
    assert "thread" in kinds and "inlet" in kinds and "outlet" in kinds
    assert sum(s.kind == "thread" for s in tracer.spans) == 17
    tracer.check_no_overlap()


def test_native_runtime_emits_disjoint_spans():
    tracer = Tracer()
    res = NativeRuntime(_sum_program(16), nkernels=3, tracer=tracer).run()
    assert res.env.get("total") == sum((i + 1) ** 2 for i in range(16))
    assert sum(s.kind == "thread" for s in tracer.spans) == 17
    tracer.check_no_overlap()  # a kernel runs one DThread at a time


def test_sequential_baseline_emits_spans_on_kernel_zero():
    platform = TFluxHard()
    size = problem_sizes("trapez", "S")["small"]
    from repro.apps import get_benchmark

    prog = get_benchmark("trapez").build(size, unroll=8, max_threads=256)
    tracer = Tracer()
    seq = platform.sequential_baseline(prog, tracer=tracer)
    assert tracer.spans and all(s.kernel == 0 for s in tracer.spans)
    tracer.check_no_overlap()
    # The baseline timeline is gap-free: total span time == total cycles.
    assert tracer.busy_cycles(0) == seq.cycles


def test_spans_reconcile_with_core_stats():
    """Per kernel: thread spans cover compute+memory (plus some runtime),
    and never more than the core's total busy time."""
    platform = TFluxHard()
    tracer = Tracer()
    result = platform.execute(_sum_program(24), nkernels=4, tracer=tracer)
    for k in result.kernels:
        core = k.core
        spanned = tracer.busy_cycles(k.kernel_id)
        assert core.compute_cycles + core.memory_cycles <= spanned
        assert spanned <= core.busy_cycles


def test_execute_accepts_placement_policy():
    tracer = Tracer()
    result = TFluxHard().execute(
        _sum_program(12),
        nkernels=4,
        placement=round_robin_placement,
        tracer=tracer,
    )
    assert result.env.get("total") == sum((i + 1) ** 2 for i in range(12))
    # Round-robin spreads the 12 workers over all four kernels.
    assert {s.kernel for s in tracer.spans if s.kind == "thread"} == {0, 1, 2, 3}


def test_adapters_expose_no_freeform_stats():
    """The duck-typed ``extra_stats`` escape hatch is gone: every adapter
    reports through publish_counters only."""
    from repro.cell.adapter import CellTSUAdapter
    from repro.tsu.base import ProtocolAdapter
    from repro.tsu.hardware import HardwareTSUAdapter
    from repro.tsu.multigroup import MultiGroupHardwareAdapter
    from repro.tsu.software import SoftwareTSUAdapter

    for cls in (
        ProtocolAdapter,
        HardwareTSUAdapter,
        SoftwareTSUAdapter,
        MultiGroupHardwareAdapter,
        CellTSUAdapter,
    ):
        assert not hasattr(cls, "extra_stats")
        assert hasattr(cls, "publish_counters")


# -- exporters -----------------------------------------------------------------
def test_chrome_trace_structure(tmp_path):
    tracer = Tracer()
    TFluxHard().execute(_sum_program(8), nkernels=2, tracer=tracer)
    doc = to_chrome_trace(tracer)
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == len(tracer.spans)
    assert {m["tid"] for m in metas} == {s.kernel for s in tracer.spans}
    for e in xs:
        assert e["dur"] >= 0 and e["cat"] in ("thread", "inlet", "outlet")

    out = tmp_path / "trace.json"
    write_chrome_trace(out, tracer)
    assert json.loads(out.read_text())["traceEvents"]


def test_jsonl_round_trip():
    tracer = Tracer()
    TFluxSoft().execute(_sum_program(8), nkernels=2, tracer=tracer)
    text = spans_to_jsonl(tracer)
    assert spans_from_jsonl(text) == tracer.spans
    assert spans_from_jsonl("") == []


# -- telemetry across the exec pool/cache boundary ------------------------------
def _job_spec(**overrides):
    from repro.exec import JobSpec

    base = dict(
        platform=TFluxHard(),
        bench="trapez",
        size=problem_sizes("trapez", "S")["small"],
        nkernels=4,
        unroll=8,
        max_threads=256,
        mode="execute",
        collect_spans=True,
    )
    base.update(overrides)
    return JobSpec(**base)


def test_collect_spans_crosses_the_cache_boundary(tmp_path):
    from repro.exec import ResultCache, run_jobs

    cache = ResultCache(tmp_path)
    spec = _job_spec()
    cold = run_jobs([spec], jobs=1, cache=cache)[0]
    warm = run_jobs([spec], jobs=1, cache=cache)[0]
    assert cache.hits == 1
    assert cold.result.spans, "collect_spans=True must carry spans"
    assert warm.result.spans == cold.result.spans
    assert warm.result.counters == cold.result.counters
    check_no_overlap(warm.result.spans)
    # The cached record still exports cleanly.
    assert spans_from_jsonl(spans_to_jsonl(warm.result.spans)) == cold.result.spans


def test_spans_off_by_default():
    from repro.exec import run_job

    outcome = run_job(_job_spec(collect_spans=False))
    assert outcome.result.spans == []
    assert outcome.result.counters["tsu.fetches"] > 0


def test_baseline_receives_exact_memory(monkeypatch):
    """``sequential_baseline`` must forward *exact_memory* — the seed bug
    priced every baseline with the fast cache model regardless."""
    import repro.platforms.base as base_mod

    seen = {}
    real = base_mod.run_sequential_timed

    def spy(program, machine, exact_memory=False, tracer=None):
        seen["exact_memory"] = exact_memory
        return real(program, machine, exact_memory=exact_memory, tracer=tracer)

    monkeypatch.setattr(base_mod, "run_sequential_timed", spy)
    from repro.apps import get_benchmark

    size = problem_sizes("trapez", "S")["small"]
    prog = get_benchmark("trapez").build(size, unroll=8, max_threads=256)
    TFluxHard().sequential_baseline(prog, exact_memory=True)
    assert seen["exact_memory"] is True


def test_run_job_forwards_exact_memory_to_baseline(monkeypatch):
    import repro.platforms.base as base_mod
    from repro.exec import run_job

    calls = []
    real = base_mod.run_sequential_timed

    def spy(program, machine, exact_memory=False, tracer=None):
        calls.append(exact_memory)
        return real(program, machine, exact_memory=exact_memory, tracer=tracer)

    monkeypatch.setattr(base_mod, "run_sequential_timed", spy)
    run_job(_job_spec(mode="evaluate", exact_memory=True, collect_spans=False))
    assert calls == [True]


# -- CLI -----------------------------------------------------------------------
def test_cli_trace_out_writes_chrome_json(tmp_path, monkeypatch, capsys):
    monkeypatch.delenv("TFLUX_JOBS", raising=False)
    monkeypatch.delenv("TFLUX_CACHE_DIR", raising=False)
    from repro.cli import main

    out = tmp_path / "trace.json"
    rc = main(
        ["trapez", "--platform", "hard", "--kernels", "4",
         "--unroll", "8", "--trace-out", str(out)]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
    assert "trace:" in capsys.readouterr().out
