"""Tests for the vectorised memory model, including cross-validation
against the exact MESI model on the workload-style access patterns."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.sim.accesses import AccessSummary, RegionSpace
from repro.sim.cache import CacheConfig, CoherentMemorySystem, MemoryConfig
from repro.sim.capability import MAX_CORES, DirectoryCapacityError
from repro.sim.fastcache import FastMemorySystem

L1 = CacheConfig(size=1024, line_size=64, assoc=2, read_latency=2, write_latency=0)
L2 = CacheConfig(size=8192, line_size=64, assoc=4, read_latency=20, write_latency=20)
MEM = MemoryConfig(dram_latency=100, cache_to_cache_latency=40, upgrade_latency=8)


def make_pair(ncores=2, regions=(("R", 64 * 512),), l2_groups=None):
    space = RegionSpace()
    for name, size in regions:
        space.region(name, size)
    exact = CoherentMemorySystem(ncores, L1, L2, MEM, space, l2_groups=l2_groups)
    fast = FastMemorySystem(ncores, L1, L2, MEM, space, l2_groups=l2_groups)
    return space, exact, fast


def summary_read(space, name, **kw):
    return AccessSummary().read(space.get(name), **kw)


def summary_write(space, name, **kw):
    return AccessSummary().write(space.get(name), **kw)


def test_cold_stream_matches_exact():
    space, exact, fast = make_pair()
    s = summary_read(space, "R")
    ce = exact.run_summary(0, s)
    cf = fast.run_summary(0, s)
    assert ce == cf
    assert exact.stats[0].mem_misses == fast.stats[0].mem_misses == 512


def test_small_footprint_reuse_matches_exact():
    space, exact, fast = make_pair(regions=(("S", 8 * 64),))
    s = AccessSummary().read(space.get("S"), reps=5)
    ce = exact.run_summary(0, s)
    cf = fast.run_summary(0, s)
    assert ce == cf
    assert fast.stats[0].l1_hits == exact.stats[0].l1_hits == 32


def test_producer_consumer_coherence_matches_exact():
    space, exact, fast = make_pair(regions=(("S", 16 * 64),))
    w = summary_write(space, "S")
    r = summary_read(space, "S")
    for model in (exact, fast):
        model.run_summary(0, w)
        model.run_summary(1, r)
    assert exact.stats[1].coherence_misses == 16
    assert fast.stats[1].coherence_misses == 16
    assert exact.stats[1].cycles == fast.stats[1].cycles


def test_upgrade_on_shared_write():
    space, exact, fast = make_pair(regions=(("S", 4 * 64),))
    r = summary_read(space, "S")
    w = summary_write(space, "S")
    for model in (exact, fast):
        model.run_summary(0, r)
        model.run_summary(1, r)
        model.run_summary(0, w)
    assert exact.stats[0].upgrades == 4
    assert fast.stats[0].upgrades == 4


def test_write_after_remote_write_is_coherence_miss():
    space, exact, fast = make_pair(regions=(("S", 4 * 64),))
    w = summary_write(space, "S")
    for model in (exact, fast):
        model.run_summary(0, w)
        model.run_summary(1, w)
    assert exact.stats[1].coherence_misses == 4
    assert fast.stats[1].coherence_misses == 4


def test_capacity_eviction_approximation():
    """Streaming far beyond L1 capacity: both models show ~0 reuse hits."""
    space, exact, fast = make_pair(regions=(("BIG", 64 * 1024),))  # 1024 lines
    s = AccessSummary().read(space.get("BIG"), reps=2)
    exact.run_summary(0, s)
    fast.run_summary(0, s)
    # Footprint (1024 lines) >> L1 (16 lines): second sweep misses L1 in
    # both models; it hits L2 partially in neither (footprint > L2 too? L2
    # holds 128 lines, footprint 1024 -> mostly misses).
    for model in (exact, fast):
        st_ = model.stats[0]
        assert st_.l1_hits <= st_.accesses * 0.05


def test_l2_reuse_between_sweeps():
    """Footprint fits L2 but not L1: second sweep served from L2 (mostly).

    Both models keep a small resident tail in L1 (the last ~16 of 64
    lines), so the second sweep splits into a few L1 hits plus L2 hits —
    and crucially zero extra memory misses.
    """
    space, exact, fast = make_pair(regions=(("MID", 64 * 64),))  # 64 lines
    s = AccessSummary().read(space.get("MID"), reps=2)
    for model in (exact, fast):
        model.run_summary(0, s)
        st_ = model.stats[0]
        assert st_.mem_misses == 64
        assert st_.l1_hits + st_.l2_hits == 64
        assert st_.l2_hits >= 40


def test_shared_l2_groups():
    space, exact, fast = make_pair(
        ncores=2, regions=(("S", 8 * 64),), l2_groups=[0, 0]
    )
    r = summary_read(space, "S")
    for model in (exact, fast):
        model.run_summary(0, r)
        model.run_summary(1, r)
        assert model.stats[1].l2_hits == 8


def test_strided_column_access():
    """Column sweeps (stride >> line) touch one line per element."""
    space = RegionSpace()
    m = space.region("M", 64 * 64 * 8)  # 64x64 doubles
    fast = FastMemorySystem(1, L1, L2, MEM, space)
    col = AccessSummary().read(m, offset=0, count=64, elem_size=8, stride=64 * 8)
    fast.run_summary(0, col)
    assert fast.stats[0].accesses == 64


def test_stats_conservation_fast():
    space, _exact, fast = make_pair(regions=(("S", 32 * 64),))
    fast.run_summary(0, summary_write(space, "S"))
    fast.run_summary(1, summary_read(space, "S"))
    fast.run_summary(0, summary_read(space, "S", reps=3))
    for st_ in fast.stats:
        assert (
            st_.l1_hits + st_.l2_hits + st_.mem_misses + st_.coherence_misses
            == st_.accesses
        )


def test_too_many_cores_rejected():
    space = RegionSpace()
    space.region("R", 64)
    # 64 cores fit exactly one directory word (the old flat mask stopped
    # at 63); the two-level directory walls off at 64 nodes x 64 cores.
    assert FastMemorySystem(64, L1, L2, MEM, space).ncores == 64
    assert FastMemorySystem(512, L1, L2, MEM, space)._nwords == 8
    with pytest.raises(DirectoryCapacityError):
        FastMemorySystem(MAX_CORES + 1, L1, L2, MEM, space)
    with pytest.raises(ValueError):
        FastMemorySystem(8, L1, L2, MEM, space, directory_words=0)


def test_lazy_region_declaration():
    space = RegionSpace()
    fast = FastMemorySystem(1, L1, L2, MEM, space)
    late = space.region("LATE", 8 * 64)
    cycles = fast.run_summary(0, AccessSummary().read(late))
    assert cycles > 0
    assert fast.stats[0].mem_misses == 8


@settings(max_examples=25, deadline=None)
@given(
    pattern=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # core
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=7),  # chunk index
        ),
        min_size=1,
        max_size=30,
    )
)
# Hypothesis's falsifier for the dirty-read writeback aliasing bug: on a
# dense sweep ``own`` is a view of ``rs.owner``, so clearing the owner
# before reading it sent the downgrade writeback to the *last* L2 group
# instead of the owner's — a third core then saw phantom L2 hits where
# the exact model (and the fixed fast model) goes to DRAM.
@example(
    pattern=[
        (0, True, 0),
        (0, True, 2),
        (1, False, 0),
        (1, False, 2),
        (2, False, 0),
        (2, False, 2),
    ],
)
def test_cross_validation_chunked_traffic(pattern):
    """Exact vs fast agreement on chunked producer/consumer traffic.

    Chunks are 8 lines (512B); with an L1 of 16 lines, recently-touched
    chunks stay resident in both models, so classifications should agree
    closely on this workload-shaped (streaming, chunked) traffic.
    """
    space, exact, fast = make_pair(ncores=3, regions=(("C", 8 * 8 * 64),))
    region = space.get("C")
    for core, write, chunk in pattern:
        s = AccessSummary()
        kw = dict(offset=chunk * 8 * 64, count=64, elem_size=8, stride=8)
        (s.write if write else s.read)(region, **kw)
        exact.run_summary(core, s)
        fast.run_summary(core, s)
    for c in range(3):
        se, sf = exact.stats[c], fast.stats[c]
        assert se.accesses == sf.accesses
        assert se.coherence_misses == sf.coherence_misses
        # The fast model is fully-associative time-distance LRU; the exact
        # model is 2-way set-associative.  They agree on streaming and
        # producer/consumer traffic but may split hits differently when an
        # *older* chunk is re-touched between two touches of another chunk
        # (stack reordering the time-distance clock cannot see).  Allow
        # that bounded divergence; DRAM-level misses stay close.
        assert abs(se.l1_hits - sf.l1_hits) <= max(8, se.accesses * 0.35)
        assert abs(se.mem_misses - sf.mem_misses) <= max(8, se.accesses * 0.35)
