"""Tests for the TSU data structures and the TSU Group state machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.block import split_into_blocks
from repro.core.dthread import DThreadTemplate
from repro.core.graph import SynchronizationGraph
from repro.tsu.group import FetchKind, TSUGroup
from repro.tsu.policy import contiguous_placement, round_robin_placement
from repro.tsu.sm import SynchronizationMemory, ThreadEntry
from repro.tsu.tkt import ThreadToKernelTable
from repro.tsu.tub import ThreadUpdateBuffer, TUBFullError


# -- SM --------------------------------------------------------------------
def entry(local_iid, rc=0, consumers=()):
    tmpl = DThreadTemplate(tid=local_iid + 1, name=f"t{local_iid}")
    from repro.core.dthread import DThreadInstance

    return ThreadEntry(
        local_iid=local_iid,
        instance=DThreadInstance(local_iid, tmpl, 0),
        ready_count=rc,
        initial_ready_count=rc,
        consumers=list(consumers),
    )


def test_sm_ready_on_load_when_rc_zero():
    sm = SynchronizationMemory(0)
    sm.load(entry(0, rc=0))
    assert sm.peek_ready()
    assert sm.pop_ready().local_iid == 0
    assert not sm.peek_ready()


def test_sm_decrement_to_ready():
    sm = SynchronizationMemory(0)
    sm.load(entry(0, rc=2))
    assert not sm.decrement(0)
    assert not sm.peek_ready()
    assert sm.decrement(0)
    assert sm.pop_ready().local_iid == 0


def test_sm_ready_count_underflow_rejected():
    sm = SynchronizationMemory(0)
    sm.load(entry(0, rc=1))
    sm.decrement(0)
    with pytest.raises(RuntimeError, match="underflow"):
        sm.decrement(0)


def test_sm_double_completion_rejected():
    sm = SynchronizationMemory(0)
    sm.load(entry(0, rc=0))
    sm.mark_completed(0)
    with pytest.raises(RuntimeError, match="twice"):
        sm.mark_completed(0)


def test_sm_completion_with_pending_rc_rejected():
    sm = SynchronizationMemory(0)
    sm.load(entry(0, rc=1))
    with pytest.raises(RuntimeError, match="ready count"):
        sm.mark_completed(0)


def test_sm_duplicate_load_rejected():
    sm = SynchronizationMemory(0)
    sm.load(entry(0))
    with pytest.raises(KeyError):
        sm.load(entry(0))


def test_sm_pop_order_is_local_iid_order():
    sm = SynchronizationMemory(0)
    for i in (5, 1, 3):
        sm.load(entry(i, rc=0))
    order = [sm.pop_ready().local_iid for _ in range(3)]
    assert order == [1, 3, 5]


def test_sm_clear():
    sm = SynchronizationMemory(0)
    sm.load(entry(0))
    sm.clear()
    assert len(sm) == 0
    assert sm.pop_ready() is None


# -- TKT ------------------------------------------------------------------
def test_tkt_direct_indexing():
    tkt = ThreadToKernelTable([0, 1, 1, 2], nkernels=3)
    assert tkt.kernel_of(2) == 1
    assert tkt.threads_of(1) == [1, 2]
    assert len(tkt) == 4


def test_tkt_out_of_range_rejected():
    with pytest.raises(ValueError):
        ThreadToKernelTable([0, 5], nkernels=2)


def test_tkt_load_imbalance():
    assert ThreadToKernelTable([0, 1], nkernels=2).load_imbalance() == 1.0
    assert ThreadToKernelTable([0, 0, 0, 1], nkernels=2).load_imbalance() == 1.5


# -- TUB --------------------------------------------------------------------
def test_tub_push_drain_roundtrip():
    tub = ThreadUpdateBuffer(nsegments=2, segment_capacity=4)
    for i in range(5):
        tub.push(("k", i))
    items = tub.drain()
    assert sorted(x[1] for x in items) == list(range(5))
    assert len(tub) == 0


def test_tub_capacity_enforced():
    tub = ThreadUpdateBuffer(nsegments=1, segment_capacity=2)
    tub.push(1)
    tub.push(2)
    ok, _ = tub.try_push(3)
    assert not ok
    with pytest.raises(TUBFullError):
        tub.push(3, max_spins=10)


def test_tub_preferred_segment_used_first():
    tub = ThreadUpdateBuffer(nsegments=4, segment_capacity=4)
    tub.push("a", preferred_segment=2)
    assert len(tub._segments[2].items) == 1


def test_tub_bad_geometry_rejected():
    with pytest.raises(ValueError):
        ThreadUpdateBuffer(nsegments=0)


def test_tub_occupancy():
    tub = ThreadUpdateBuffer(nsegments=2, segment_capacity=2)
    tub.push(1)
    assert tub.occupancy() == 0.25


# -- placement policies --------------------------------------------------------
def loop_blocks(width=8, nthreads_reduce=1):
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="w", contexts=range(width)))
    g.add_template(DThreadTemplate(tid=2, name="r", contexts=range(nthreads_reduce)))
    g.add_arc(1, 2, "all")
    return split_into_blocks(g.expand())


def test_contiguous_placement_chunks():
    block = loop_blocks(width=8)[0]
    assignment = contiguous_placement(block, 4)
    workers = assignment[:8]
    assert workers == [0, 0, 1, 1, 2, 2, 3, 3]


def test_round_robin_placement_cycles():
    block = loop_blocks(width=8)[0]
    assignment = round_robin_placement(block, 4)
    assert assignment[:8] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_affinity_hint_respected():
    g = SynchronizationGraph()
    g.add_template(
        DThreadTemplate(
            tid=1, name="w", contexts=range(4), affinity=lambda ctx, n: 1
        )
    )
    block = split_into_blocks(g.expand())[0]
    for policy in (contiguous_placement, round_robin_placement):
        assert policy(block, 3) == [1, 1, 1, 1]


# -- TSUGroup state machine -----------------------------------------------------
def drive_to_completion(tsu, nkernels):
    """Round-robin driver mimicking the kernels; returns execution trace."""
    trace = []
    active = True
    guard = 0
    while active:
        active = False
        for k in range(nkernels):
            guard += 1
            assert guard < 100_000, "TSU state machine livelocked"
            f = tsu.fetch(k)
            if f.kind == FetchKind.EXIT:
                continue
            active = True
            if f.kind == FetchKind.WAIT:
                continue
            if f.kind == FetchKind.INLET:
                tsu.complete_inlet(k)
                trace.append(("inlet", f.block.block_id, k))
            elif f.kind == FetchKind.OUTLET:
                tsu.complete_outlet(k)
                trace.append(("outlet", f.block.block_id, k))
            else:
                trace.append(("run", f.instance.name, k))
                tsu.complete_thread(k, f.local_iid)
    return trace


def test_group_runs_single_block_program():
    blocks = loop_blocks(width=6)
    tsu = TSUGroup(3, blocks)
    trace = drive_to_completion(tsu, 3)
    runs = [t for t in trace if t[0] == "run"]
    assert len(runs) == 7  # 6 workers + 1 reduce
    assert trace[0][0] == "inlet"
    assert trace[-1][0] == "outlet"


def test_group_reduction_fires_last():
    blocks = loop_blocks(width=6)
    tsu = TSUGroup(2, blocks)
    trace = drive_to_completion(tsu, 2)
    runs = [t[1] for t in trace if t[0] == "run"]
    assert runs[-1] == "r[0]"


def test_group_multi_block_sequencing():
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a", contexts=range(4)))
    g.add_template(DThreadTemplate(tid=2, name="b", contexts=range(4)))
    g.add_arc(1, 2, "same")
    blocks = split_into_blocks(g.expand(), tsu_capacity=4)
    assert len(blocks) == 2
    tsu = TSUGroup(2, blocks)
    trace = drive_to_completion(tsu, 2)
    kinds = [t[0] for t in trace]
    assert kinds.count("inlet") == 2
    assert kinds.count("outlet") == 2
    # Block 0's outlet precedes block 1's inlet.
    first_outlet = next(i for i, t in enumerate(trace) if t[0] == "outlet")
    second_inlet = next(
        i for i, t in enumerate(trace) if t[0] == "inlet" and t[1] == 1
    )
    assert first_outlet < second_inlet


def test_group_exit_state_sticky():
    blocks = loop_blocks(width=2)
    tsu = TSUGroup(1, blocks)
    drive_to_completion(tsu, 1)
    assert tsu.is_exited()
    assert tsu.fetch(0).kind == FetchKind.EXIT


def test_group_wait_when_no_local_work():
    """A kernel whose SM is empty waits while others still run."""
    blocks = loop_blocks(width=1)  # single worker thread + reduce
    tsu = TSUGroup(3, blocks)
    inlet = tsu.fetch(0)
    assert inlet.kind == FetchKind.INLET
    tsu.complete_inlet(0)
    # Worker and reduce both land on some kernels; others must WAIT.
    kinds = {k: tsu.fetch(k).kind for k in range(3)}
    assert FetchKind.WAIT in kinds.values()


def test_group_completion_in_wrong_phase_rejected():
    blocks = loop_blocks(width=2)
    tsu = TSUGroup(1, blocks)
    with pytest.raises(RuntimeError):
        tsu.complete_inlet(0)  # nothing fetched yet -> INLET_PENDING, not LOADING


def test_group_requires_blocks_and_kernels():
    with pytest.raises(ValueError):
        TSUGroup(0, loop_blocks())
    with pytest.raises(ValueError):
        TSUGroup(1, [])


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=12),
    nkernels=st.integers(min_value=1, max_value=6),
    cap=st.integers(min_value=2, max_value=8),
    rr=st.booleans(),
)
def test_group_property_all_instances_execute_once(width, nkernels, cap, rr):
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="w", contexts=range(width)))
    g.add_template(DThreadTemplate(tid=2, name="m", contexts=range(max(1, width // 2))))
    g.add_template(DThreadTemplate(tid=3, name="r"))
    g.add_arc(1, 2, mapping=lambda c: [min(c // 2, max(1, width // 2) - 1)])
    g.add_arc(2, 3, "all")
    blocks = split_into_blocks(g.expand(), tsu_capacity=cap)
    placement = round_robin_placement if rr else contiguous_placement
    tsu = TSUGroup(nkernels, blocks, placement=placement)
    trace = drive_to_completion(tsu, nkernels)
    runs = [t[1] for t in trace if t[0] == "run"]
    assert len(runs) == len(set(runs))  # each instance exactly once
    assert len(runs) == width + max(1, width // 2) + 1
    assert tsu.is_exited()


def test_group_empty_block_falls_through_to_outlet():
    """Defensive: a hand-built block with zero application DThreads must
    chain Inlet -> Outlet instead of stalling in RUNNING."""
    from repro.core.block import DDMBlock

    empty = DDMBlock(
        block_id=0, instances=[], ready_counts=[], consumers=[], entry=[]
    )
    empty.is_last = True
    tsu = TSUGroup(1, [empty])
    f = tsu.fetch(0)
    assert f.kind == FetchKind.INLET
    tsu.complete_inlet(0)
    f = tsu.fetch(0)
    assert f.kind == FetchKind.OUTLET
    tsu.complete_outlet(0)
    assert tsu.is_exited()
