"""Unit and property tests for the exact MESI cache-hierarchy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.accesses import AccessSummary, RegionSpace
from repro.sim.cache import (
    CacheConfig,
    CacheLevel,
    CoherentMemorySystem,
    MemoryConfig,
    EXCLUSIVE,
    MODIFIED,
    SHARED,
)

L1 = CacheConfig(size=1024, line_size=64, assoc=2, read_latency=2, write_latency=0)
L2 = CacheConfig(size=8192, line_size=64, assoc=4, read_latency=20, write_latency=20)
MEM = MemoryConfig(dram_latency=100, cache_to_cache_latency=40, upgrade_latency=8)


def make_system(ncores=2, region_bytes=65536, l2_groups=None):
    space = RegionSpace()
    space.region("R", region_bytes)
    sys_ = CoherentMemorySystem(ncores, L1, L2, MEM, space, l2_groups=l2_groups)
    return sys_


# -- CacheLevel ----------------------------------------------------------
def test_cache_geometry():
    assert L1.num_sets == 8
    assert L1.num_lines == 16


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size=1000, line_size=64, assoc=2, read_latency=1, write_latency=1)


def test_cachelevel_insert_lookup():
    c = CacheLevel(L1)
    assert c.lookup(0) is None
    c.insert(0, EXCLUSIVE)
    assert c.lookup(0) == EXCLUSIVE


def test_cachelevel_lru_eviction():
    c = CacheLevel(L1)
    # Two lines map to the same set when they differ by num_sets*line.
    set_span = L1.num_sets * L1.line_size
    a, b, d = 0, set_span, 2 * set_span
    c.insert(a, SHARED)
    c.insert(b, SHARED)
    c.lookup(a)  # refresh a: b becomes LRU
    victim = c.insert(d, SHARED)
    assert victim == (b, SHARED)
    assert a in c and d in c and b not in c


def test_cachelevel_invalidate():
    c = CacheLevel(L1)
    c.insert(64, MODIFIED)
    assert c.invalidate(64) == MODIFIED
    assert c.invalidate(64) is None


# -- single-core behaviour -------------------------------------------------
def test_cold_miss_then_hit():
    sys_ = make_system()
    lat1 = sys_.access(0, "R", 0, is_write=False)
    assert lat1 == L1.read_latency + L2.read_latency + MEM.dram_latency
    lat2 = sys_.access(0, "R", 8, is_write=False)  # same line
    assert lat2 == L1.read_latency
    st = sys_.stats[0]
    assert st.mem_misses == 1 and st.l1_hits == 1


def test_l2_hit_after_l1_eviction():
    sys_ = make_system()
    # Touch enough lines in one set to evict from L1 but stay in L2.
    set_span = L1.num_sets * L1.line_size
    for i in range(3):
        sys_.access(0, "R", i * set_span, is_write=False)
    # Line 0 was evicted from L1 (assoc 2) but lives in L2.
    lat = sys_.access(0, "R", 0, is_write=False)
    assert lat == L1.read_latency + L2.read_latency
    assert sys_.stats[0].l2_hits == 1


def test_write_allocates_modified():
    sys_ = make_system()
    sys_.access(0, "R", 0, is_write=True)
    assert sys_.l1s[0].lookup(sys_._line_of("R", 0)) == MODIFIED


def test_read_then_write_exclusive_silent_upgrade():
    sys_ = make_system()
    sys_.access(0, "R", 0, is_write=False)
    line = sys_._line_of("R", 0)
    assert sys_.l1s[0].lookup(line) == EXCLUSIVE
    lat = sys_.access(0, "R", 0, is_write=True)
    assert lat == L1.write_latency  # E->M needs no bus transaction
    assert sys_.l1s[0].lookup(line) == MODIFIED
    assert sys_.stats[0].upgrades == 0


# -- coherence ---------------------------------------------------------------
def test_read_shared_by_two_cores():
    sys_ = make_system()
    sys_.access(0, "R", 0, is_write=False)
    sys_.access(1, "R", 0, is_write=False)
    line = sys_._line_of("R", 0)
    assert sys_.l1s[1].lookup(line) == SHARED
    sys_.check_invariants()


def test_shared_write_triggers_upgrade_and_invalidation():
    sys_ = make_system()
    sys_.access(0, "R", 0, is_write=False)
    sys_.access(1, "R", 0, is_write=False)
    lat = sys_.access(0, "R", 0, is_write=True)
    assert lat == L1.write_latency + MEM.upgrade_latency
    line = sys_._line_of("R", 0)
    assert sys_.l1s[0].lookup(line) == MODIFIED
    assert sys_.l1s[1].lookup(line) is None
    assert sys_.stats[0].upgrades == 1
    sys_.check_invariants()


def test_remote_modified_read_is_coherence_miss():
    sys_ = make_system()
    sys_.access(0, "R", 0, is_write=True)  # core0 owns M
    lat = sys_.access(1, "R", 0, is_write=False)
    assert lat == MEM.cache_to_cache_latency + L1.read_latency
    assert sys_.stats[1].coherence_misses == 1
    line = sys_._line_of("R", 0)
    assert sys_.l1s[0].lookup(line) == SHARED
    assert sys_.l1s[1].lookup(line) == SHARED
    sys_.check_invariants()


def test_remote_modified_write_steals_ownership():
    sys_ = make_system()
    sys_.access(0, "R", 0, is_write=True)
    sys_.access(1, "R", 0, is_write=True)
    line = sys_._line_of("R", 0)
    assert sys_.l1s[1].lookup(line) == MODIFIED
    assert sys_.l1s[0].lookup(line) is None
    assert sys_.stats[1].coherence_misses == 1
    sys_.check_invariants()


def test_producer_consumer_transfer_counts():
    """A written range read by another core costs one coherence miss/line."""
    sys_ = make_system()
    space_lines = 32
    for i in range(space_lines):
        sys_.access(0, "R", i * 64, is_write=True)
    for i in range(space_lines):
        sys_.access(1, "R", i * 64, is_write=False)
    assert sys_.stats[1].coherence_misses == space_lines


def test_shared_l2_group_hit():
    """Cores sharing an L2 see each other's fills (Xeon pair topology)."""
    sys_ = make_system(ncores=2, l2_groups=[0, 0])
    sys_.access(0, "R", 0, is_write=False)
    # Core 1 misses L1 but hits the *shared* L2.
    lat = sys_.access(1, "R", 0, is_write=False)
    assert lat == L1.read_latency + L2.read_latency
    assert sys_.stats[1].l2_hits == 1


def test_run_summary_charges_all_ops():
    space = RegionSpace()
    a = space.region("A", 4096)
    sys_ = CoherentMemorySystem(1, L1, L2, MEM, space)
    s = AccessSummary().read(a).read(a)  # second sweep: 4096B = 64 lines > L1
    cycles = sys_.run_summary(0, s)
    st = sys_.stats[0]
    assert st.accesses == 128
    assert cycles == st.cycles
    assert st.mem_misses == 64  # first sweep all cold


def test_small_footprint_rereads_hit():
    space = RegionSpace()
    a = space.region("A", 512)  # 8 lines, fits L1 (16 lines)
    sys_ = CoherentMemorySystem(1, L1, L2, MEM, space)
    s = AccessSummary().read(a, reps=4)
    sys_.run_summary(0, s)
    st = sys_.stats[0]
    assert st.mem_misses == 8
    assert st.l1_hits == 24


def test_writeback_counted_on_dirty_eviction():
    sys_ = make_system()
    set_span = L1.num_sets * L1.line_size
    sys_.access(0, "R", 0, is_write=True)
    sys_.access(0, "R", set_span, is_write=True)
    sys_.access(0, "R", 2 * set_span, is_write=True)  # evicts dirty line 0
    assert sys_.stats[0].writebacks >= 1


def test_region_layout_no_overlap():
    space = RegionSpace()
    a = space.region("A", 100)
    b = space.region("B", 100)
    sys_ = CoherentMemorySystem(1, L1, L2, MEM, space)
    # Region B starts at a line boundary beyond A.
    assert sys_.region_base("B") >= a.size
    assert sys_.region_base("B") % 64 == 0


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # core
            st.integers(min_value=0, max_value=255),  # line index
            st.booleans(),  # write?
        ),
        min_size=1,
        max_size=200,
    )
)
def test_mesi_invariants_random_traffic(ops):
    """Single-writer/multiple-reader holds under arbitrary access interleavings."""
    sys_ = make_system(ncores=4, region_bytes=256 * 64)
    for core, line, write in ops:
        sys_.access(core, "R", line * 64, is_write=write)
    sys_.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),
            st.integers(min_value=0, max_value=63),
            st.booleans(),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_stats_conservation(ops):
    """Every access is classified exactly once."""
    sys_ = make_system(ncores=2, region_bytes=64 * 64)
    for core, line, write in ops:
        sys_.access(core, "R", line * 64, is_write=write)
    for st_ in sys_.stats:
        assert (
            st_.l1_hits + st_.l2_hits + st_.mem_misses + st_.coherence_misses
            == st_.accesses
        )
