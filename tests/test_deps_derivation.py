"""The dependence deriver (repro.core.deps) and its diagnosis pass.

Three layers of evidence that derived graphs are *the same graphs* the
apps declare by hand:

* differential — building each static app with ``deps="derived"`` must
  reproduce the declared graph cycle-for-cycle on both shared-memory
  platforms (SUSAN is the documented exception: its derived halo map is
  *sparser* than the paper's barriers, and ``check_deps`` explains the
  declared "all" arcs as over-wide);
* property — random access-annotated programs always derive an acyclic,
  buildable graph that ``check_deps`` judges sufficient (no missing
  ordering);
* unit — template-arc folding, intra-template conflict rejection, and
  the duplicate-arc Ready-Count guard on ``ProgramBuilder.depends``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_benchmark
from repro.apps.common import ProblemSize
from repro.core import GraphError, ProgramBuilder, check_deps, derive
from repro.core.deps import ContextMap, DerivationError
from repro.platforms import TFluxHard, TFluxSoft
from repro.sim.accesses import AccessSummary

SIZES = {
    "trapez": ProblemSize("trapez", "S", "t", {"k": 12}),
    "mmult": ProblemSize("mmult", "S", "t", {"n": 32}),
    "fft": ProblemSize("fft", "S", "t", {"n": 32}),
    "qsort": ProblemSize("qsort", "S", "t", {"n": 2048}),
    "susan": ProblemSize("susan", "S", "t", {"w": 36, "h": 36}),
}

NKERNELS = 4


# -- differential: derived == declared, cycle for cycle ------------------------
@pytest.mark.parametrize("platform_cls", [TFluxHard, TFluxSoft])
@pytest.mark.parametrize("bench_name", ["trapez", "mmult", "fft", "qsort"])
def test_derived_graph_is_cycle_identical(bench_name, platform_cls):
    bench = get_benchmark(bench_name)
    size = SIZES[bench_name]
    platform = platform_cls()
    measured = {}
    for mode in ("declared", "derived"):
        prog = bench.build(size, unroll=2, deps=mode)
        result = platform.execute(prog, nkernels=NKERNELS)
        bench.verify(prog.env, size)
        measured[mode] = (result.cycles, result.region_cycles)
    assert measured["declared"] == measured["derived"]


def test_susan_derived_is_sparser_and_diagnosed():
    """SUSAN's derived graph replaces the paper's phase barriers with the
    exact halo-shaped map; it must still verify, and the diagnoser must
    explain why the declared version differs (over-wide "all" arcs)."""
    bench = get_benchmark("susan")
    size = SIZES["susan"]
    prog = bench.build(size, unroll=2, deps="derived")
    TFluxSoft().execute(prog, nkernels=NKERNELS)
    bench.verify(prog.env, size)

    report = check_deps(bench.build(size, unroll=2, deps="declared"))
    assert report.ok  # nothing missing — barriers over-order, never under-order
    statuses = {(a.producer, a.consumer): a.status for a in report.arcs}
    assert statuses[("init", "smooth")] == "partial"
    assert statuses[("smooth", "output")] == "partial"


@pytest.mark.parametrize("bench_name", ["trapez", "mmult", "fft", "qsort"])
def test_static_apps_check_clean(bench_name):
    bench = get_benchmark(bench_name)
    report = check_deps(bench.build(SIZES[bench_name], unroll=2))
    assert report.ok
    assert not report.redundant


def test_trapez_derived_template_arcs():
    prog = get_benchmark("trapez").build(SIZES["trapez"], unroll=2)
    arcs = derive(prog.graph, prog.env).template_arcs()
    assert [(a.producer, a.consumer, a.mapping) for a in arcs] == [(1, 2, "all")]
    assert arcs[0].kinds == {"WR"}
    assert arcs[0].regions == {"parts"}


def test_mmult_derives_no_arcs():
    prog = get_benchmark("mmult").build(SIZES["mmult"], unroll=2)
    assert derive(prog.graph, prog.env).template_arcs() == []


def test_fft_derived_template_arcs_are_the_declared_barriers():
    prog = get_benchmark("fft").build(SIZES["fft"], unroll=2)
    arcs = derive(prog.graph, prog.env).template_arcs()
    assert [(a.producer, a.consumer, a.mapping) for a in arcs] == [
        (1, 2, "all"),
        (2, 3, "all"),
        (3, 4, "all"),
    ]


# -- property: derived graphs are acyclic and sufficient -----------------------
@settings(deadline=None, max_examples=30)
@given(data=st.data())
def test_derived_graphs_acyclic_and_sufficient(data):
    """Random single-context templates with random slot footprints: the
    derived graph must always build, run to completion (acyclic — a
    cycle would deadlock the sequential kernel loop), compute the same
    result as program order, and pass its own diagnosis."""
    nslots = 8
    ntmpl = data.draw(st.integers(2, 5), label="ntemplates")
    slot = st.integers(0, nslots - 1)
    specs = [
        (
            sorted(data.draw(st.sets(slot, max_size=3), label=f"reads{t}")),
            sorted(data.draw(st.sets(slot, max_size=3), label=f"writes{t}")),
        )
        for t in range(ntmpl)
    ]

    def run(auto: bool) -> np.ndarray:
        b = ProgramBuilder("prop")
        b.env.alloc("a", nslots)
        reg = b.env.region("a")

        def make(reads, writes, stamp):
            def body(env, _ctx):
                arr = env.array("a")
                acc = sum(float(arr[i]) for i in reads)
                for i in writes:
                    arr[i] = arr[i] * 2.0 + acc + stamp

            def accesses(env, _ctx):
                s = AccessSummary()
                for i in reads:
                    s.read(reg, offset=i * 8, count=1)
                for i in writes:
                    s.write(reg, offset=i * 8, count=1)
                return s

            return body, accesses

        for t, (reads, writes) in enumerate(specs):
            body, accesses = make(reads, writes, t + 1)
            b.thread(f"t{t}", body=body, accesses=accesses)
        if auto:
            b.auto_depends()
            prog = b.build()
            report = check_deps(prog)
            assert not report.missing
        else:
            prog = b.build()
        prog.run_sequential()
        return prog.env.array("a").copy()

    # Derived-order result == program-order result (the derived arcs
    # never permit a schedule that changes the functional output, and
    # the sequential backend follows dataflow order when arcs exist).
    np.testing.assert_array_equal(run(auto=True), run(auto=False))


# -- unit: conflicts, folding, duplicate arcs ----------------------------------
def _noop(env, _ctx):
    return None


def test_intra_template_conflict_raises():
    b = ProgramBuilder("conflict")
    b.env.alloc("a", 4)
    reg = b.env.region("a")
    b.thread(
        "w",
        body=_noop,
        contexts=2,
        accesses=lambda env, i: AccessSummary().write(reg, offset=0, count=1),
    )
    with pytest.raises(DerivationError, match="self-dependences are illegal"):
        derive(b.graph, b.env)


def test_auto_depends_respects_declared_arcs():
    """A declared direct arc between a template pair takes precedence:
    auto_depends never stacks a second (derived) arc on top of it."""
    b = ProgramBuilder("precedence")
    b.env.alloc("a", 4)
    reg = b.env.region("a")
    t1 = b.thread(
        "w", body=_noop, accesses=lambda env, i: AccessSummary().write(reg)
    )
    t2 = b.thread(
        "r", body=_noop, accesses=lambda env, i: AccessSummary().read(reg)
    )
    b.depends(t1, t2, "all")
    assert b.auto_depends() == []
    assert len(b.graph.arcs) == 1


def test_contextmap_folding_on_partial_overlap():
    """A producer whose ranges feed two consumers each gets a ContextMap,
    not a blanket barrier."""
    b = ProgramBuilder("fold")
    b.env.alloc("a", 8)
    reg = b.env.region("a")
    t1 = b.thread(
        "w",
        body=_noop,
        contexts=4,
        accesses=lambda env, i: AccessSummary().write(reg, offset=i * 16, count=2),
    )
    t2 = b.thread(
        "r",
        body=_noop,
        contexts=2,
        accesses=lambda env, i: AccessSummary().read(reg, offset=i * 32, count=4),
    )
    arcs = derive(b.graph, b.env).template_arcs()
    assert len(arcs) == 1
    mapping = arcs[0].mapping
    assert isinstance(mapping, ContextMap)
    assert mapping.table == {0: (0,), 1: (0,), 2: (1,), 3: (1,)}


def test_duplicate_arc_different_mapping_rejected():
    b = ProgramBuilder("dup")
    t1 = b.thread("p", body=_noop, contexts=2)
    t2 = b.thread("c", body=_noop, contexts=2)
    b.depends(t1, t2, "same")
    with pytest.raises(GraphError, match="declared twice with different mappings"):
        b.depends(t1, t2, "all")


def test_duplicate_arc_identical_mapping_is_double_token():
    b = ProgramBuilder("double")
    b.env.set("hits", [])
    t1 = b.thread("p", body=lambda env, i: env.get("hits").append(i), contexts=2)
    t2 = b.thread("c", body=_noop, contexts=2)
    b.depends(t1, t2, "same")
    b.depends(t1, t2, "same")  # identical re-declaration: two tokens, legal
    prog = b.build()
    prog.run_sequential()
    assert sorted(prog.env.get("hits")) == [0, 1]


def test_duplicate_contextmap_arcs_compare_by_table():
    b = ProgramBuilder("cmdup")
    t1 = b.thread("p", body=_noop, contexts=2)
    t2 = b.thread("c", body=_noop, contexts=2)
    b.depends(t1, t2, ContextMap({0: (0,), 1: (1,)}))
    # An equal-table ContextMap is the same mapping (re-declaration ok) ...
    b.depends(t1, t2, ContextMap({0: (0,), 1: (1,)}))
    # ... a different table is a different Ready Count: rejected.
    with pytest.raises(GraphError, match="declared twice"):
        b.depends(t1, t2, ContextMap({0: (1,), 1: (0,)}))
