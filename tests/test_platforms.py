"""Tests for the platform layer and the analysis sweep/renderers."""

import pytest

from repro.analysis import PAPER, render_grid, render_table1, sweep_figure
from repro.analysis.tables import render_comparison
from repro.apps import get_benchmark, problem_sizes
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft


def test_platform_kernel_budgets():
    assert TFluxHard().max_kernels == 27  # 28 cores - OS core
    assert TFluxSoft().max_kernels == 6  # 8 - OS - TSU emulator
    assert TFluxCell().max_kernels == 6  # usable SPEs


def test_platform_targets_match_table1_columns():
    assert TFluxHard().target == "S"
    assert TFluxSoft().target == "N"
    assert TFluxCell().target == "C"


def test_execute_rejects_overcommit():
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "S")["small"]
    prog = bench.build(size, unroll=32, max_threads=128)
    with pytest.raises(ValueError, match="at most"):
        TFluxSoft().execute(prog, nkernels=7)


def test_evaluate_records_per_unroll_curve():
    plat = TFluxHard()
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "S")["small"]
    ev = plat.evaluate(
        bench, size, nkernels=4, unrolls=(4, 16), verify=True, max_threads=256
    )
    assert set(ev.per_unroll) == {4, 16}
    assert ev.speedup == max(ev.per_unroll.values())
    assert ev.best_unroll in (4, 16)
    assert ev.sequential_cycles > ev.parallel_cycles


def test_evaluate_verifies_results():
    plat = TFluxHard()
    bench = get_benchmark("qsort")
    size = problem_sizes("qsort", "S")["small"]
    ev = plat.evaluate(bench, size, nkernels=3, unrolls=(8,), verify=True,
                       max_threads=256)
    assert ev.speedup > 1.0


def test_row_format():
    plat = TFluxHard()
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "S")["small"]
    ev = plat.evaluate(bench, size, nkernels=2, unrolls=(16,), verify=False,
                       max_threads=128)
    row = ev.row()
    assert "trapez" in row and "kernels=2" in row


# -- analysis ------------------------------------------------------------------
def test_sweep_figure_grid_complete():
    grid = sweep_figure(
        TFluxHard(),
        benches=("trapez",),
        kernel_counts=(2, 4),
        sizes=("small",),
        unrolls=(16,),
        max_threads=128,
    )
    assert grid.speedup("trapez", 4, "small") > grid.speedup("trapez", 2, "small")
    assert grid.average(4, "small") > 0
    assert grid.get("trapez", 8, "small") is None


def test_render_grid_contains_all_cells():
    grid = sweep_figure(
        TFluxHard(), ("trapez",), (2,), ("small",), unrolls=(16,), max_threads=128
    )
    text = render_grid(grid, "test grid")
    assert "TRAPEZ" in text and "average" in text


def test_render_table1_structure():
    t = render_table1()
    assert t.count("\n") > 6
    for bench in ("TRAPEZ", "MMULT", "QSORT", "SUSAN", "FFT"):
        assert bench in t


def test_render_comparison():
    text = render_comparison(
        {"trapez": 25.0, "fft": 17.0},
        {"trapez": 25.6, "fft": 18.8},
        "cmp",
    )
    assert "TRAPEZ" in text and "0.98" in text


def test_paper_reference_integrity():
    assert PAPER.fig5_large_27["trapez"] == 25.6
    assert PAPER.fig5_average_27 == 21.0
    assert set(PAPER.fig7_best_6) == {"trapez", "mmult", "susan", "qsort"}
    assert PAPER.tsu_latency_max_impact == 0.01


def test_cell_platform_requires_cell_machine():
    from repro.sim.machine import BAGLE_27

    with pytest.raises(ValueError):
        TFluxCell(machine=BAGLE_27)


# -- CLI -------------------------------------------------------------------------
def test_cli_runs_single_cell(capsys):
    from repro.cli import main

    rc = main(["trapez", "--platform", "hard", "--kernels", "4",
               "--size", "small", "--unroll", "16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "TRAPEZ" in out and "speedup" in out


def test_ddmcpp_cli_roundtrip(tmp_path, capsys):
    from repro.preprocessor.cli import main

    src = tmp_path / "prog.ddm"
    src.write_text(
        """
#pragma ddm startprogram name(cli)
#pragma ddm var double x
#pragma ddm thread 1
  x = 41 + 1;
#pragma ddm endthread
#pragma ddm endprogram
"""
    )
    out = tmp_path / "gen.py"
    rc = main([str(src), "-o", str(out), "--run"])
    assert rc == 0
    assert out.exists()
    stdout = capsys.readouterr().out
    assert "'x': 42" in stdout


def test_ddmcpp_cli_reports_syntax_errors(tmp_path, capsys):
    from repro.preprocessor.cli import main

    src = tmp_path / "bad.ddm"
    src.write_text("#pragma ddm endprogram\n")
    rc = main([str(src)])
    assert rc == 1
    assert "ddmcpp:" in capsys.readouterr().err


def test_render_bars():
    from repro.analysis.tables import render_bars

    grid = sweep_figure(
        TFluxHard(), ("trapez",), (2, 4), ("small",), unrolls=(16,), max_threads=128
    )
    art = render_bars(grid, size="small", width=20)
    assert "TRAPEZ" in art
    assert "█" in art
    # The 4-kernel bar is longer than the 2-kernel bar.
    lines = [l for l in art.splitlines() if "|" in l]
    assert lines[1].count("█") > lines[0].count("█")


def test_cli_clean_error_on_overcommit(capsys):
    """Regression: --kernels beyond the platform budget must print a clean
    error (not a traceback) and exit 2."""
    from repro.cli import main

    rc = main(["trapez", "--platform", "hard", "--kernels", "99",
               "--size", "small", "--unroll", "8"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "tflux-run: error:" in err and "27" in err


def test_cli_clean_error_on_bad_unroll(capsys):
    from repro.cli import main

    rc = main(["trapez", "--kernels", "2", "--size", "small", "--unroll", "-3"])
    assert rc == 2
    assert "unroll" in capsys.readouterr().err


def test_ddmcpp_cli_missing_file(capsys):
    from repro.preprocessor.cli import main

    rc = main(["/nonexistent-path.ddm"])
    assert rc == 1
    assert "cannot read" in capsys.readouterr().err


def test_emitted_module_main_block(tmp_path):
    """Regression: the emitted module must run standalone and print the
    program name (not a mangled format string)."""
    import subprocess
    import sys

    from repro.preprocessor import emit_module

    src = """
#pragma ddm startprogram name(standalone)
#pragma ddm var double x
#pragma ddm thread 1
  x = 2 + 3;
#pragma ddm endthread
#pragma ddm endprogram
"""
    mod = tmp_path / "gen.py"
    mod.write_text(emit_module(src))
    proc = subprocess.run(
        [sys.executable, str(mod)], capture_output=True, text=True, timeout=120
    )
    assert proc.returncode == 0, proc.stderr
    assert "program standalone finished" in proc.stdout
