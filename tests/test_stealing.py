"""Tests for the work-stealing TSU option (locality-relaxed dispatch)."""

import numpy as np
import pytest

from repro.core import ProgramBuilder
from repro.runtime.native import NativeRuntime
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.machine import BAGLE_27
from repro.tsu.group import FetchKind, TSUGroup
from repro.tsu.hardware import HardwareTSUAdapter


def skewed_program(nchunks=16, skew=2000):
    """Thread i costs (i+1)*skew: heavy imbalance under static placement."""
    b = ProgramBuilder("skewed")
    b.env.alloc("parts", nchunks)
    b.thread(
        "work",
        body=lambda env, i: env.array("parts").__setitem__(i, i + 1),
        contexts=nchunks,
        cost=lambda e, i: (i + 1) * skew,
    )
    return b.build()


def run(allow_stealing, nkernels=4):
    prog = skewed_program()
    rt = SimulatedRuntime(
        prog,
        BAGLE_27,
        nkernels=nkernels,
        adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
        allow_stealing=allow_stealing,
    )
    res = rt.run()
    return res, rt.tsu


def test_stealing_preserves_results():
    res, _ = run(True)
    np.testing.assert_array_equal(res.env.array("parts"), np.arange(1, 17))


def test_stealing_counts_steals():
    _, tsu = run(True)
    assert tsu.steals > 0


def test_no_stealing_by_default():
    _, tsu = run(False)
    assert tsu.steals == 0


def test_stealing_improves_skewed_makespan():
    """Static contiguous placement puts the heaviest chunk run on the last
    kernel; stealing lets idle kernels absorb the imbalance."""
    static, _ = run(False)
    stealing, _ = run(True)
    assert stealing.region_cycles < static.region_cycles * 0.95


def test_stealing_neutral_on_balanced_load():
    b1 = ProgramBuilder("bal1")
    b1.thread("w", body=lambda env, i: None, contexts=16, cost=lambda e, c: 5000)
    b2 = ProgramBuilder("bal2")
    b2.thread("w", body=lambda env, i: None, contexts=16, cost=lambda e, c: 5000)
    r_static = SimulatedRuntime(b1.build(), BAGLE_27, nkernels=4).run()
    r_steal = SimulatedRuntime(
        b2.build(), BAGLE_27, nkernels=4, allow_stealing=True
    ).run()
    assert r_steal.region_cycles == pytest.approx(r_static.region_cycles, rel=0.02)


def test_stealing_respects_dependencies():
    """Stolen threads still fire only when their producers completed."""
    b = ProgramBuilder("dep")
    b.env.alloc("a", 8)
    b.env.alloc("c", 8)
    t1 = b.thread(
        "p",
        body=lambda env, i: env.array("a").__setitem__(i, i + 1),
        contexts=8,
        cost=lambda e, i: (i + 1) * 1000,
    )
    t2 = b.thread(
        "q",
        body=lambda env, i: env.array("c").__setitem__(i, env.array("a")[i] * 2),
        contexts=8,
    )
    b.depends(t1, t2)
    res = SimulatedRuntime(
        b.build(), BAGLE_27, nkernels=3, allow_stealing=True
    ).run()
    np.testing.assert_array_equal(res.env.array("c"), (np.arange(8) + 1) * 2)


def test_stealing_native_runtime():
    prog = skewed_program()
    res = NativeRuntime(prog, nkernels=3, allow_stealing=True).run()
    np.testing.assert_array_equal(res.env.array("parts"), np.arange(1, 17))


def test_has_work_sees_stealable_threads():
    prog = skewed_program(nchunks=4)
    tsu = TSUGroup(4, prog.blocks(), allow_stealing=True)
    f = tsu.fetch(0)
    assert f.kind == FetchKind.INLET
    tsu.complete_inlet(0)
    # All four chunks land one-per-kernel; kernel 0 sees its own and,
    # after draining it, everyone else's through stealing.
    assert tsu.has_work(0)
    tsu_nosteal = TSUGroup(4, skewed_program(nchunks=2).blocks())
    tsu_nosteal.fetch(0)
    tsu_nosteal.complete_inlet(0)
    # Kernel 3 owns nothing (2 chunks on 4 kernels, contiguous).
    assert not tsu_nosteal.has_work(3)


# -- chrome trace export ------------------------------------------------------
def test_chrome_trace_export():
    import json

    from repro.obs import Tracer, to_chrome_trace

    tracer = Tracer()
    prog = skewed_program(nchunks=8)
    SimulatedRuntime(
        prog, BAGLE_27, nkernels=2,
        adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
        tracer=tracer,
    ).run()
    doc = to_chrome_trace(tracer)
    text = json.dumps(doc)  # must be JSON-serialisable
    assert '"ph": "X"' in text
    xevents = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xevents) == len(tracer.spans)
    assert all(e["dur"] > 0 for e in xevents)


from hypothesis import given, settings, strategies as st


@settings(max_examples=10, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=12),
    nkernels=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_stealing_functionally_identical(width, nkernels, seed):
    """Stealing changes the schedule, never the results."""
    import numpy as np

    rng = np.random.default_rng(seed)
    costs = rng.integers(100, 10_000, size=width)

    def build():
        b = ProgramBuilder("rand")
        b.env.alloc("out", width)
        t1 = b.thread(
            "w",
            body=lambda env, i: env.array("out").__setitem__(i, i * 3.0),
            contexts=width,
            cost=lambda e, i: int(costs[i]),
        )
        t2 = b.thread(
            "r", body=lambda env, _: env.set("sum", float(env.array("out").sum()))
        )
        b.depends(t1, t2, "all")
        return b.build()

    results = []
    for steal in (False, True):
        res = SimulatedRuntime(
            build(), BAGLE_27, nkernels=nkernels, allow_stealing=steal
        ).run()
        results.append((res.env.get("sum"), tuple(res.env.array("out"))))
    assert results[0] == results[1]
