"""Property and unit tests for the serve layer's LRU + single-flight."""

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve import LRUCache, MISS, SingleFlightLRU


# -- LRUCache ------------------------------------------------------------------
def test_capacity_validated():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_get_put_and_counters():
    lru = LRUCache(2)
    assert lru.get("a", MISS) is MISS
    lru.put("a", 1)
    assert lru.get("a") == 1
    assert (lru.hits, lru.misses, lru.evictions) == (1, 1, 0)


def test_eviction_is_strict_lru():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.get("a")  # refresh: "b" is now least recent
    lru.put("c", 3)
    assert "b" not in lru
    assert lru.keys() == ["a", "c"]
    assert lru.evictions == 1


def test_contains_does_not_refresh():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert "a" in lru  # probe only
    lru.put("c", 3)  # "a" must still be the eviction victim
    assert "a" not in lru and "b" in lru


def test_put_updates_in_place():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("a", 10)  # update, not insert: nothing evicted
    assert len(lru) == 2 and lru.get("a") == 10


_OPS = st.lists(
    st.tuples(st.sampled_from(["put", "get"]), st.integers(0, 7)),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(capacity=st.integers(1, 5), ops=_OPS)
def test_lru_matches_reference_model(capacity, ops):
    """The cache tracks an ordered-dict reference model exactly: same
    contents, same recency order, same eviction victims."""
    from collections import OrderedDict

    lru = LRUCache(capacity)
    model: OrderedDict = OrderedDict()
    for op, key in ops:
        if op == "put":
            lru.put(key, key * 10)
            model[key] = key * 10
            model.move_to_end(key)
            while len(model) > capacity:
                model.popitem(last=False)
        else:
            got = lru.get(key, MISS)
            if key in model:
                model.move_to_end(key)
                assert got == model[key]
            else:
                assert got is MISS
        assert len(lru) <= capacity
        assert lru.keys() == list(model)  # identical LRU -> MRU order


# -- SingleFlightLRU -----------------------------------------------------------
def test_single_flight_n_concurrent_one_compute():
    """N concurrent get_or_compute calls for one missing key run the
    computation exactly once and all observe its value."""

    async def main():
        sf = SingleFlightLRU(8)
        computes = 0
        gate = asyncio.Event()

        async def compute():
            nonlocal computes
            computes += 1
            await gate.wait()
            return "value"

        tasks = [
            asyncio.create_task(sf.get_or_compute("k", compute))
            for _ in range(10)
        ]
        await asyncio.sleep(0)  # let every task reach the flight table
        assert sf.inflight == 1
        gate.set()
        results = await asyncio.gather(*tasks)
        assert results == ["value"] * 10
        assert computes == 1
        assert sf.launched == 1 and sf.coalesced == 9
        assert sf.inflight == 0
        # Later calls are plain LRU hits — no new flight.
        assert await sf.get_or_compute("k", compute) == "value"
        assert computes == 1

    asyncio.run(main())


def test_failed_flight_propagates_and_is_not_cached():
    async def main():
        sf = SingleFlightLRU(8)
        attempts = 0
        gate = asyncio.Event()

        async def boom():
            nonlocal attempts
            attempts += 1
            await gate.wait()
            raise RuntimeError("sim failed")

        waiters = [
            asyncio.create_task(sf.get_or_compute("k", boom)) for _ in range(3)
        ]
        await asyncio.sleep(0)  # all three join the flight before it fails
        gate.set()
        results = await asyncio.gather(*waiters, return_exceptions=True)
        assert all(isinstance(r, RuntimeError) for r in results)
        assert attempts == 1  # the herd coalesced onto the one failure
        assert sf.lookup("k") is MISS  # failure never cached...

        async def ok():
            return 42

        assert await sf.get_or_compute("k", ok) == 42  # ...so retry recomputes

    asyncio.run(main())


def test_waiter_cancellation_does_not_kill_the_flight():
    async def main():
        sf = SingleFlightLRU(8)
        gate = asyncio.Event()

        async def compute():
            await gate.wait()
            return "v"

        leader = asyncio.create_task(sf.get_or_compute("k", compute))
        waiter = asyncio.create_task(sf.get_or_compute("k", compute))
        await asyncio.sleep(0)
        waiter.cancel()
        gate.set()
        assert await leader == "v"
        with pytest.raises(asyncio.CancelledError):
            await waiter
        assert sf.lookup("k") == "v"  # flight completed despite the cancel

    asyncio.run(main())


def test_sync_primitives_exact_accounting():
    """claim/resolve keep inflight exact — the server's max-in-flight
    bound is computed from this number."""

    async def main():
        sf = SingleFlightLRU(2)
        futa, leada = sf.claim("a")
        futa2, leada2 = sf.claim("a")
        assert leada and not leada2 and futa is futa2
        futb, leadb = sf.claim("b")
        assert leadb
        assert sf.inflight == 2  # unique keys, not claims
        sf.resolve("a", 1)
        assert sf.inflight == 1
        assert await futa == 1 and await futa2 == 1
        sf.reject("b", ValueError("x"))
        assert sf.inflight == 0
        with pytest.raises(ValueError):
            await futb
        stats = sf.stats()
        assert stats["launched"] == 2 and stats["coalesced"] == 1
        assert stats["size"] == 1  # only the resolved key landed in the LRU

    asyncio.run(main())
