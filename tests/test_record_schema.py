"""RunRecord schema governance and serialisation round trips.

The exec cache persists pickled RunRecords; the only thing standing
between a stale cache and silently wrong analysis numbers is the
``schema_version`` discipline checked here (and by
``tools/check_record_schema.py``, whose verification these tests run as
part of the suite).
"""

import copy
import json
import pickle
import sys
from pathlib import Path

import pytest

from repro.core import ProgramBuilder
from repro.obs import (
    SCHEMA_VERSION,
    RunRecord,
    Tracer,
    record_schema,
    verify_schema_fixture,
)
from repro.platforms import TFluxHard

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = REPO_ROOT / "tests" / "data" / "run_record_schema.json"


def _record() -> RunRecord:
    b = ProgramBuilder("tiny")
    b.env.alloc("out", 4)
    b.thread("work", body=lambda env, i: env.array("out").__setitem__(i, i),
             contexts=4)
    tracer = Tracer()
    return TFluxHard().execute(b.build(), nkernels=2, tracer=tracer).to_record()


def _fixture() -> dict:
    return json.loads(FIXTURE.read_text())


# -- golden fixture ------------------------------------------------------------
def test_golden_fixture_matches_live_schema():
    assert verify_schema_fixture(_fixture()) == []


def test_field_change_without_bump_is_flagged():
    tampered = copy.deepcopy(_fixture())
    tampered["fields"]["RunRecord"].append("new_field")
    problems = verify_schema_fixture(tampered)
    assert problems
    assert any("SCHEMA_VERSION bump" in p for p in problems)


def test_version_bump_requires_fixture_regeneration():
    tampered = copy.deepcopy(_fixture())
    tampered["schema_version"] = SCHEMA_VERSION + 1
    problems = verify_schema_fixture(tampered)
    assert problems
    assert any("regenerate" in p for p in problems)


def test_checker_tool_passes_on_current_tree():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_record_schema

        assert check_record_schema.main([]) == 0
    finally:
        sys.path.remove(str(REPO_ROOT / "tools"))


def test_schema_covers_every_embedded_type():
    schema = record_schema()
    assert set(schema) == {
        "RunRecord", "KernelStats", "CoreStats", "CacheStats", "Span"
    }
    assert "schema_version" in schema["RunRecord"]


# -- records are picklable and env-free ----------------------------------------
def test_record_pickle_round_trip():
    rec = _record()
    clone = pickle.loads(pickle.dumps(rec))
    assert clone.schema_version == SCHEMA_VERSION
    assert clone.counters == rec.counters
    assert clone.spans == rec.spans
    assert clone.cycles == rec.cycles
    assert [k.core for k in clone.kernels] == [k.core for k in rec.kernels]


def test_record_has_no_environment():
    rec = _record()
    assert not hasattr(rec, "env")
    # Nothing reachable from the record is a live Environment.
    from repro.core.environment import Environment

    assert not any(
        isinstance(v, Environment) for v in vars(rec).values()
    )


def test_record_json_round_trip():
    rec = _record()
    data = json.loads(json.dumps(rec.to_json_dict()))
    clone = RunRecord.from_json_dict(data)
    assert clone == rec


def test_from_json_dict_rejects_other_versions():
    data = _record().to_json_dict()
    data["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        RunRecord.from_json_dict(data)


def test_v1_payload_is_rejected():
    """The v2 bump added ``nnodes`` (TFluxDist) and the ``net.*`` counter
    namespace; a genuine v1 payload — no ``nnodes`` key — must refuse to
    deserialise rather than default its way into the new field set."""
    data = _record().to_json_dict()
    data["schema_version"] = 1
    del data["nnodes"]
    with pytest.raises(ValueError, match="schema 1"):
        RunRecord.from_json_dict(data)


def test_nnodes_rides_the_record():
    rec = _record()  # TFluxHard: every single-node platform records 1
    assert rec.nnodes == 1
    assert rec.to_json_dict()["nnodes"] == 1


def test_record_derived_quantities():
    rec = _record()
    assert rec.total_dthreads == 4  # the four "work" contexts
    assert 0.0 < rec.utilisation() <= 1.0
    assert rec.measured_cycles > 0
    assert rec.speedup_over(2 * rec.measured_cycles) == pytest.approx(2.0)
    assert "tfluxhard" in rec.summary_line()
