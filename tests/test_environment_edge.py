"""Edge-case tests for Environment and region bookkeeping."""

import numpy as np
import pytest

from repro.core import Environment


def test_get_with_default():
    env = Environment()
    assert env.get("missing") is None
    assert env.get("missing", 7) == 7


def test_get_prefers_arrays():
    env = Environment()
    env.alloc("x", 3)
    assert env.get("x").shape == (3,)


def test_names_lists_both_kinds():
    env = Environment()
    env.alloc("a", 2)
    env.set("s", 1)
    assert set(env.names()) == {"a", "s"}


def test_setitem_scalar_then_array_name_guard():
    env = Environment()
    env.set("v", 3)
    # Assigning an ndarray to an existing scalar name stays a scalar slot.
    env["v"] = np.int64(5)
    assert env["v"] == 5


def test_region_lookup_for_scalar_goes_to_shared_region():
    env = Environment()
    env.set("alpha", 0.1)
    env.set("beta", 0.2)
    assert env.region("alpha").name == "__scalars__"
    assert env.region("alpha") is env.region("beta")


def test_region_unknown_name():
    env = Environment()
    with pytest.raises(KeyError):
        env.region("ghost")


def test_alloc_zero_dim_array_has_min_region():
    env = Environment()
    arr = env.alloc("empty", 0)
    assert arr.size == 0
    assert env.region("empty").size >= 1  # regions must be non-empty


def test_adopt_non_contiguous_view():
    env = Environment()
    base = np.arange(100).reshape(10, 10)
    view = base[::2, ::2]
    adopted = env.adopt("v", view)
    assert adopted.shape == (5, 5)
    assert env.region("v").size == adopted.nbytes


def test_dtype_variety():
    env = Environment()
    env.alloc("u8", 16, dtype=np.uint8)
    env.alloc("c", (4, 4), dtype=np.complex128)
    assert env.region("u8").size == 16
    assert env.region("c").size == 256
