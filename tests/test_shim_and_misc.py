"""Tests for the preprocessor runtime shim and small utility surfaces."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import Environment
from repro.preprocessor.shim import SharedProxy, c_printf, cdiv, cmod


# -- C arithmetic helpers ---------------------------------------------------
@pytest.mark.parametrize(
    "a, b, q, r",
    [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
        (6, 3, 2, 0),
        (0, 5, 0, 0),
    ],
)
def test_c_division_table(a, b, q, r):
    assert cdiv(a, b) == q
    assert cmod(a, b) == r


def test_cdiv_floats_true_division():
    assert cdiv(7.0, 2) == 3.5
    assert cdiv(7, 2.0) == 3.5


@given(
    a=st.integers(min_value=-10_000, max_value=10_000),
    b=st.integers(min_value=-100, max_value=100).filter(lambda x: x != 0),
)
def test_c_division_identity(a, b):
    """C guarantees (a/b)*b + a%b == a."""
    assert cdiv(a, b) * b + cmod(a, b) == a
    # Truncation toward zero.
    assert abs(cdiv(a, b)) == abs(a) // abs(b)


def test_cmod_floats_fmod():
    assert cmod(7.5, 2.0) == pytest.approx(1.5)


def test_numpy_integers_treated_as_ints():
    assert cdiv(np.int64(-7), np.int64(2)) == -3


def test_bools_not_treated_as_ints():
    # C has no bool/int confusion here; True/2 is float division.
    assert cdiv(True, 2) == 0.5


def test_printf_formats(capsys):
    c_printf("x=%d y=%.1f %s\n", 3, 2.5, "ok")
    c_printf("plain")
    out = capsys.readouterr().out
    assert out == "x=3 y=2.5 ok\nplain"


# -- SharedProxy ----------------------------------------------------------------
def test_shared_proxy_scalar_roundtrip():
    env = Environment()
    env.set("x", 1)
    proxy = SharedProxy(env)
    assert proxy.x == 1
    proxy.x = 5
    assert env.get("x") == 5


def test_shared_proxy_array_access():
    env = Environment()
    env.alloc("a", 4)
    proxy = SharedProxy(env)
    proxy.a[2] = 7.0
    assert env.array("a")[2] == 7.0


def test_shared_proxy_unknown_name():
    proxy = SharedProxy(Environment())
    with pytest.raises(AttributeError, match="no shared variable"):
        _ = proxy.nope


# -- misc utility surfaces ----------------------------------------------------------
def test_package_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_cli_sweep_mode(capsys):
    from repro.cli import main

    rc = main(["trapez", "--platform", "soft", "--sweep", "--size", "small",
               "--unroll", "32"])
    assert rc == 0
    out = capsys.readouterr().out
    # 2, 4, 6 kernels on tfluxsoft.
    assert out.count("kernels=") >= 3


def test_cli_ladder_dedupes_and_caps():
    from repro.cli import _ladder

    assert _ladder(27) == [2, 4, 8, 16, 27]
    assert _ladder(16) == [2, 4, 8, 16]  # max coincides with a rung: once
    assert _ladder(6) == [2, 4, 6]
    assert _ladder(1) == [1]
    assert _ladder(7, rungs=(1, 2, 4)) == [1, 2, 4, 7]


def test_cli_dist_platform(capsys):
    from repro.cli import main

    rc = main(["trapez", "--platform", "dist", "--nodes", "2",
               "--size", "small", "--unroll", "32", "--kernels", "4"])
    assert rc == 0
    assert "tfluxdist" in capsys.readouterr().out


def test_cli_nodes_requires_dist(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["trapez", "--platform", "soft", "--nodes", "2"])


def test_experiments_cmp_rows():
    from repro.analysis.experiments import _cmp_rows

    rows = _cmp_rows({"trapez": 25.0}, {"trapez": 25.6, "fft": 18.8})
    assert any("TRAPEZ" in r for r in rows)
    assert not any("FFT" in r for r in rows)  # unmeasured rows skipped
